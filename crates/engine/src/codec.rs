//! Canonical byte codec for the engine's request/response surface.
//!
//! This is the payload format of the `svgic-net` wire protocol (the framing
//! — magic, version, request id, length prefix — lives in `svgic_net::frame`;
//! this module only encodes what goes *inside* a frame). It is hand-rolled
//! because the build environment is offline (no serde); the format is
//! specified field-by-field in `docs/FORMATS.md`.
//!
//! **Canonical** means: every value has exactly one encoding, so
//! `encode(decode(bytes)) == bytes` for any accepted input and
//! `decode(encode(value))` rebuilds an equivalent value. That property is
//! what lets the round-trip property tests compare raw bytes without
//! requiring `PartialEq` on instances, and what makes response digests
//! transport-independent.
//!
//! Layout conventions:
//!
//! * all integers are **little-endian** fixed width (`u8`/`u32`/`u64`);
//!   counts and indices travel as `u64`;
//! * floats travel as their IEEE-754 bit pattern in a `u64` — bit-exact
//!   round trips, no text formatting;
//! * sequences are a `u32` length followed by the elements;
//! * enums are a one-byte tag followed by the variant's fields;
//! * `Option<T>` is a one-byte presence flag (`0`/`1`) followed by `T` when
//!   present.
//!
//! Decoding is **total**: any byte string either decodes or returns a
//! [`CodecError`] — truncation, trailing bytes, unknown tags, dimension
//! mismatches and invalid instances are all errors, never panics, and a
//! failed decode mutates nothing. Length fields are validated against the
//! remaining payload before any allocation, so a corrupted length cannot
//! balloon memory.

use std::sync::Arc;
use std::time::Duration;

use svgic_algorithms::{LpBackend, UtilityFactors};
use svgic_core::{Configuration, SvgicInstance, SvgicInstanceBuilder};
use svgic_graph::SocialGraph;
use svgic_obs::{
    HistogramSnapshot, Phase, PhaseAggregate, RequestWaterfall, TelemetrySample, WaterfallSpan,
};

use crate::api::{
    ConfigurationView, CreateSession, EngineError, EngineInfo, EngineRequest, EngineResponse,
    SessionEvent, SessionId,
};
use crate::profile::{EngineProfile, ProfileEntry};
use crate::session::{Served, SessionExport};
use crate::stats::{ShardSnapshot, StatsSnapshot};

/// Why a byte string failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended before the value was complete.
    Truncated,
    /// The payload continued after the value was complete (`n` extra bytes).
    Trailing(usize),
    /// An enum tag byte had no matching variant.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The bytes decoded structurally but described an invalid value
    /// (dimension mismatch, duplicate graph edge, invalid instance, …).
    Invalid(String),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "payload truncated"),
            CodecError::Trailing(n) => write!(f, "{n} trailing bytes after value"),
            CodecError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag:#04x}"),
            CodecError::Invalid(msg) => write!(f, "invalid payload: {msg}"),
        }
    }
}

impl std::error::Error for CodecError {}

fn invalid<T>(msg: impl Into<String>) -> Result<T, CodecError> {
    Err(CodecError::Invalid(msg.into()))
}

// ---------------------------------------------------------------- primitives

/// Append-only byte sink for the encoders.
struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn len(&mut self, n: usize) {
        debug_assert!(n <= u32::MAX as usize, "sequence too long for the wire");
        self.u32(n as u32);
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn indices(&mut self, list: &[usize]) {
        self.len(list.len());
        for &v in list {
            self.usize(v);
        }
    }

    fn floats(&mut self, list: &[f64]) {
        self.len(list.len());
        for &v in list {
            self.f64(v);
        }
    }
}

/// Bounds-checked cursor for the decoders.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self) -> Result<usize, CodecError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| CodecError::Invalid(format!("index {v} overflows usize")))
    }

    fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a sequence length and validates it against the bytes actually
    /// left (`min_width` bytes per element), so corrupted lengths fail as
    /// [`CodecError::Truncated`] instead of attempting a huge allocation.
    fn len(&mut self, min_width: usize) -> Result<usize, CodecError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_width) > self.remaining() {
            return Err(CodecError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, CodecError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::Invalid("non-UTF-8 string".into()))
    }

    fn indices(&mut self) -> Result<Vec<usize>, CodecError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    fn floats(&mut self) -> Result<Vec<f64>, CodecError> {
        let n = self.len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn finish(self) -> Result<(), CodecError> {
        if self.remaining() > 0 {
            return Err(CodecError::Trailing(self.remaining()));
        }
        Ok(())
    }
}

// ------------------------------------------------------------- domain values

fn write_instance(w: &mut Writer, instance: &SvgicInstance) {
    let n = instance.num_users();
    let m = instance.num_items();
    let graph = instance.graph();
    w.usize(n);
    w.len(graph.num_edges());
    for &(u, v) in graph.edges() {
        w.usize(u);
        w.usize(v);
    }
    w.usize(m);
    w.usize(instance.num_slots());
    w.f64(instance.lambda());
    w.len(n * m);
    for u in 0..n {
        for &p in instance.preference_row(u) {
            w.f64(p);
        }
    }
    w.len(graph.num_edges() * m);
    for e in 0..graph.num_edges() {
        for c in 0..m {
            w.f64(instance.social_by_edge(e, c));
        }
    }
    match instance.item_labels() {
        None => w.u8(0),
        Some(labels) => {
            w.u8(1);
            w.len(labels.len());
            for label in labels {
                w.str(label);
            }
        }
    }
}

fn read_instance(r: &mut Reader) -> Result<SvgicInstance, CodecError> {
    let n = r.usize()?;
    // A valid instance still has to carry an `n × m ≥ n`-entry preference
    // matrix (8 bytes each), so `n` can never exceed the remaining payload
    // / 8 — checked *before* the graph's adjacency vectors are allocated,
    // so a corrupted population count cannot balloon memory.
    if n.saturating_mul(8) > r.remaining() {
        return Err(CodecError::Truncated);
    }
    let edge_count = r.len(16)?;
    let mut graph = SocialGraph::new(n);
    for _ in 0..edge_count {
        let (u, v) = (r.usize()?, r.usize()?);
        if u >= n || v >= n {
            return invalid(format!("edge ({u}, {v}) outside population 0..{n}"));
        }
        if graph.add_edge(u, v).is_none() {
            return invalid(format!("duplicate or self-loop edge ({u}, {v})"));
        }
    }
    let m = r.usize()?;
    let k = r.usize()?;
    let lambda = r.f64()?;
    let pref_len = r.len(8)?;
    if pref_len != n.saturating_mul(m) {
        return invalid(format!(
            "preference matrix {pref_len} entries, want {n}×{m}"
        ));
    }
    let pref: Vec<f64> = (0..pref_len).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let tau_len = r.len(8)?;
    if tau_len != edge_count.saturating_mul(m) {
        return invalid(format!(
            "social matrix {tau_len} entries, want {edge_count}×{m}"
        ));
    }
    let tau: Vec<f64> = (0..tau_len).map(|_| r.f64()).collect::<Result<_, _>>()?;
    let labels = match r.u8()? {
        0 => None,
        1 => {
            let count = r.len(4)?;
            Some((0..count).map(|_| r.str()).collect::<Result<Vec<_>, _>>()?)
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "labels",
                tag,
            })
        }
    };
    let edges: Vec<(usize, usize)> = graph.edges().to_vec();
    let mut builder = SvgicInstanceBuilder::new(graph, m, k, lambda)
        .with_preference_matrix(pref)
        .map_err(|e| CodecError::Invalid(e.to_string()))?;
    for (e, &(u, v)) in edges.iter().enumerate() {
        for c in 0..m {
            builder.set_social(u, v, c, tau[e * m + c]);
        }
    }
    if let Some(labels) = labels {
        builder = builder.with_item_labels(labels);
    }
    builder
        .build()
        .map_err(|e| CodecError::Invalid(e.to_string()))
}

fn write_configuration(w: &mut Writer, configuration: &Configuration) {
    let n = configuration.num_users();
    let k = configuration.num_slots();
    w.usize(n);
    w.usize(k);
    for u in 0..n {
        for &c in configuration.items_of(u) {
            w.usize(c);
        }
    }
}

fn read_configuration(r: &mut Reader) -> Result<Configuration, CodecError> {
    let n = r.usize()?;
    let k = r.usize()?;
    let cells = n.saturating_mul(k);
    if cells.saturating_mul(8) > r.remaining() {
        return Err(CodecError::Truncated);
    }
    let assign: Vec<usize> = (0..cells).map(|_| r.usize()).collect::<Result<_, _>>()?;
    Ok(Configuration::from_flat(n, k, assign))
}

fn write_view(w: &mut Writer, view: &ConfigurationView) {
    w.u64(view.session.0);
    w.indices(&view.present);
    w.indices(&view.catalog);
    write_configuration(w, &view.configuration);
    w.f64(view.utility);
    w.f64(view.lp_bound);
    w.usize(view.staleness);
    w.u64(view.generation);
}

fn read_view(r: &mut Reader) -> Result<ConfigurationView, CodecError> {
    Ok(ConfigurationView {
        session: SessionId(r.u64()?),
        present: r.indices()?,
        catalog: r.indices()?,
        configuration: read_configuration(r)?,
        utility: r.f64()?,
        lp_bound: r.f64()?,
        staleness: r.usize()?,
        generation: r.u64()?,
    })
}

fn write_event(w: &mut Writer, event: &SessionEvent) {
    use svgic_core::extensions::DynamicEvent;
    match event {
        SessionEvent::Membership(DynamicEvent::Join(user)) => {
            w.u8(1);
            w.usize(*user);
        }
        SessionEvent::Membership(DynamicEvent::Leave(user)) => {
            w.u8(2);
            w.usize(*user);
        }
        SessionEvent::SetCatalog(items) => {
            w.u8(3);
            w.indices(items);
        }
        SessionEvent::RetuneLambda(lambda) => {
            w.u8(4);
            w.f64(*lambda);
        }
    }
}

fn read_event(r: &mut Reader) -> Result<SessionEvent, CodecError> {
    use svgic_core::extensions::DynamicEvent;
    match r.u8()? {
        1 => Ok(SessionEvent::Membership(DynamicEvent::Join(r.usize()?))),
        2 => Ok(SessionEvent::Membership(DynamicEvent::Leave(r.usize()?))),
        3 => Ok(SessionEvent::SetCatalog(r.indices()?)),
        4 => Ok(SessionEvent::RetuneLambda(r.f64()?)),
        tag => Err(CodecError::BadTag {
            what: "session event",
            tag,
        }),
    }
}

fn backend_tag(backend: LpBackend) -> u8 {
    match backend {
        LpBackend::ExactSimplex => 1,
        LpBackend::Structured => 2,
        LpBackend::FullLpSvgic => 3,
        LpBackend::Auto => 4,
    }
}

fn backend_from_tag(tag: u8) -> Result<LpBackend, CodecError> {
    match tag {
        1 => Ok(LpBackend::ExactSimplex),
        2 => Ok(LpBackend::Structured),
        3 => Ok(LpBackend::FullLpSvgic),
        4 => Ok(LpBackend::Auto),
        tag => Err(CodecError::BadTag {
            what: "LP backend",
            tag,
        }),
    }
}

fn write_factors(w: &mut Writer, factors: &UtilityFactors) {
    w.usize(factors.num_users());
    w.usize(factors.num_items());
    w.usize(factors.num_slots());
    w.floats(factors.aggregate_matrix());
    w.f64(factors.scaled_objective);
    w.u8(backend_tag(factors.backend));
}

fn read_factors(r: &mut Reader) -> Result<UtilityFactors, CodecError> {
    let n = r.usize()?;
    let m = r.usize()?;
    let k = r.usize()?;
    let aggregate = r.floats()?;
    let scaled_objective = r.f64()?;
    let backend = backend_from_tag(r.u8()?)?;
    UtilityFactors::from_parts(n, m, k, aggregate, scaled_objective, backend)
        .ok_or_else(|| CodecError::Invalid(format!("factor matrix is not {n}×{m} and finite")))
}

fn write_served(w: &mut Writer, served: &Served) {
    write_configuration(w, &served.configuration);
    w.indices(&served.present);
    w.indices(&served.catalog);
    w.f64(served.utility);
    w.f64(served.lp_bound);
    w.u8(served.tight as u8);
}

fn read_served(r: &mut Reader) -> Result<Served, CodecError> {
    Ok(Served {
        configuration: read_configuration(r)?,
        present: r.indices()?,
        catalog: r.indices()?,
        utility: r.f64()?,
        lp_bound: r.f64()?,
        tight: read_bool(r)?,
    })
}

fn read_bool(r: &mut Reader) -> Result<bool, CodecError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(CodecError::BadTag { what: "bool", tag }),
    }
}

fn write_option<T>(w: &mut Writer, value: Option<&T>, body: impl FnOnce(&mut Writer, &T)) {
    match value {
        None => w.u8(0),
        Some(value) => {
            w.u8(1);
            body(w, value);
        }
    }
}

fn read_option<T>(
    r: &mut Reader,
    body: impl FnOnce(&mut Reader) -> Result<T, CodecError>,
) -> Result<Option<T>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(body(r)?)),
        tag => Err(CodecError::BadTag {
            what: "option",
            tag,
        }),
    }
}

fn write_export(w: &mut Writer, export: &SessionExport) {
    write_instance(w, &export.full);
    w.indices(&export.catalog);
    w.f64(export.lambda);
    w.indices(&export.present);
    w.len(export.pending.len());
    for event in &export.pending {
        write_event(w, event);
    }
    write_option(w, export.served.as_ref(), write_served);
    w.u64(export.seed);
    w.u64(export.generation);
    w.usize(export.events_since_full);
    w.u64(export.lifetime_events);
    write_option(w, export.last_factors.as_deref(), write_factors);
    write_option(w, export.last_factor_fingerprint.as_ref(), |w, &fp| {
        w.u64(fp)
    });
}

fn read_export(r: &mut Reader) -> Result<SessionExport, CodecError> {
    let full = Arc::new(read_instance(r)?);
    let catalog = r.indices()?;
    let lambda = r.f64()?;
    let present = r.indices()?;
    let pending_count = r.len(1)?;
    let pending = (0..pending_count)
        .map(|_| read_event(r))
        .collect::<Result<Vec<_>, _>>()?;
    let export = SessionExport {
        full,
        catalog,
        lambda,
        present,
        pending,
        served: read_option(r, read_served)?,
        seed: r.u64()?,
        generation: r.u64()?,
        events_since_full: r.usize()?,
        lifetime_events: r.u64()?,
        last_factors: read_option(r, read_factors)?.map(Arc::new),
        last_factor_fingerprint: read_option(r, |r| r.u64())?,
    };
    validate_export(&export)?;
    Ok(export)
}

/// Requires `list` to be a strictly increasing sequence of indices below
/// `bound` (the sorted/deduped invariant every export field carries).
fn require_sorted_indices(list: &[usize], bound: usize, what: &str) -> Result<(), CodecError> {
    for (position, &index) in list.iter().enumerate() {
        if index >= bound {
            return invalid(format!("{what} index {index} out of range 0..{bound}"));
        }
        if position > 0 && list[position - 1] >= index {
            return invalid(format!("{what} indices not strictly increasing"));
        }
    }
    Ok(())
}

/// Semantic validation of a decoded export. `read_instance` already proved
/// the *instance* valid; this closes the session-level fields, which
/// `Engine::import_session` (unlike `submit_event`) trusts verbatim — an
/// engine-produced export satisfies all of this by construction, so on the
/// wire anything that fails here is corruption or a hostile peer, and must
/// be rejected before it can panic the serving thread or corrupt a session.
fn validate_export(export: &SessionExport) -> Result<(), CodecError> {
    let n = export.full.num_users();
    let m = export.full.num_items();
    let k = export.full.num_slots();
    if !export.lambda.is_finite() || !(0.0..=1.0).contains(&export.lambda) {
        return invalid(format!("export lambda {} outside [0, 1]", export.lambda));
    }
    require_sorted_indices(&export.catalog, m, "export catalog")?;
    if export.catalog.len() < k {
        return invalid(format!(
            "export catalog has {} items, fewer than k = {k}",
            export.catalog.len()
        ));
    }
    require_sorted_indices(&export.present, n, "export present")?;
    for event in &export.pending {
        use svgic_core::extensions::DynamicEvent;
        match event {
            SessionEvent::Membership(DynamicEvent::Join(user))
            | SessionEvent::Membership(DynamicEvent::Leave(user)) => {
                if *user >= n {
                    return invalid(format!("pending event user {user} outside 0..{n}"));
                }
            }
            SessionEvent::SetCatalog(items) => {
                // The engine stores these sorted + deduped (`validate_event`
                // normalizes at submit), so an export carries them that way.
                require_sorted_indices(items, m, "pending SetCatalog")?;
                if items.len() < k {
                    return invalid("pending SetCatalog cannot fill k slots");
                }
            }
            SessionEvent::RetuneLambda(value) => {
                if !value.is_finite() || !(0.0..=1.0).contains(value) {
                    return invalid(format!("pending lambda {value} outside [0, 1]"));
                }
            }
        }
    }
    if let Some(served) = &export.served {
        require_sorted_indices(&served.present, n, "served present")?;
        require_sorted_indices(&served.catalog, m, "served catalog")?;
        let configuration = &served.configuration;
        if configuration.num_users() != served.present.len() {
            return invalid("served configuration covers a different population");
        }
        for user in 0..configuration.num_users() {
            if configuration
                .items_of(user)
                .iter()
                .any(|&item| item >= served.catalog.len())
            {
                return invalid("served configuration references items outside its catalogue");
            }
        }
        if !served.utility.is_finite() || !served.lp_bound.is_finite() {
            return invalid("served utility/bound not finite");
        }
    }
    if let Some(factors) = &export.last_factors {
        // Factors are computed over the base instance: full population ×
        // active catalogue (see `SessionState`).
        if factors.num_users() != n || factors.num_items() != export.catalog.len() {
            return invalid(format!(
                "warm factors are {}×{}, base instance is {n}×{}",
                factors.num_users(),
                factors.num_items(),
                export.catalog.len()
            ));
        }
    }
    Ok(())
}

fn write_duration(w: &mut Writer, d: Duration) {
    w.u64(d.as_nanos().min(u64::MAX as u128) as u64);
}

fn read_duration(r: &mut Reader) -> Result<Duration, CodecError> {
    Ok(Duration::from_nanos(r.u64()?))
}

/// A sparse [`HistogramSnapshot`]: pair count, `(u32 slot, u64 count)`
/// pairs, then the exact sum and max in nanoseconds. The total is recomputed
/// on decode (it is derived state, so it cannot travel inconsistently).
fn write_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    w.len(h.pairs().len());
    for &(slot, count) in h.pairs() {
        w.u32(slot);
        w.u64(count);
    }
    w.u64(h.sum_nanos());
    w.u64(h.max_nanos());
}

fn read_histogram(r: &mut Reader) -> Result<HistogramSnapshot, CodecError> {
    let n = r.len(12)?;
    let pairs = (0..n)
        .map(|_| Ok((r.u32()?, r.u64()?)))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let sum_nanos = r.u64()?;
    let max_nanos = r.u64()?;
    HistogramSnapshot::from_pairs(pairs, sum_nanos, max_nanos)
        .map_err(|msg| CodecError::Invalid(msg.into()))
}

fn write_stats(w: &mut Writer, s: &StatsSnapshot) {
    w.u64(s.requests);
    w.u64(s.sessions_created);
    w.u64(s.sessions_closed);
    w.u64(s.sessions_exported);
    w.u64(s.sessions_imported);
    w.len(s.shards.len());
    for shard in &s.shards {
        w.u64(shard.jobs);
        w.u64(shard.solves);
        write_duration(w, shard.busy_time);
        w.u64(shard.queue_depth);
        w.u64(shard.cache_entries);
        w.u64(shard.cache_bytes);
    }
    w.u64(s.events_submitted);
    w.u64(s.events_coalesced);
    w.u64(s.batches);
    w.u64(s.solves_incremental);
    w.u64(s.solves_full);
    w.u64(s.cache_hits);
    w.u64(s.cache_misses);
    w.u64(s.batch_shared);
    w.u64(s.session_reuse);
    w.u64(s.solves_warm);
    w.u64(s.solves_cold);
    w.u64(s.warm_components_reused);
    w.u64(s.warm_components_solved);
    write_duration(w, s.lp_time);
    write_duration(w, s.warm_solve_time);
    write_duration(w, s.cold_solve_time);
    write_duration(w, s.round_time);
    write_duration(w, s.max_solve_time);
    w.u64(s.gap_micros);
    w.u64(s.gap_samples);
    write_histogram(w, &s.lp_latency);
    write_histogram(w, &s.warm_solve_latency);
    write_histogram(w, &s.cold_solve_latency);
    write_histogram(w, &s.round_latency);
    write_histogram(w, &s.queue_wait_latency);
    w.u64(s.mem_session_bytes);
    w.u64(s.mem_pending_bytes);
    w.u64(s.mem_served_bytes);
    w.len(s.profile.len());
    for entry in &s.profile {
        write_profile_entry(w, entry);
    }
    w.u64(s.profile_dropped);
}

fn read_stats(r: &mut Reader) -> Result<StatsSnapshot, CodecError> {
    let requests = r.u64()?;
    let sessions_created = r.u64()?;
    let sessions_closed = r.u64()?;
    let sessions_exported = r.u64()?;
    let sessions_imported = r.u64()?;
    let shard_count = r.len(48)?;
    let shards = (0..shard_count)
        .map(|_| {
            Ok(ShardSnapshot {
                jobs: r.u64()?,
                solves: r.u64()?,
                busy_time: read_duration(r)?,
                queue_depth: r.u64()?,
                cache_entries: r.u64()?,
                cache_bytes: r.u64()?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(StatsSnapshot {
        requests,
        sessions_created,
        sessions_closed,
        sessions_exported,
        sessions_imported,
        shards,
        events_submitted: r.u64()?,
        events_coalesced: r.u64()?,
        batches: r.u64()?,
        solves_incremental: r.u64()?,
        solves_full: r.u64()?,
        cache_hits: r.u64()?,
        cache_misses: r.u64()?,
        batch_shared: r.u64()?,
        session_reuse: r.u64()?,
        solves_warm: r.u64()?,
        solves_cold: r.u64()?,
        warm_components_reused: r.u64()?,
        warm_components_solved: r.u64()?,
        lp_time: read_duration(r)?,
        warm_solve_time: read_duration(r)?,
        cold_solve_time: read_duration(r)?,
        round_time: read_duration(r)?,
        max_solve_time: read_duration(r)?,
        gap_micros: r.u64()?,
        gap_samples: r.u64()?,
        lp_latency: read_histogram(r)?,
        warm_solve_latency: read_histogram(r)?,
        cold_solve_latency: read_histogram(r)?,
        round_latency: read_histogram(r)?,
        queue_wait_latency: read_histogram(r)?,
        mem_session_bytes: r.u64()?,
        mem_pending_bytes: r.u64()?,
        mem_served_bytes: r.u64()?,
        profile: {
            let n = r.len(64)?;
            (0..n)
                .map(|_| read_profile_entry(r))
                .collect::<Result<Vec<_>, CodecError>>()?
        },
        profile_dropped: r.u64()?,
    })
}

/// One fixed-width (64-byte) ledger entry: eight `u64` fields in declaration
/// order.
fn write_profile_entry(w: &mut Writer, e: &ProfileEntry) {
    w.u64(e.template_fingerprint);
    w.u64(e.warm_solves);
    w.u64(e.cold_solves);
    w.u64(e.warm_nanos);
    w.u64(e.cold_nanos);
    w.u64(e.miss_new);
    w.u64(e.miss_evicted);
    w.u64(e.miss_component_changed);
}

fn read_profile_entry(r: &mut Reader) -> Result<ProfileEntry, CodecError> {
    Ok(ProfileEntry {
        template_fingerprint: r.u64()?,
        warm_solves: r.u64()?,
        cold_solves: r.u64()?,
        warm_nanos: r.u64()?,
        cold_nanos: r.u64()?,
        miss_new: r.u64()?,
        miss_evicted: r.u64()?,
        miss_component_changed: r.u64()?,
    })
}

/// Phases travel as their index in [`Phase::ALL`] (an append-only contract —
/// see `svgic_obs::phase`); decode rejects out-of-range indices.
fn write_phase(w: &mut Writer, phase: Phase) {
    w.u8(phase.index());
}

fn read_phase(r: &mut Reader) -> Result<Phase, CodecError> {
    let index = r.u8()?;
    Phase::from_index(index).ok_or(CodecError::BadTag {
        what: "phase",
        tag: index,
    })
}

fn write_profile(w: &mut Writer, p: &EngineProfile) {
    w.len(p.entries.len());
    for entry in &p.entries {
        write_profile_entry(w, entry);
    }
    w.u64(p.dropped);
    w.len(p.phases.len());
    for agg in &p.phases {
        write_phase(w, agg.phase);
        w.u64(agg.count);
        w.u64(agg.total_nanos);
        w.u64(agg.max_nanos);
    }
    w.len(p.waterfalls.len());
    for wf in &p.waterfalls {
        w.u64(wf.request_id);
        w.u64(wf.total_nanos);
        w.len(wf.spans.len());
        for span in &wf.spans {
            write_phase(w, span.phase);
            w.u64(span.start_nanos);
            w.u64(span.duration_nanos);
            w.u32(span.shard);
        }
    }
    w.str(&p.collapsed);
}

fn read_profile(r: &mut Reader) -> Result<EngineProfile, CodecError> {
    let entry_count = r.len(64)?;
    let entries = (0..entry_count)
        .map(|_| read_profile_entry(r))
        .collect::<Result<Vec<_>, CodecError>>()?;
    let dropped = r.u64()?;
    let phase_count = r.len(25)?;
    let phases = (0..phase_count)
        .map(|_| {
            Ok(PhaseAggregate {
                phase: read_phase(r)?,
                count: r.u64()?,
                total_nanos: r.u64()?,
                max_nanos: r.u64()?,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    let waterfall_count = r.len(20)?;
    let waterfalls = (0..waterfall_count)
        .map(|_| {
            let request_id = r.u64()?;
            let total_nanos = r.u64()?;
            let span_count = r.len(21)?;
            let spans = (0..span_count)
                .map(|_| {
                    Ok(WaterfallSpan {
                        phase: read_phase(r)?,
                        start_nanos: r.u64()?,
                        duration_nanos: r.u64()?,
                        shard: r.u32()?,
                    })
                })
                .collect::<Result<Vec<_>, CodecError>>()?;
            Ok(RequestWaterfall {
                request_id,
                total_nanos,
                spans,
            })
        })
        .collect::<Result<Vec<_>, CodecError>>()?;
    Ok(EngineProfile {
        entries,
        dropped,
        phases,
        waterfalls,
        collapsed: r.str()?,
    })
}

/// One fixed-width (88-byte) telemetry sample: eleven `u64` fields in
/// declaration order, rates already integer-encoded as parts per million.
fn write_sample(w: &mut Writer, s: &TelemetrySample) {
    w.u64(s.tick);
    w.u64(s.requests);
    w.u64(s.solves);
    w.u64(s.queue_depth);
    w.u64(s.warm_rate_ppm);
    w.u64(s.imbalance_ppm);
    w.u64(s.mem_session_bytes);
    w.u64(s.mem_pending_bytes);
    w.u64(s.mem_served_bytes);
    w.u64(s.mem_cache_bytes);
    w.u64(s.mem_total_bytes);
}

fn read_sample(r: &mut Reader) -> Result<TelemetrySample, CodecError> {
    Ok(TelemetrySample {
        tick: r.u64()?,
        requests: r.u64()?,
        solves: r.u64()?,
        queue_depth: r.u64()?,
        warm_rate_ppm: r.u64()?,
        imbalance_ppm: r.u64()?,
        mem_session_bytes: r.u64()?,
        mem_pending_bytes: r.u64()?,
        mem_served_bytes: r.u64()?,
        mem_cache_bytes: r.u64()?,
        mem_total_bytes: r.u64()?,
    })
}

fn write_info(w: &mut Writer, info: &EngineInfo) {
    w.usize(info.workers);
    w.usize(info.shards);
    w.usize(info.sessions);
    w.usize(info.pending_events);
}

fn read_info(r: &mut Reader) -> Result<EngineInfo, CodecError> {
    Ok(EngineInfo {
        workers: r.usize()?,
        shards: r.usize()?,
        sessions: r.usize()?,
        pending_events: r.usize()?,
    })
}

fn write_error(w: &mut Writer, error: &EngineError) {
    match error {
        EngineError::UnknownSession(id) => {
            w.u8(1);
            w.u64(id.0);
        }
        EngineError::InvalidEvent(msg) => {
            w.u8(2);
            w.str(msg);
        }
        EngineError::InvalidSession(msg) => {
            w.u8(3);
            w.str(msg);
        }
        EngineError::Transport(msg) => {
            w.u8(4);
            w.str(msg);
        }
    }
}

fn read_error(r: &mut Reader) -> Result<EngineError, CodecError> {
    match r.u8()? {
        1 => Ok(EngineError::UnknownSession(SessionId(r.u64()?))),
        2 => Ok(EngineError::InvalidEvent(r.str()?)),
        3 => Ok(EngineError::InvalidSession(r.str()?)),
        4 => Ok(EngineError::Transport(r.str()?)),
        tag => Err(CodecError::BadTag {
            what: "engine error",
            tag,
        }),
    }
}

// ------------------------------------------------------------ request codec

/// Encodes a request into its canonical byte form.
pub fn encode_request(request: &EngineRequest) -> Vec<u8> {
    let mut w = Writer::new();
    match request {
        EngineRequest::CreateSession(spec) => {
            w.u8(1);
            write_instance(&mut w, &spec.instance);
            w.indices(&spec.initial_present);
            w.u64(spec.seed);
        }
        EngineRequest::SubmitEvent(session, event) => {
            w.u8(2);
            w.u64(session.0);
            write_event(&mut w, event);
        }
        EngineRequest::QueryConfiguration(session) => {
            w.u8(3);
            w.u64(session.0);
        }
        EngineRequest::ForceResolve(session) => {
            w.u8(4);
            w.u64(session.0);
        }
        EngineRequest::CloseSession(session) => {
            w.u8(5);
            w.u64(session.0);
        }
        EngineRequest::Flush => w.u8(6),
        EngineRequest::QueryStats => w.u8(7),
        EngineRequest::ResetStats => w.u8(8),
        EngineRequest::ExportSession(session) => {
            w.u8(9);
            w.u64(session.0);
        }
        EngineRequest::ImportSession(export) => {
            w.u8(10);
            write_export(&mut w, export);
        }
        EngineRequest::Describe => w.u8(11),
        EngineRequest::QueryMetrics => w.u8(12),
        EngineRequest::QueryTelemetry => w.u8(13),
        EngineRequest::QueryProfile => w.u8(14),
        EngineRequest::SnapshotSession(session) => {
            w.u8(15);
            w.u64(session.0);
        }
        EngineRequest::PutStandby(key, export) => {
            w.u8(16);
            w.u64(*key);
            write_export(&mut w, export);
        }
        EngineRequest::TakeStandby(key) => {
            w.u8(17);
            w.u64(*key);
        }
        EngineRequest::Crash => w.u8(18),
    }
    w.buf
}

/// The canonical wire size of a session export in bytes — what the cluster's
/// `replication_bytes` counter accounts per standby shipment, identical
/// in-process and over TCP because it is the export's actual payload length.
pub fn session_export_bytes(export: &SessionExport) -> u64 {
    let mut w = Writer::new();
    write_export(&mut w, export);
    w.buf.len() as u64
}

/// Decodes a request from its canonical byte form, rejecting truncated or
/// trailing bytes.
pub fn decode_request(bytes: &[u8]) -> Result<EngineRequest, CodecError> {
    let mut r = Reader::new(bytes);
    let request = match r.u8()? {
        1 => EngineRequest::CreateSession(Box::new(CreateSession {
            instance: read_instance(&mut r)?,
            initial_present: r.indices()?,
            seed: r.u64()?,
        })),
        2 => EngineRequest::SubmitEvent(SessionId(r.u64()?), read_event(&mut r)?),
        3 => EngineRequest::QueryConfiguration(SessionId(r.u64()?)),
        4 => EngineRequest::ForceResolve(SessionId(r.u64()?)),
        5 => EngineRequest::CloseSession(SessionId(r.u64()?)),
        6 => EngineRequest::Flush,
        7 => EngineRequest::QueryStats,
        8 => EngineRequest::ResetStats,
        9 => EngineRequest::ExportSession(SessionId(r.u64()?)),
        10 => EngineRequest::ImportSession(Box::new(read_export(&mut r)?)),
        11 => EngineRequest::Describe,
        12 => EngineRequest::QueryMetrics,
        13 => EngineRequest::QueryTelemetry,
        14 => EngineRequest::QueryProfile,
        15 => EngineRequest::SnapshotSession(SessionId(r.u64()?)),
        16 => {
            let key = r.u64()?;
            EngineRequest::PutStandby(key, Box::new(read_export(&mut r)?))
        }
        17 => EngineRequest::TakeStandby(r.u64()?),
        18 => EngineRequest::Crash,
        tag => {
            return Err(CodecError::BadTag {
                what: "request",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(request)
}

// ----------------------------------------------------------- response codec

/// Encodes a response (or the engine's rejection) into its canonical byte
/// form — the payload of a `svgic-net` response frame.
pub fn encode_response(response: &Result<EngineResponse, EngineError>) -> Vec<u8> {
    let mut w = Writer::new();
    match response {
        Err(error) => {
            w.u8(0);
            write_error(&mut w, error);
        }
        Ok(EngineResponse::SessionCreated(view)) => {
            w.u8(1);
            write_view(&mut w, view);
        }
        Ok(EngineResponse::EventAccepted { session, pending }) => {
            w.u8(2);
            w.u64(session.0);
            w.usize(*pending);
        }
        Ok(EngineResponse::Configuration(view)) => {
            w.u8(3);
            write_view(&mut w, view);
        }
        Ok(EngineResponse::Resolved(view)) => {
            w.u8(4);
            write_view(&mut w, view);
        }
        Ok(EngineResponse::SessionClosed {
            session,
            lifetime_events,
        }) => {
            w.u8(5);
            w.u64(session.0);
            w.u64(*lifetime_events);
        }
        Ok(EngineResponse::Flushed) => w.u8(6),
        Ok(EngineResponse::Stats(stats)) => {
            w.u8(7);
            write_stats(&mut w, stats);
        }
        Ok(EngineResponse::StatsReset) => w.u8(8),
        Ok(EngineResponse::SessionExported(export)) => {
            w.u8(9);
            write_export(&mut w, export);
        }
        Ok(EngineResponse::SessionImported(session)) => {
            w.u8(10);
            w.u64(session.0);
        }
        Ok(EngineResponse::Description(info)) => {
            w.u8(11);
            write_info(&mut w, info);
        }
        Ok(EngineResponse::Metrics(metrics)) => {
            w.u8(12);
            w.len(metrics.len());
            for (name, value) in metrics {
                w.str(name);
                w.f64(*value);
            }
        }
        Ok(EngineResponse::Telemetry(samples)) => {
            w.u8(13);
            w.len(samples.len());
            for sample in samples {
                write_sample(&mut w, sample);
            }
        }
        Ok(EngineResponse::Profile(profile)) => {
            w.u8(14);
            write_profile(&mut w, profile);
        }
        Ok(EngineResponse::StandbyStored) => w.u8(15),
        Ok(EngineResponse::StandbyTaken(export)) => {
            w.u8(16);
            write_option(&mut w, export.as_deref(), write_export);
        }
        Ok(EngineResponse::Crashed) => w.u8(17),
    }
    w.buf
}

/// Decodes a response from its canonical byte form, rejecting truncated or
/// trailing bytes.
pub fn decode_response(bytes: &[u8]) -> Result<Result<EngineResponse, EngineError>, CodecError> {
    let mut r = Reader::new(bytes);
    let response = match r.u8()? {
        0 => Err(read_error(&mut r)?),
        1 => Ok(EngineResponse::SessionCreated(read_view(&mut r)?)),
        2 => Ok(EngineResponse::EventAccepted {
            session: SessionId(r.u64()?),
            pending: r.usize()?,
        }),
        3 => Ok(EngineResponse::Configuration(read_view(&mut r)?)),
        4 => Ok(EngineResponse::Resolved(read_view(&mut r)?)),
        5 => Ok(EngineResponse::SessionClosed {
            session: SessionId(r.u64()?),
            lifetime_events: r.u64()?,
        }),
        6 => Ok(EngineResponse::Flushed),
        7 => Ok(EngineResponse::Stats(Box::new(read_stats(&mut r)?))),
        8 => Ok(EngineResponse::StatsReset),
        9 => Ok(EngineResponse::SessionExported(Box::new(read_export(
            &mut r,
        )?))),
        10 => Ok(EngineResponse::SessionImported(SessionId(r.u64()?))),
        11 => Ok(EngineResponse::Description(read_info(&mut r)?)),
        12 => {
            let n = r.len(12)?;
            let metrics = (0..n)
                .map(|_| Ok((r.str()?, r.f64()?)))
                .collect::<Result<Vec<_>, CodecError>>()?;
            Ok(EngineResponse::Metrics(metrics))
        }
        13 => {
            let n = r.len(88)?;
            let samples = (0..n)
                .map(|_| read_sample(&mut r))
                .collect::<Result<Vec<_>, CodecError>>()?;
            Ok(EngineResponse::Telemetry(samples))
        }
        14 => Ok(EngineResponse::Profile(Box::new(read_profile(&mut r)?))),
        15 => Ok(EngineResponse::StandbyStored),
        16 => Ok(EngineResponse::StandbyTaken(
            read_option(&mut r, read_export)?.map(Box::new),
        )),
        17 => Ok(EngineResponse::Crashed),
        tag => {
            return Err(CodecError::BadTag {
                what: "response",
                tag,
            })
        }
    };
    r.finish()?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_core::extensions::DynamicEvent;

    fn assert_request_roundtrip(request: &EngineRequest) {
        let bytes = encode_request(request);
        let decoded = decode_request(&bytes).expect("decodes");
        assert_eq!(
            encode_request(&decoded),
            bytes,
            "canonical re-encode differs for {request:?}"
        );
    }

    #[test]
    fn requests_roundtrip_canonically() {
        for request in [
            EngineRequest::CreateSession(Box::new(CreateSession {
                instance: running_example(),
                initial_present: vec![0, 2],
                seed: 0xDEAD_BEEF,
            })),
            EngineRequest::SubmitEvent(
                SessionId(7),
                SessionEvent::Membership(DynamicEvent::Join(3)),
            ),
            EngineRequest::SubmitEvent(SessionId(7), SessionEvent::SetCatalog(vec![0, 1, 4])),
            EngineRequest::SubmitEvent(SessionId(7), SessionEvent::RetuneLambda(0.1 + 0.2)),
            EngineRequest::QueryConfiguration(SessionId(1)),
            EngineRequest::ForceResolve(SessionId(2)),
            EngineRequest::CloseSession(SessionId(3)),
            EngineRequest::Flush,
            EngineRequest::QueryStats,
            EngineRequest::ResetStats,
            EngineRequest::ExportSession(SessionId(4)),
            EngineRequest::Describe,
            EngineRequest::QueryMetrics,
            EngineRequest::QueryTelemetry,
            EngineRequest::QueryProfile,
            EngineRequest::SnapshotSession(SessionId(5)),
            EngineRequest::PutStandby(
                0xC0FFEE,
                Box::new(crate::session::SessionExport {
                    full: Arc::new(running_example()),
                    catalog: vec![0, 1, 2, 3, 4],
                    lambda: 0.5,
                    present: vec![0, 1, 2, 3],
                    pending: vec![SessionEvent::Membership(DynamicEvent::Leave(1))],
                    served: None,
                    seed: 9,
                    generation: 4,
                    events_since_full: 1,
                    lifetime_events: 6,
                    last_factors: None,
                    last_factor_fingerprint: Some(0xFEED),
                }),
            ),
            EngineRequest::TakeStandby(0xC0FFEE),
            EngineRequest::Crash,
        ] {
            assert_request_roundtrip(&request);
        }
    }

    #[test]
    fn standby_responses_roundtrip() {
        let export = crate::session::SessionExport {
            full: Arc::new(running_example()),
            catalog: vec![0, 1, 2, 3, 4],
            lambda: 0.5,
            present: vec![0, 2],
            pending: Vec::new(),
            served: None,
            seed: 3,
            generation: 1,
            events_since_full: 0,
            lifetime_events: 2,
            last_factors: None,
            last_factor_fingerprint: None,
        };
        let responses = [
            Ok(EngineResponse::StandbyStored),
            Ok(EngineResponse::StandbyTaken(None)),
            Ok(EngineResponse::StandbyTaken(Some(Box::new(export.clone())))),
            Ok(EngineResponse::Crashed),
        ];
        for response in responses {
            let bytes = encode_response(&response);
            let decoded = decode_response(&bytes).expect("decodes");
            assert_eq!(
                encode_response(&decoded),
                bytes,
                "canonical re-encode differs"
            );
        }
        assert_eq!(
            session_export_bytes(&export),
            encode_request(&EngineRequest::PutStandby(0, Box::new(export))).len() as u64 - 9,
            "export size accounts the payload, not the tag/key framing"
        );
    }

    #[test]
    fn profile_responses_roundtrip() {
        let profile = EngineProfile {
            entries: vec![
                ProfileEntry {
                    template_fingerprint: 0x1111,
                    warm_solves: 3,
                    cold_solves: 2,
                    warm_nanos: 9_000,
                    cold_nanos: 80_000,
                    miss_new: 1,
                    miss_evicted: 1,
                    miss_component_changed: 0,
                },
                ProfileEntry {
                    template_fingerprint: 0x2222,
                    cold_solves: 1,
                    cold_nanos: 40_000,
                    miss_new: 1,
                    ..ProfileEntry::default()
                },
            ],
            dropped: 4,
            phases: vec![PhaseAggregate {
                phase: Phase::QueueWait,
                count: 7,
                total_nanos: 70_000,
                max_nanos: 20_000,
            }],
            waterfalls: vec![RequestWaterfall {
                request_id: 42,
                total_nanos: 1_000,
                spans: vec![WaterfallSpan {
                    phase: Phase::WireWait,
                    start_nanos: 0,
                    duration_nanos: 250,
                    shard: u32::MAX,
                }],
            }],
            collapsed: "Serve 100\nServe;ShardDispatch 40\n".into(),
        };
        for value in [EngineProfile::default(), profile] {
            let response = Ok(EngineResponse::Profile(Box::new(value.clone())));
            let bytes = encode_response(&response);
            match decode_response(&bytes).expect("decodes") {
                Ok(EngineResponse::Profile(decoded)) => assert_eq!(*decoded, value),
                other => panic!("decoded {other:?}"),
            }
            assert_eq!(encode_response(&response), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn profile_phase_indices_reject_unknown_phases() {
        // A Profile response whose phase index is past `Phase::ALL` must be
        // rejected as a bad tag, not mapped to some arbitrary phase.
        let mut w = Writer::new();
        w.u8(14); // Profile response tag
        w.len(0); // no ledger entries
        w.u64(0); // dropped
        w.len(1); // one phase aggregate
        w.u8(200); // phase index far outside Phase::ALL
        w.u64(1);
        w.u64(1);
        w.u64(1);
        w.len(0); // no waterfalls
        w.str(""); // collapsed
        assert!(matches!(
            decode_response(&w.buf),
            Err(CodecError::BadTag { what: "phase", .. })
        ));
    }

    #[test]
    fn telemetry_responses_roundtrip() {
        let samples = vec![
            TelemetrySample {
                tick: 0,
                requests: 12,
                solves: 5,
                queue_depth: 2,
                warm_rate_ppm: 640_000,
                imbalance_ppm: 1_100_000,
                mem_session_bytes: 4096,
                mem_pending_bytes: 128,
                mem_served_bytes: 256,
                mem_cache_bytes: 8192,
                mem_total_bytes: 12_672,
            },
            TelemetrySample {
                tick: 1,
                ..TelemetrySample::default()
            },
        ];
        for list in [Vec::new(), samples] {
            let response = Ok(EngineResponse::Telemetry(list.clone()));
            let bytes = encode_response(&response);
            match decode_response(&bytes).expect("decodes") {
                Ok(EngineResponse::Telemetry(decoded)) => assert_eq!(decoded, list),
                other => panic!("decoded {other:?}"),
            }
            assert_eq!(encode_response(&response), bytes, "canonical re-encode");
        }
    }

    #[test]
    fn sparse_histograms_roundtrip_including_empty_and_single_bucket() {
        use svgic_obs::AtomicHistogram;
        // Shapes: empty, a single bucket, and a multi-bucket spread. The
        // codec must rebuild totals exactly (total is derived on decode).
        let empty = AtomicHistogram::new().snapshot();
        let single = {
            let h = AtomicHistogram::new();
            for _ in 0..5 {
                h.record_nanos(1_500);
            }
            h.snapshot()
        };
        let spread = {
            let h = AtomicHistogram::new();
            for i in 0..200u64 {
                h.record_nanos(i * i * 997 + 1);
            }
            h.snapshot()
        };
        for (what, snapshot) in [("empty", empty), ("single", single), ("spread", spread)] {
            let mut w = Writer::new();
            write_histogram(&mut w, &snapshot);
            let mut r = Reader::new(&w.buf);
            let decoded = read_histogram(&mut r).unwrap_or_else(|e| panic!("{what}: {e}"));
            r.finish().expect("no trailing bytes");
            assert_eq!(decoded.pairs(), snapshot.pairs(), "{what}");
            assert_eq!(decoded.count(), snapshot.count(), "{what}");
            assert_eq!(decoded.sum_nanos(), snapshot.sum_nanos(), "{what}");
            assert_eq!(decoded.max_nanos(), snapshot.max_nanos(), "{what}");
            assert_eq!(
                decoded.quantile_nanos(0.99),
                snapshot.quantile_nanos(0.99),
                "{what}"
            );
            // Canonical: re-encoding the decoded value is byte-identical.
            let mut again = Writer::new();
            write_histogram(&mut again, &decoded);
            assert_eq!(again.buf, w.buf, "{what}");
        }
    }

    #[test]
    fn stats_snapshots_carry_mem_and_cache_byte_fields() {
        let stats = crate::stats::EngineStats::with_shards(2);
        stats.set_mem_gauges(1000, 200, 50);
        stats.set_shard_cache_gauges(1, 1, 777);
        let snapshot = stats.snapshot();
        let bytes = encode_response(&Ok(EngineResponse::Stats(Box::new(snapshot.clone()))));
        match decode_response(&bytes).expect("decodes") {
            Ok(EngineResponse::Stats(decoded)) => {
                assert_eq!(*decoded, snapshot);
                assert_eq!(decoded.mem_session_bytes, 1000);
                assert_eq!(decoded.shards[1].cache_bytes, 777);
                assert_eq!(decoded.mem_total_bytes(), 1000 + 200 + 50 + 777);
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn instance_survives_the_wire_bit_exactly() {
        let instance = running_example();
        let request = EngineRequest::CreateSession(Box::new(CreateSession {
            instance: instance.clone(),
            initial_present: vec![],
            seed: 1,
        }));
        let EngineRequest::CreateSession(decoded) =
            decode_request(&encode_request(&request)).expect("decodes")
        else {
            panic!("wrong variant");
        };
        let got = &decoded.instance;
        assert_eq!(got.num_users(), instance.num_users());
        assert_eq!(got.num_items(), instance.num_items());
        assert_eq!(got.num_slots(), instance.num_slots());
        assert_eq!(got.lambda().to_bits(), instance.lambda().to_bits());
        assert_eq!(got.graph().edges(), instance.graph().edges());
        for u in 0..instance.num_users() {
            for c in 0..instance.num_items() {
                assert_eq!(
                    got.preference(u, c).to_bits(),
                    instance.preference(u, c).to_bits()
                );
            }
        }
        for e in 0..instance.graph().num_edges() {
            for c in 0..instance.num_items() {
                assert_eq!(
                    got.social_by_edge(e, c).to_bits(),
                    instance.social_by_edge(e, c).to_bits()
                );
            }
        }
        assert_eq!(got.item_labels(), instance.item_labels());
        // The fingerprint — every cache key downstream — is identical too.
        assert_eq!(
            crate::fingerprint::instance_fingerprint(got),
            crate::fingerprint::instance_fingerprint(&instance)
        );
    }

    #[test]
    fn error_responses_roundtrip() {
        for error in [
            EngineError::UnknownSession(SessionId(9)),
            EngineError::InvalidEvent("user 12 outside population".into()),
            EngineError::InvalidSession("instance has no users".into()),
            EngineError::Transport("connection reset".into()),
        ] {
            let bytes = encode_response(&Err(error.clone()));
            match decode_response(&bytes).expect("decodes") {
                Err(decoded) => assert_eq!(decoded, error),
                Ok(other) => panic!("decoded {other:?}, wanted {error:?}"),
            }
        }
    }

    /// `Engine::import_session` trusts its export (the in-process callers
    /// are other engines), so the decode path must reject every
    /// semantically invalid field a hostile peer could craft — otherwise a
    /// wire `ImportSession` could panic the serving thread.
    #[test]
    fn hostile_exports_are_rejected_at_decode() {
        let base = || crate::session::SessionExport {
            full: Arc::new(running_example()), // 4 users, 5 items, k = 3
            catalog: vec![0, 1, 2, 3, 4],
            lambda: 0.5,
            present: vec![0, 1, 2, 3],
            pending: Vec::new(),
            served: None,
            seed: 1,
            generation: 2,
            events_since_full: 0,
            lifetime_events: 3,
            last_factors: None,
            last_factor_fingerprint: None,
        };
        let roundtrip = |export: crate::session::SessionExport| {
            decode_request(&encode_request(&EngineRequest::ImportSession(Box::new(
                export,
            ))))
        };
        assert!(roundtrip(base()).is_ok(), "the baseline export is valid");

        let cases: Vec<(&str, crate::session::SessionExport)> = vec![
            ("lambda out of range", {
                let mut e = base();
                e.lambda = 2.0;
                e
            }),
            ("catalog item outside universe", {
                let mut e = base();
                e.catalog = vec![0, 1, 9];
                e
            }),
            ("catalog smaller than k", {
                let mut e = base();
                e.catalog = vec![0, 1];
                e
            }),
            ("unsorted catalog", {
                let mut e = base();
                e.catalog = vec![2, 1, 0, 3];
                e
            }),
            ("present user outside population", {
                let mut e = base();
                e.present = vec![0, 7];
                e
            }),
            ("pending event outside population", {
                let mut e = base();
                e.pending = vec![SessionEvent::Membership(DynamicEvent::Join(99))];
                e
            }),
            ("pending lambda out of range", {
                let mut e = base();
                e.pending = vec![SessionEvent::RetuneLambda(f64::NAN)];
                e
            }),
            ("warm factors with wrong dimensions", {
                let mut e = base();
                e.last_factors = Some(Arc::new(
                    svgic_algorithms::UtilityFactors::from_parts(
                        2,
                        2,
                        1,
                        vec![0.5; 4],
                        1.0,
                        svgic_algorithms::LpBackend::Structured,
                    )
                    .unwrap(),
                ));
                e
            }),
        ];
        for (what, export) in cases {
            let decoded = roundtrip(export);
            assert!(
                matches!(decoded, Err(CodecError::Invalid(_))),
                "{what}: expected Invalid, got {decoded:?}"
            );
        }
    }

    #[test]
    fn truncation_and_corruption_error_cleanly() {
        let bytes = encode_request(&EngineRequest::CreateSession(Box::new(CreateSession {
            instance: running_example(),
            initial_present: vec![1],
            seed: 2,
        })));
        // Every strict prefix fails with Truncated, never panics.
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_request(&bytes[..cut]).err(),
                Some(CodecError::Truncated),
                "prefix of {cut} bytes"
            );
        }
        // Trailing garbage is rejected.
        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(
            decode_request(&extended).err(),
            Some(CodecError::Trailing(1))
        );
        // Unknown tags are rejected.
        assert!(matches!(
            decode_request(&[0xFF]),
            Err(CodecError::BadTag { .. })
        ));
        // A corrupted length field cannot allocate past the payload.
        let mut corrupt = bytes;
        // Byte 9 starts the edge-count length prefix (tag + n users).
        corrupt[9] = 0xFF;
        corrupt[10] = 0xFF;
        corrupt[11] = 0xFF;
        corrupt[12] = 0x7F;
        assert!(decode_request(&corrupt).is_err());
    }
}
