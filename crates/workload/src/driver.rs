//! The load driver: feeds a trace into `svgic-engine` and measures it.
//!
//! Two drive modes:
//!
//! * **Open loop** ([`DriveMode::OpenLoop`]) — events are submitted as fast
//!   as possible and the engine is flushed once per trace tick, exactly as
//!   the batched serving deployment runs. Submission latency and flush
//!   latency are recorded separately.
//! * **Closed loop** ([`DriveMode::ClosedLoop`]) — after every submitted
//!   event the driver flushes and waits for the fresh configuration, modeling
//!   a client that blocks on every update. This is the per-event latency
//!   worst case and the baseline the batched mode is compared against.
//!
//! Besides wall-clock measurements (log-bucketed histograms per request
//! class, sustained throughput) the driver folds every query response into a
//! deterministic **configuration digest**: replaying the same trace in the
//! same mode must reproduce the identical digest, which is how regressions
//! in served configurations are caught across machines.

use std::collections::HashMap;
use std::time::Instant;

use svgic_core::extensions::DynamicEvent;
use svgic_core::SvgicInstance;
use svgic_engine::fingerprint::Fnv;
use svgic_engine::prelude::*;
use svgic_engine::{CreateSession, TelemetrySample};

use crate::histogram::LatencyHistogram;
use crate::trace::{Trace, TraceEvent};

/// How the driver paces the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriveMode {
    /// Batched: flush once per trace tick.
    OpenLoop,
    /// Per-event: flush after every submitted event.
    ClosedLoop,
}

impl DriveMode {
    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            DriveMode::OpenLoop => "open-loop",
            DriveMode::ClosedLoop => "closed-loop",
        }
    }
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct DriverConfig {
    /// Pacing mode.
    pub mode: DriveMode,
    /// Ticks to drive before measurement starts. At the warmup boundary the
    /// engine counters are reset ([`Engine::reset_stats`]) **keeping its
    /// caches warm**, and the driver's latency/quality/throughput accounting
    /// restarts — so reports describe steady-state traffic only. `0` (the
    /// default) measures the whole run. The configuration digest always
    /// covers the full run, so the replay contract is warmup-independent.
    pub warmup_ticks: usize,
    /// Engine under test.
    pub engine: EngineConfig,
}

impl Default for DriverConfig {
    fn default() -> Self {
        let engine = EngineConfig {
            // The driver owns the batch clock; spontaneous auto-flushes would
            // blur the open/closed-loop distinction.
            auto_flush_pending: 0,
            ..EngineConfig::default()
        };
        DriverConfig {
            mode: DriveMode::OpenLoop,
            warmup_ticks: 0,
            engine,
        }
    }
}

/// Per-request-class latency histograms.
#[derive(Clone, Debug, Default)]
pub struct LatencyBreakdown {
    /// `CreateSession` (includes the initial solve).
    pub create: LatencyHistogram,
    /// Event submission (queueing only in open loop; in closed loop the
    /// matching flush is measured separately under `flush`).
    pub submit: LatencyHistogram,
    /// Configuration reads.
    pub query: LatencyHistogram,
    /// Engine flushes (one per tick in open loop, one per event in closed).
    pub flush: LatencyHistogram,
    /// Session closes.
    pub close: LatencyHistogram,
}

impl LatencyBreakdown {
    /// All classes merged into one histogram.
    pub fn all(&self) -> LatencyHistogram {
        let mut all = LatencyHistogram::new();
        for h in [
            &self.create,
            &self.submit,
            &self.query,
            &self.flush,
            &self.close,
        ] {
            all.merge(h);
        }
        all
    }
}

/// Utility-vs-bound quality accumulated over query responses under load.
#[derive(Clone, Copy, Debug, Default)]
pub struct QualityUnderLoad {
    /// Query responses with a non-empty configuration.
    pub samples: u64,
    /// Sum of served SAVG utilities.
    pub utility_sum: f64,
    /// Sum of LP bounds associated with the served solutions.
    pub bound_sum: f64,
}

impl QualityUnderLoad {
    /// Mean served utility (zero when no samples).
    pub fn mean_utility(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.utility_sum / self.samples as f64
        }
    }

    /// Aggregate utility / bound ratio in `[0, 1]`-ish (zero when unknown).
    pub fn bound_ratio(&self) -> f64 {
        if self.bound_sum <= 0.0 {
            0.0
        } else {
            self.utility_sum / self.bound_sum
        }
    }
}

/// Everything one driver run produced.
///
/// With a non-zero [`DriverConfig::warmup_ticks`], the measured fields
/// (`wall_seconds`, `requests`, `latency`, `quality`, `engine`) cover only
/// the post-warmup window; `trace_events`, `sessions` and `config_digest`
/// always cover the full run.
#[derive(Clone, Debug)]
pub struct LoadOutcome {
    /// Pacing mode the run used.
    pub mode: DriveMode,
    /// Wall-clock duration of the measured window.
    pub wall_seconds: f64,
    /// Engine requests issued in the measured window
    /// (create/submit/query/close; flushes excluded).
    pub requests: u64,
    /// Trace events consumed (including ticks), whole run.
    pub trace_events: usize,
    /// Sessions opened over the whole run.
    pub sessions: u64,
    /// Worker threads the engine actually ran with (resolved by the engine,
    /// so reports never re-derive the `0 = one per core` default).
    pub workers: usize,
    /// Per-class latency histograms.
    pub latency: LatencyBreakdown,
    /// Quality of served configurations sampled at queries.
    pub quality: QualityUnderLoad,
    /// Deterministic digest over every query response (and the final sweep).
    pub config_digest: u64,
    /// Engine counters at the end of the run.
    pub engine: StatsSnapshot,
    /// The engine's per-tick telemetry ring at the end of the run, oldest
    /// sample first (empty when the engine samples with capacity 0). With
    /// warmup, the ring restarts at the boundary along with the counters, so
    /// the series covers the measured window only.
    pub telemetry: Vec<TelemetrySample>,
}

impl LoadOutcome {
    /// Sustained request throughput (requests per wall-clock second).
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.requests as f64 / self.wall_seconds
        }
    }
}

/// Folds one query response into the digest (the engine's own FNV-1a word
/// hasher, so both sides of the cache key / replay story share one
/// implementation). Shared with the cluster driver, whose digests must be
/// comparable with single-engine runs.
pub(crate) fn digest_view(hasher: &mut Fnv, key: u64, view: &ConfigurationView) {
    hasher.write_u64(key);
    hasher.write_u64(view.generation);
    hasher.write_u64(view.present.len() as u64);
    for &user in &view.present {
        hasher.write_u64(user as u64);
    }
    hasher.write_u64(view.catalog.len() as u64);
    for &item in &view.catalog {
        hasher.write_u64(item as u64);
    }
    for user in 0..view.configuration.num_users() {
        for &item in view.configuration.items_of(user) {
            hasher.write_u64(item as u64);
        }
    }
    hasher.write_f64(view.utility);
}

/// The trace-driven load driver.
#[derive(Clone, Debug, Default)]
pub struct LoadDriver {
    config: DriverConfig,
}

impl LoadDriver {
    /// Builds a driver.
    pub fn new(config: DriverConfig) -> Self {
        LoadDriver { config }
    }

    /// Drives `trace` through a fresh in-process engine and measures it.
    ///
    /// Panics if the trace references unknown session keys or the engine
    /// rejects an event — traces produced by [`crate::synth::generate`] are
    /// valid by construction, so a rejection means the trace file was edited
    /// or corrupted.
    pub fn run(&self, trace: &Trace) -> LoadOutcome {
        let mut engine = Engine::new(self.config.engine.clone());
        self.run_on(&mut engine, trace)
    }

    /// Drives `trace` through any [`EngineTransport`] backend — the
    /// in-process engine, or a `svgic_net::NetClient` connected to a
    /// `loadgen serve` process (`loadgen --connect host:port`). The
    /// backend's own engine configuration applies;
    /// [`DriverConfig::engine`] is only used by [`LoadDriver::run`].
    ///
    /// Because the engine is deterministic and the wire codec canonical,
    /// `run_on` produces the identical `config_digest` through any backend;
    /// only the measured latencies differ (they include the transport).
    pub fn run_on<B: EngineTransport>(&self, mut engine: &mut B, trace: &Trace) -> LoadOutcome {
        let instances: Vec<SvgicInstance> =
            trace.templates.iter().map(|spec| spec.build()).collect();

        let workers = engine.describe().expect("backend describes itself").workers;
        // A remote backend may be a long-lived `loadgen serve` process that
        // already served earlier runs; start this run's counters from zero
        // so the reported stats cover exactly this trace. (A no-op for the
        // freshly built in-process engine — and never a digest concern,
        // since counters don't influence serving.)
        engine.reset_stats().expect("backend resets stats");
        let mut sessions: HashMap<u64, SessionId> = HashMap::new();
        let mut latency = LatencyBreakdown::default();
        let mut quality = QualityUnderLoad::default();
        let mut digest = Fnv::new();
        let mut requests = 0u64;
        let mut sessions_opened = 0u64;
        let closed_loop = self.config.mode == DriveMode::ClosedLoop;

        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
        let mut started = Instant::now();
        let mut warming = self.config.warmup_ticks > 0;
        for event in &trace.events {
            match event {
                TraceEvent::Tick(tick) => {
                    if !closed_loop {
                        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                        let t0 = Instant::now();
                        engine.flush().expect("backend flushes");
                        latency.flush.record(t0.elapsed());
                    }
                    if warming && *tick >= self.config.warmup_ticks {
                        // Warmup boundary: the flush above still belonged to
                        // the warmup window. Reset the engine counters (its
                        // caches stay warm) and restart measurement.
                        warming = false;
                        engine.reset_stats().expect("backend resets stats");
                        latency = LatencyBreakdown::default();
                        quality = QualityUnderLoad::default();
                        requests = 0;
                        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                        started = Instant::now();
                    }
                }
                TraceEvent::Open {
                    key,
                    template,
                    seed,
                    present,
                } => {
                    // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                    let t0 = Instant::now();
                    let view = engine
                        .create_session(CreateSession {
                            instance: instances[*template].clone(),
                            initial_present: present.clone(),
                            seed: *seed,
                        })
                        .expect("trace opens a valid session");
                    latency.create.record(t0.elapsed());
                    requests += 1;
                    sessions_opened += 1;
                    assert!(
                        view.present.is_empty() || view.configuration.is_valid(view.catalog.len()),
                        "engine served an invalid initial configuration"
                    );
                    sessions.insert(*key, view.session);
                }
                TraceEvent::Join { key, user } | TraceEvent::Leave { key, user } => {
                    let id = sessions[key];
                    let membership = match event {
                        TraceEvent::Join { .. } => DynamicEvent::Join(*user),
                        _ => DynamicEvent::Leave(*user),
                    };
                    self.submit(
                        &mut engine,
                        id,
                        SessionEvent::Membership(membership),
                        &mut latency,
                        &mut requests,
                    );
                }
                TraceEvent::Catalog { key, items } => {
                    let id = sessions[key];
                    self.submit(
                        &mut engine,
                        id,
                        SessionEvent::SetCatalog(items.clone()),
                        &mut latency,
                        &mut requests,
                    );
                }
                TraceEvent::Lambda { key, value } => {
                    let id = sessions[key];
                    self.submit(
                        &mut engine,
                        id,
                        SessionEvent::RetuneLambda(*value),
                        &mut latency,
                        &mut requests,
                    );
                }
                TraceEvent::Query { key } => {
                    let id = sessions[key];
                    // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                    let t0 = Instant::now();
                    let view = engine.query_configuration(id).expect("live session");
                    latency.query.record(t0.elapsed());
                    requests += 1;
                    self.observe(*key, &view, &mut digest, &mut quality);
                }
                TraceEvent::Close { key } => {
                    let id = sessions.remove(key).expect("trace closes a live session");
                    // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                    let t0 = Instant::now();
                    engine.close_session(id).expect("close succeeds");
                    latency.close.record(t0.elapsed());
                    requests += 1;
                }
            }
        }

        // Final sweep: flush leftovers and digest every still-open session so
        // a truncated-but-parseable trace still yields a comparable digest.
        engine.flush().expect("backend flushes");
        let mut leftovers: Vec<(u64, SessionId)> = sessions.into_iter().collect();
        leftovers.sort_unstable();
        for (key, id) in leftovers {
            let view = engine.query_configuration(id).expect("live session");
            self.observe(key, &view, &mut digest, &mut quality);
            engine.close_session(id).expect("close succeeds");
            requests += 2;
        }
        let wall_seconds = started.elapsed().as_secs_f64();

        LoadOutcome {
            mode: self.config.mode,
            wall_seconds,
            requests,
            trace_events: trace.events.len(),
            sessions: sessions_opened,
            workers,
            latency,
            quality,
            config_digest: digest.finish(),
            engine: engine.stats().expect("backend reports stats"),
            telemetry: engine.query_telemetry().expect("backend reports telemetry"),
        }
    }

    fn submit<B: EngineTransport>(
        &self,
        engine: &mut B,
        id: SessionId,
        event: SessionEvent,
        latency: &mut LatencyBreakdown,
        requests: &mut u64,
    ) {
        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
        let t0 = Instant::now();
        engine
            .submit_event(id, event)
            .expect("trace event is valid");
        latency.submit.record(t0.elapsed());
        *requests += 1;
        if self.config.mode == DriveMode::ClosedLoop {
            // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
            let t0 = Instant::now();
            engine.flush().expect("backend flushes");
            latency.flush.record(t0.elapsed());
        }
    }

    fn observe(
        &self,
        key: u64,
        view: &ConfigurationView,
        digest: &mut Fnv,
        quality: &mut QualityUnderLoad,
    ) {
        digest_view(digest, key, view);
        if !view.present.is_empty() {
            assert!(
                view.configuration.is_valid(view.catalog.len()),
                "engine served an invalid configuration under load"
            );
            quality.samples += 1;
            quality.utility_sum += view.utility;
            quality.bound_sum += view.lp_bound;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::synth::generate;

    fn tiny_trace() -> Trace {
        let mut scenario = Scenario::steady_mall().smoke();
        scenario.ticks = 3;
        generate(&scenario, 5)
    }

    #[test]
    fn open_loop_run_is_deterministic() {
        let trace = tiny_trace();
        let driver = LoadDriver::new(DriverConfig::default());
        let a = driver.run(&trace);
        let b = driver.run(&trace);
        assert_eq!(a.config_digest, b.config_digest);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.engine.solves(), b.engine.solves());
        assert!(a.requests > 0);
        assert!(a.throughput_rps() > 0.0);
        assert_eq!(a.sessions as usize, trace.session_count());
        // Every session was closed by the trace (or the final sweep).
        assert_eq!(a.engine.sessions_created, a.engine.sessions_closed);
        // The default engine samples its telemetry ring on every driver
        // flush: one sample per tick plus the final sweep, ticks monotone.
        assert!(!a.telemetry.is_empty());
        assert!(a.telemetry.windows(2).all(|w| w[0].tick < w[1].tick));
        assert_eq!(a.telemetry, b.telemetry, "telemetry is deterministic");
        assert!(a.telemetry.iter().any(|s| s.requests > 0));
    }

    #[test]
    fn closed_loop_solves_at_least_as_often() {
        let trace = tiny_trace();
        let open = LoadDriver::new(DriverConfig::default()).run(&trace);
        let closed = LoadDriver::new(DriverConfig {
            mode: DriveMode::ClosedLoop,
            ..DriverConfig::default()
        })
        .run(&trace);
        assert!(
            closed.engine.solves() >= open.engine.solves(),
            "closed {} vs open {}",
            closed.engine.solves(),
            open.engine.solves()
        );
        assert!(closed.requests == open.requests);
    }

    #[test]
    fn warmup_excludes_counters_but_not_the_digest() {
        let mut scenario = Scenario::steady_mall().smoke();
        scenario.ticks = 4;
        let trace = generate(&scenario, 9);
        let full = LoadDriver::new(DriverConfig::default()).run(&trace);
        let warmed = LoadDriver::new(DriverConfig {
            warmup_ticks: 2,
            ..DriverConfig::default()
        })
        .run(&trace);
        // Identical served configurations: warmup only moves the measurement
        // boundary, it never changes what the engine does.
        assert_eq!(full.config_digest, warmed.config_digest);
        assert_eq!(full.sessions, warmed.sessions);
        // But the measured window shrank, and the engine counters were reset
        // at the boundary while its caches stayed warm.
        assert!(warmed.requests < full.requests);
        assert!(warmed.engine.requests < full.engine.requests);
        assert!(warmed.latency.all().count() < full.latency.all().count());
    }

    #[test]
    fn quality_and_latency_are_populated() {
        let trace = tiny_trace();
        let outcome = LoadDriver::new(DriverConfig::default()).run(&trace);
        assert!(outcome.quality.samples > 0);
        assert!(outcome.quality.mean_utility() > 0.0);
        // Bounds are loose for incremental solves, so the ratio is only a
        // sanity band here, not an approximation-guarantee check.
        let ratio = outcome.quality.bound_ratio();
        assert!(ratio > 0.0 && ratio.is_finite(), "bound ratio {ratio}");
        assert!(!outcome.latency.create.is_empty());
        assert!(!outcome.latency.flush.is_empty());
        assert!(outcome.latency.all().count() >= outcome.requests);
    }
}
