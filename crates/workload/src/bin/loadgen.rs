//! `loadgen` — run a named workload scenario (or replay a recorded trace)
//! against the serving engine and emit a machine-readable JSON load report;
//! or serve an engine over the `svgic-net` wire protocol.
//!
//! ```text
//! loadgen --scenario flash-sale --seed 7          # generate, record, drive
//! loadgen --scenario steady-mall --nodes 4        # drive a 4-node in-process cluster
//! loadgen --replay target/loadgen/flash-sale-seed7.trace
//! loadgen serve --port 7741                       # serve one engine over TCP
//! loadgen --scenario steady-mall --connect 127.0.0.1:7741
//! loadgen --scenario steady-mall --connect 127.0.0.1:7741,127.0.0.1:7742
//! loadgen metrics --connect 127.0.0.1:7741        # scrape a live server's metrics
//! loadgen watch --connect 127.0.0.1:7741,127.0.0.1:7742   # live fleet table
//! loadgen serve --port 7741 --obs                 # serve with the flight recorder on
//! loadgen profile --connect 127.0.0.1:7741        # ledger + waterfalls + flamegraph
//! loadgen --scenario churn-heavy --trace-out target/trace.json
//! loadgen --list-scenarios                        # named scenarios
//! ```
//!
//! The whole flag surface is defined once in [`svgic_workload::cli`] — the
//! `--help` text is generated from the same table the parser runs on, so
//! they cannot drift. The JSON report goes to stdout (and `--out <path>`
//! when given); the generated trace is recorded next to it so any run can be
//! replayed bit-identically. The same `(scenario, seed)` trace produces the
//! identical configuration digest in-process, over one TCP server, and over
//! N server processes. Exit code is non-zero on any usage or IO error, so
//! CI can gate on it.

use std::process::ExitCode;

use svgic_net::{NetClient, NetServer};
use svgic_obs::{chrome_trace_json_with_counters, ObsConfig, SpanRecord, TelemetrySample, Tracer};
use svgic_workload::cli::{self, Args};
use svgic_workload::prelude::*;
use svgic_workload::report::REPORT_SCHEMA;

fn engine_config(args: &Args) -> svgic_engine::EngineConfig {
    svgic_engine::EngineConfig {
        workers: args.workers,
        // The driver (or the remote clients) own the flush clock; spontaneous
        // auto-flushes would blur the open/closed-loop distinction and make
        // served configurations depend on how requests interleave.
        auto_flush_pending: 0,
        policy: svgic_engine::ResolvePolicy {
            warm_start_lp: !args.cold_lp,
            ..svgic_engine::ResolvePolicy::default()
        },
        obs: if args.obs {
            ObsConfig::enabled()
        } else {
            ObsConfig::default()
        },
        ..svgic_engine::EngineConfig::default()
    }
}

/// `loadgen serve --port N`: front one engine with a `svgic-net` server on
/// loopback and block until a client sends shutdown. The bound address is
/// printed on stdout (relevant with `--port 0`).
fn run_serve(args: &Args) -> Result<(), String> {
    let port = args.port.expect("validated");
    let engine = svgic_engine::Engine::new(engine_config(args));
    let workers = engine.workers(); // resolved: `0` means one per core
    let server = NetServer::bind(("127.0.0.1", port), engine)
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    if !args.quiet {
        eprintln!(
            "loadgen: serving svgic-net v1 on {} ({workers} workers); stop with a shutdown frame",
            server.local_addr(),
        );
    }
    println!("{}", server.local_addr());
    server.join();
    Ok(())
}

/// `loadgen metrics --connect host:port[,…]`: scrape each live server's
/// metrics registry (one `QueryMetrics` frame per node) and print one flat
/// JSON object per node, in address order — one `"name": value` member per
/// metric in the registry's pinned order. The scrape goes through
/// [`svgic_engine::EngineTransport::query_metrics`], so it exercises the
/// same wire path remote dashboards would.
fn run_metrics(args: &Args) -> Result<(), String> {
    use svgic_engine::EngineTransport;
    let mut out = String::new();
    for addr in &args.connect {
        let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let metrics = client
            .query_metrics()
            .map_err(|e| format!("query metrics from {addr}: {e}"))?;
        // Keys are ident-safe ASCII and values finite by the registry
        // contract, so plain Display formatting yields valid JSON.
        if !out.is_empty() {
            out.push('\n');
        }
        out.push('{');
        for (i, (name, value)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{name}\": {value}"));
        }
        out.push_str("\n}");
    }
    write_out(args, &out)?;
    println!("{out}");
    Ok(())
}

/// Formats nanoseconds for the profile report (`1.2µs`, `3.4ms`, `5.6s`).
fn human_nanos(nanos: u64) -> String {
    let nanos = nanos as f64;
    if nanos < 1_000.0 {
        format!("{nanos:.0}ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.1}µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.1}ms", nanos / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos / 1_000_000_000.0)
    }
}

/// `loadgen profile --connect host:port[,…]`: fetch each node's profile (one
/// `QueryProfile` frame per node, plus a `QueryStats` frame for the
/// queue-wait histogram) and print, per node: the per-phase span breakdown,
/// the queue-wait decomposition, the per-template solve ledger with miss
/// causes, the top-K-slowest request waterfalls, and a collapsed-stack
/// (flamegraph folded) export. The span sections need the server to run with
/// `loadgen serve --obs`; the ledger and queue-wait sections are always on.
fn run_profile(args: &Args) -> Result<(), String> {
    use svgic_engine::EngineTransport;
    let mut out = String::new();
    for addr in &args.connect {
        let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let profile = client
            .query_profile()
            .map_err(|e| format!("query profile from {addr}: {e}"))?;
        let stats = client
            .stats()
            .map_err(|e| format!("query stats from {addr}: {e}"))?;
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!("node {addr}\n"));

        let qw = &stats.queue_wait_latency;
        out.push_str(&format!(
            "  queue-wait: count {} mean {} p50 {} p99 {} max {}\n",
            qw.count(),
            human_nanos(qw.sum_nanos() / qw.count().max(1)),
            human_nanos(qw.quantile_nanos(0.50)),
            human_nanos(qw.quantile_nanos(0.99)),
            human_nanos(qw.max_nanos()),
        ));

        if profile.phases.is_empty() {
            out.push_str(
                "  phases: no spans recorded (serve with `loadgen serve --obs` to trace)\n",
            );
        } else {
            out.push_str("  phases (span aggregates, pipeline order):\n");
            out.push_str(&format!(
                "    {:<14} {:>8} {:>10} {:>10} {:>10}\n",
                "PHASE", "COUNT", "TOTAL", "MEAN", "MAX"
            ));
            for agg in &profile.phases {
                out.push_str(&format!(
                    "    {:<14} {:>8} {:>10} {:>10} {:>10}\n",
                    agg.phase.name(),
                    agg.count,
                    human_nanos(agg.total_nanos),
                    human_nanos(agg.total_nanos / agg.count.max(1)),
                    human_nanos(agg.max_nanos),
                ));
            }
        }

        if profile.entries.is_empty() {
            out.push_str("  ledger: empty (no solves attributed yet)\n");
        } else {
            // Rank by cold nanoseconds — the cost the profile exists to
            // attribute — with the fingerprint as a deterministic tiebreak.
            let mut ranked: Vec<_> = profile.entries.iter().collect();
            ranked.sort_by(|a, b| {
                b.cold_nanos
                    .cmp(&a.cold_nanos)
                    .then(a.template_fingerprint.cmp(&b.template_fingerprint))
            });
            out.push_str(&format!(
                "  ledger ({} templates, {} unattributed):\n",
                profile.entries.len(),
                profile.dropped,
            ));
            out.push_str(&format!(
                "    {:<18} {:>7} {:>6} {:>6} {:>10} {:>10} {:>5} {:>8} {:>10}\n",
                "TEMPLATE",
                "SOLVES",
                "WARM",
                "COLD",
                "WARM(t)",
                "COLD(t)",
                "NEW",
                "EVICTED",
                "COMPONENT"
            ));
            for entry in &ranked {
                out.push_str(&format!(
                    "    0x{:016x} {:>7} {:>6} {:>6} {:>10} {:>10} {:>5} {:>8} {:>10}\n",
                    entry.template_fingerprint,
                    entry.solves(),
                    entry.warm_solves,
                    entry.cold_solves,
                    human_nanos(entry.warm_nanos),
                    human_nanos(entry.cold_nanos),
                    entry.miss_new,
                    entry.miss_evicted,
                    entry.miss_component_changed,
                ));
            }
        }

        if !profile.waterfalls.is_empty() {
            out.push_str(&format!(
                "  waterfalls (top {} slowest requests):\n",
                profile.waterfalls.len()
            ));
            for wf in &profile.waterfalls {
                out.push_str(&format!(
                    "    request {} — {}\n",
                    wf.request_id,
                    human_nanos(wf.total_nanos)
                ));
                for span in &wf.spans {
                    let shard = if span.shard == SpanRecord::NO_SHARD {
                        String::new()
                    } else {
                        format!("  [shard {}]", span.shard)
                    };
                    out.push_str(&format!(
                        "      +{:<10} {:<14} {}{}\n",
                        human_nanos(span.start_nanos),
                        span.phase.name(),
                        human_nanos(span.duration_nanos),
                        shard,
                    ));
                }
            }
        }

        if !profile.collapsed.is_empty() {
            out.push_str("  collapsed stacks (flamegraph folded format):\n");
            for line in profile.collapsed.lines() {
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    write_out(args, &out)?;
    print!("{out}");
    Ok(())
}

/// One node's row in the watch table, decoded from its metrics scrape.
struct WatchRow {
    health: String,
    sessions: u64,
    requests: u64,
    rps: Option<f64>,
    queue_depth: u64,
    p99_queue_us: f64,
    p99_warm_us: f64,
    p99_cold_us: f64,
    mem_bytes: u64,
}

/// Pulls one watch row out of a `QueryMetrics` scrape, computing the
/// request rate from the previous poll's counter when there is one.
fn watch_row(metrics: &[(String, f64)], previous: Option<(u64, std::time::Instant)>) -> WatchRow {
    let get = |name: &str| {
        metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, value)| value)
            .unwrap_or(0.0)
    };
    let requests = get("requests") as u64;
    let rps = previous.and_then(|(before, when)| {
        let dt = when.elapsed().as_secs_f64();
        (dt > 0.0).then(|| requests.saturating_sub(before) as f64 / dt)
    });
    let health = match get("health") as u8 {
        0 => "ok",
        1 => "degraded",
        _ => "overloaded",
    };
    WatchRow {
        health: health.to_string(),
        sessions: (get("sessions_created") as u64).saturating_sub(get("sessions_closed") as u64),
        requests,
        rps,
        queue_depth: get("queue_depth") as u64,
        p99_queue_us: get("p99_queue_wait_seconds") * 1e6,
        p99_warm_us: get("p99_warm_solve_seconds") * 1e6,
        p99_cold_us: get("p99_cold_solve_seconds") * 1e6,
        mem_bytes: get("mem_total_bytes") as u64,
    }
}

/// Human-scaled byte count for the watch table (`0 B` … `1.2 GiB`): always
/// carries a unit, even below 1 KiB.
fn human_bytes(bytes: u64) -> String {
    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    const GIB: u64 = 1024 * MIB;
    match bytes {
        0..KIB => format!("{bytes} B"),
        KIB..MIB => format!("{:.1} KiB", bytes as f64 / KIB as f64),
        MIB..GIB => format!("{:.1} MiB", bytes as f64 / MIB as f64),
        _ => format!("{:.1} GiB", bytes as f64 / GIB as f64),
    }
}

/// `loadgen watch --connect host:port[,…]`: poll every node's metrics on an
/// interval and redraw a fleet table — per-node request rate, live sessions,
/// queue depth, p99 solve latency by class, accounted memory, and SLO
/// health. `--once` prints a single table and exits (the CI smoke path); the
/// request-rate column needs two polls and reads `-` on the first.
fn run_watch(args: &Args) -> Result<(), String> {
    use svgic_engine::EngineTransport;
    let mut nodes = Vec::new();
    for addr in &args.connect {
        let client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        nodes.push((addr.clone(), client, None));
    }
    loop {
        let mut rows = Vec::new();
        for (addr, client, previous) in &mut nodes {
            let metrics = client
                .query_metrics()
                .map_err(|e| format!("query metrics from {addr}: {e}"))?;
            let row = watch_row(&metrics, *previous);
            // lint: allow(wall-clock, live watch display computes a req/s rate; nothing else reads it)
            *previous = Some((row.requests, std::time::Instant::now()));
            rows.push((addr.clone(), row));
        }
        if !args.once {
            // Clear and home, then redraw — a poor man's top(1).
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "{:<22} {:>10} {:>9} {:>7} {:>14} {:>13} {:>13} {:>10}  HEALTH",
            "NODE",
            "REQ/S",
            "SESSIONS",
            "QUEUE",
            "P99 QWAIT(µs)",
            "P99 WARM(µs)",
            "P99 COLD(µs)",
            "MEM"
        );
        for (addr, row) in &rows {
            println!(
                "{:<22} {:>10} {:>9} {:>7} {:>14.1} {:>13.1} {:>13.1} {:>10}  {}",
                addr,
                row.rps
                    .map_or_else(|| "-".to_string(), |r| format!("{r:.0}")),
                row.sessions,
                row.queue_depth,
                row.p99_queue_us,
                row.p99_warm_us,
                row.p99_cold_us,
                human_bytes(row.mem_bytes),
                row.health,
            );
        }
        if args.once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(args.interval_ms));
    }
}

/// Writes spans plus telemetry counter tracks as Chrome trace-event JSON
/// (creating parent directories), with a pointer to the viewers that open
/// it.
fn write_trace(
    args: &Args,
    path: &str,
    spans: &[SpanRecord],
    samples: &[TelemetrySample],
) -> Result<(), String> {
    let json = chrome_trace_json_with_counters(spans, samples, 0);
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("mkdir for {path}: {e}"))?;
        }
    }
    std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    if !args.quiet {
        eprintln!(
            "  {} spans + {} counter samples traced to {path} (open in ui.perfetto.dev or chrome://tracing)",
            spans.len(),
            samples.len(),
        );
    }
    Ok(())
}

/// Obtains the trace: generate from a scenario (recording it unless told
/// otherwise), or load a recording.
fn obtain_trace(args: &Args) -> Result<(Trace, Option<String>), String> {
    match (&args.scenario, &args.replay) {
        (None, Some(path)) => {
            let trace = Trace::read_from_file(path).map_err(|e| e.to_string())?;
            Ok((trace, None))
        }
        (Some(name), None) => {
            let mut scenario = Scenario::by_name(name).ok_or_else(|| {
                let names: Vec<String> = Scenario::all().into_iter().map(|s| s.name).collect();
                format!("unknown scenario `{name}` (have: {})", names.join(", "))
            })?;
            if args.smoke {
                scenario = scenario.smoke();
            }
            if let Some(ticks) = args.ticks {
                scenario.ticks = ticks.max(1);
            }
            let seed = args.seed.unwrap_or(1);
            let trace = generate(&scenario, seed);
            let path = if args.no_record {
                None
            } else {
                let path = args.record.clone().unwrap_or_else(|| {
                    format!("target/loadgen/{}-seed{}.trace", scenario.name, seed)
                });
                trace
                    .write_to_file(&path)
                    .map_err(|e| format!("record {path}: {e}"))?;
                Some(path)
            };
            Ok((trace, path))
        }
        _ => unreachable!("validated"),
    }
}

/// The chaos plan a cluster run injects: generated from `--chaos <seed>`
/// over the run's node count and tick span, inactive otherwise. Replays with
/// the same seed walk the identical fault schedule.
fn chaos_plan(args: &Args, trace: &Trace, nodes: usize) -> svgic_cluster::ChaosPlan {
    match args.chaos {
        Some(seed) => svgic_cluster::ChaosPlan::generate(seed, nodes, trace.ticks),
        None => svgic_cluster::ChaosPlan::inactive(),
    }
}

fn write_out(args: &Args, json: &str) -> Result<(), String> {
    if let Some(path) = &args.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("mkdir for {path}: {e}"))?;
            }
        }
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(())
}

fn print_single_summary(args: &Args, report: &LoadReport, recorded: &Option<String>, via: &str) {
    if args.quiet {
        return;
    }
    let o = &report.outcome;
    let all = o.latency.all();
    eprintln!(
        "loadgen: {} seed {} ({}, {} ticks{via}) — {} sessions, {} requests in {:.3}s",
        report.scenario,
        report.seed,
        o.mode.label(),
        report.ticks,
        o.sessions,
        o.requests,
        o.wall_seconds,
    );
    eprintln!(
        "  throughput {:.0} req/s | latency p50 {:.1}µs p95 {:.1}µs p99 {:.1}µs max {:.1}µs",
        o.throughput_rps(),
        all.quantile(0.50).as_secs_f64() * 1e6,
        all.quantile(0.95).as_secs_f64() * 1e6,
        all.quantile(0.99).as_secs_f64() * 1e6,
        all.max().as_secs_f64() * 1e6,
    );
    eprintln!(
        "  engine: {} solves ({:.0}% incremental, {:.0}% warm-started), cache hit rate {:.1}%, {:.0}% events coalesced",
        o.engine.solves(),
        100.0 * o.engine.incremental_fraction(),
        100.0 * o.engine.warm_start_rate(),
        100.0 * o.engine.cache_hit_rate(),
        100.0 * o.engine.coalesce_rate(),
    );
    eprintln!(
        "  shards: imbalance {:.2} (max/mean busy), {} cached factor entries",
        o.engine.shard_imbalance(),
        o.engine.total_cache_entries(),
    );
    eprintln!("  config digest 0x{:016x}", o.config_digest);
    if let Some(path) = recorded {
        eprintln!("  trace recorded to {path} (replay with --replay {path})");
    }
}

fn print_cluster_summary(
    args: &Args,
    report: &ClusterReport,
    recorded: &Option<String>,
    via: &str,
) {
    if args.quiet {
        return;
    }
    let o = &report.outcome;
    let all = o.latency.all();
    eprintln!(
        "loadgen: {} seed {} ({}, {} ticks{via}) — {} nodes, {} sessions, {} requests in {:.3}s",
        report.scenario,
        report.seed,
        o.mode.label(),
        report.ticks,
        o.nodes_initial,
        o.sessions,
        o.requests,
        o.wall_seconds,
    );
    eprintln!(
        "  wall throughput {:.0} req/s | scale-out projection {:.0} req/s \
         (busiest node {:.3}s of {:.3}s wall)",
        o.throughput_rps(),
        o.aggregate_throughput_rps(),
        o.makespan_seconds() - o.fabric_seconds,
        o.wall_seconds,
    );
    eprintln!(
        "  latency p50 {:.1}µs p95 {:.1}µs p99 {:.1}µs max {:.1}µs (merged over nodes)",
        all.quantile(0.50).as_secs_f64() * 1e6,
        all.quantile(0.95).as_secs_f64() * 1e6,
        all.quantile(0.99).as_secs_f64() * 1e6,
        all.max().as_secs_f64() * 1e6,
    );
    eprintln!(
        "  fabric: {} migrations ({} warm), {} recoveries ({} warm capital lost), \
         {} kills, {} joins, {} rebalances",
        o.cluster.migrations,
        o.cluster.warm_capital_preserved,
        o.cluster.sessions_recovered,
        o.cluster.warm_capital_lost,
        o.cluster.nodes_killed,
        o.cluster.nodes_added.saturating_sub(o.nodes_initial as u64),
        o.cluster.rebalances,
    );
    if o.cluster.replication_bytes > 0 || o.cluster.nodes_killed > 0 {
        eprintln!(
            "  failover: {} standby promotions ({} replica bytes shipped), {} warm / {} cold kills",
            o.cluster.standby_promotions,
            o.cluster.replication_bytes,
            o.cluster.failover_warm,
            o.cluster.failover_cold,
        );
    }
    if o.chaos_injected_failures > 0 || o.chaos_injected_delays > 0 {
        eprintln!(
            "  chaos: {} requests absorbed+retried, {} delayed (digest unaffected)",
            o.chaos_injected_failures, o.chaos_injected_delays,
        );
    }
    eprintln!(
        "  fleet engine: {} solves ({:.0}% incremental, {:.0}% warm-started), cache hit rate {:.1}%",
        o.merged.solves(),
        100.0 * o.merged.incremental_fraction(),
        100.0 * o.merged.warm_start_rate(),
        100.0 * o.merged.cache_hit_rate(),
    );
    eprintln!("  config digest 0x{:016x}", o.config_digest);
    if let Some(path) = recorded {
        eprintln!("  trace recorded to {path} (replay with --replay {path})");
    }
}

/// Drives the trace and emits the report, routing by `--connect`/`--nodes`:
/// remote multi-process cluster, remote single engine, in-process cluster,
/// or bare in-process engine.
fn run_drive(args: &Args) -> Result<(), String> {
    let (trace, recorded_path) = obtain_trace(args)?;

    let json = if args.connect.len() > 1 {
        // Multi-process cluster: each address is one node backend; live
        // migrations travel over the wire as export/import round trips.
        // Connect the initial fleet up front so a typo fails with a clean
        // message instead of a panic mid-run; the spawner hands those
        // connections out, then cycles through the address list for any
        // joins past the initial fleet (another connection to an existing
        // server is a valid node).
        let mut fleet = std::collections::VecDeque::new();
        for addr in &args.connect {
            fleet.push_back(NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?);
        }
        let addresses = args.connect.clone();
        let mut handed_out = 0usize;
        let spawner = move |_cfg: &svgic_engine::EngineConfig| {
            handed_out += 1;
            fleet.pop_front().unwrap_or_else(|| {
                NetClient::connect(&addresses[(handed_out - 1) % addresses.len()])
                    .expect("remote node reachable")
            })
        };
        let driver = ClusterDriver::new(ClusterDriverConfig {
            mode: args.mode,
            warmup_ticks: args.warmup,
            nodes: args.connect.len(),
            vnodes: args.vnodes,
            plan: NodePlan::for_trace(&trace, args.connect.len()),
            replicate: args.replicate,
            chaos: chaos_plan(args, &trace, args.connect.len()),
            ..ClusterDriverConfig::default()
        });
        let outcome = driver.run_with(&trace, spawner);
        let mut report = ClusterReport::new(&trace, outcome);
        report.trace_path = recorded_path.clone();
        let via = format!(", over {} remote nodes", args.connect.len());
        print_cluster_summary(args, &report, &recorded_path, &via);
        report.to_json()
    } else if args.connect.len() == 1 {
        // One remote engine: the single-engine driver over a NetClient. With
        // `--trace-out` the client records its wire-side spans (encode /
        // round trip / decode) — the server's in-engine spans stay remote.
        let addr = &args.connect[0];
        let mut client = NetClient::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let tracer = args
            .trace_out
            .as_ref()
            .map(|_| Tracer::new(ObsConfig::enabled()));
        if let Some(tracer) = &tracer {
            client = client.with_tracer(tracer.clone());
        }
        let driver = LoadDriver::new(DriverConfig {
            mode: args.mode,
            warmup_ticks: args.warmup,
            ..DriverConfig::default()
        });
        let outcome = driver.run_on(&mut client, &trace);
        let mut report = LoadReport::new(&trace, outcome);
        report.trace_path = recorded_path.clone();
        print_single_summary(args, &report, &recorded_path, ", over TCP");
        if let (Some(path), Some(tracer)) = (&args.trace_out, &tracer) {
            write_trace(args, path, &tracer.spans(), &report.outcome.telemetry)?;
        }
        report.to_json()
    } else if args.nodes >= 1 {
        let driver = ClusterDriver::new(ClusterDriverConfig {
            mode: args.mode,
            warmup_ticks: args.warmup,
            nodes: args.nodes,
            vnodes: args.vnodes,
            engine: engine_config(args),
            plan: NodePlan::for_trace(&trace, args.nodes),
            replicate: args.replicate,
            chaos: chaos_plan(args, &trace, args.nodes),
            ..ClusterDriverConfig::default()
        });
        let outcome = driver.run(&trace);
        let mut report = ClusterReport::new(&trace, outcome);
        report.trace_path = recorded_path.clone();
        print_cluster_summary(args, &report, &recorded_path, "");
        report.to_json()
    } else {
        let driver = LoadDriver::new(DriverConfig {
            mode: args.mode,
            warmup_ticks: args.warmup,
            engine: engine_config(args),
        });
        let mut spans: Option<Vec<SpanRecord>> = None;
        let outcome = if args.trace_out.is_some() {
            // The driver normally builds its own engine; tracing needs one
            // constructed with obs enabled so the flight recorder retains
            // spans for the dump after the run. Served configurations are
            // identical either way — obs is strictly read-side.
            let mut config = engine_config(args);
            config.obs = ObsConfig::enabled();
            let mut engine = svgic_engine::Engine::new(config);
            let outcome = driver.run_on(&mut engine, &trace);
            spans = Some(engine.spans());
            outcome
        } else {
            driver.run(&trace)
        };
        let mut report = LoadReport::new(&trace, outcome);
        report.trace_path = recorded_path.clone();
        print_single_summary(args, &report, &recorded_path, "");
        if let (Some(path), Some(spans)) = (&args.trace_out, &spans) {
            write_trace(args, path, spans, &report.outcome.telemetry)?;
        }
        debug_assert!(report.to_json().contains(REPORT_SCHEMA));
        report.to_json()
    };

    write_out(args, &json)?;
    println!("{json}");
    Ok(())
}

fn run() -> Result<(), String> {
    let args = cli::parse(std::env::args().skip(1))?;
    cli::validate(&args)?;
    if args.help {
        print!("{}", cli::usage());
        return Ok(());
    }
    if args.list {
        println!("named scenarios:");
        for scenario in Scenario::all() {
            println!("  {:<14} {} ticks", scenario.name, scenario.ticks);
        }
        return Ok(());
    }
    if args.serve {
        return run_serve(&args);
    }
    if args.metrics {
        return run_metrics(&args);
    }
    if args.watch {
        return run_watch(&args);
    }
    if args.profile {
        return run_profile(&args);
    }
    run_drive(&args)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sub-1 KiB values always carry an explicit `B` unit (a bare number in
    /// the MEM column would read as a corrupt cell), and every power-of-1024
    /// tier up to GiB scales.
    #[test]
    fn human_bytes_scales_every_tier_with_units() {
        assert_eq!(human_bytes(0), "0 B");
        assert_eq!(human_bytes(1), "1 B");
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(1023), "1023 B");
        assert_eq!(human_bytes(1024), "1.0 KiB");
        assert_eq!(human_bytes(1536), "1.5 KiB");
        assert_eq!(human_bytes(1024 * 1024), "1.0 MiB");
        assert_eq!(human_bytes(5 * 1024 * 1024 + 256 * 1024), "5.2 MiB");
        assert_eq!(human_bytes(1024 * 1024 * 1024), "1.0 GiB");
        assert_eq!(
            human_bytes(3 * 1024 * 1024 * 1024 + 512 * 1024 * 1024),
            "3.5 GiB"
        );
    }

    #[test]
    fn human_nanos_picks_the_natural_unit() {
        assert_eq!(human_nanos(0), "0ns");
        assert_eq!(human_nanos(950), "950ns");
        assert_eq!(human_nanos(1_500), "1.5µs");
        assert_eq!(human_nanos(2_500_000), "2.5ms");
        assert_eq!(human_nanos(1_250_000_000), "1.25s");
    }

    /// The queue-wait column reads straight from the scraped metric.
    #[test]
    fn watch_rows_carry_queue_wait_p99() {
        let metrics = vec![
            ("requests".to_string(), 10.0),
            ("p99_queue_wait_seconds".to_string(), 0.000_25),
            ("p99_warm_solve_seconds".to_string(), 0.000_5),
            ("mem_total_bytes".to_string(), 900.0),
        ];
        let row = watch_row(&metrics, None);
        assert!((row.p99_queue_us - 250.0).abs() < 1e-9);
        assert_eq!(human_bytes(row.mem_bytes), "900 B");
    }
}
