//! `loadgen` — run a named workload scenario (or replay a recorded trace)
//! against `svgic-engine` and emit a machine-readable JSON load report.
//!
//! ```text
//! loadgen --scenario flash-sale --seed 7          # generate, record, drive
//! loadgen --scenario steady-mall --nodes 4        # drive a 4-node cluster
//! loadgen --replay target/loadgen/flash-sale-seed7.trace
//! loadgen --list-scenarios                        # named scenarios
//! ```
//!
//! The JSON report goes to stdout (and `--out <path>` when given); the
//! generated trace is recorded next to it so any run can be replayed
//! bit-identically. Exit code is non-zero on any usage or IO error, so CI
//! can gate on it.

use std::process::ExitCode;

use svgic_workload::prelude::*;
use svgic_workload::report::REPORT_SCHEMA;

struct Args {
    scenario: Option<String>,
    replay: Option<String>,
    seed: Option<u64>,
    ticks: Option<usize>,
    mode: DriveMode,
    warmup: usize,
    workers: usize,
    nodes: usize,
    vnodes: usize,
    record: Option<String>,
    no_record: bool,
    out: Option<String>,
    smoke: bool,
    cold_lp: bool,
    quiet: bool,
    list: bool,
}

const USAGE: &str = "\
loadgen — scenario-driven load testing for the svgic serving engine

USAGE:
    loadgen --scenario <name> [--seed N] [--ticks N] [options]
    loadgen --replay <trace-file> [options]
    loadgen --list

OPTIONS:
    --scenario <name>   named scenario to generate and drive
    --replay <path>     replay a recorded trace instead of generating
    --seed <N>          scenario seed (default 1)
    --ticks <N>         override the scenario's tick count
    --mode <open|closed>  open-loop (batched, default) or closed-loop pacing
    --warmup <N>        drive N ticks before measuring (caches stay warm,
                        counters reset at the boundary; digest unaffected)
    --workers <N>       engine worker threads (default: one per core)
    --nodes <N>         drive an N-node cluster instead of a bare engine
                        (emits a svgic-cluster-report/v1). The node-churn
                        scenario schedules a node kill + join + rebalances;
                        any other multi-node run gets one guaranteed mid-run
                        live migration. Served configurations (the digest)
                        are identical at any node count.
    --vnodes <N>        virtual nodes per cluster node on the hash ring
                        (default 64)
    --smoke             shrink the scenario to CI-smoke size
    --cold-lp           disable warm-started re-solves (the cold baseline:
                        every re-solve recomputes its LP; served configs are
                        identical either way)
    --record <path>     where to write the generated trace
                        (default target/loadgen/<scenario>-seed<seed>.trace)
    --no-record         skip recording the trace
    --out <path>        also write the JSON report to this file
    --quiet             suppress the human-readable summary on stderr
    --list-scenarios    list the named scenarios and exit (alias: --list)

Generation-only flags (--seed, --ticks, --smoke, --record, --no-record) are
rejected in --replay mode: a recorded trace is immutable provenance.
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        replay: None,
        seed: None,
        ticks: None,
        mode: DriveMode::OpenLoop,
        warmup: 0,
        workers: 0,
        nodes: 0,
        vnodes: 64,
        record: None,
        no_record: false,
        out: None,
        smoke: false,
        cold_lp: false,
        quiet: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} needs a {what} argument"))
        };
        match flag.as_str() {
            "--scenario" => args.scenario = Some(value("name")?),
            "--replay" => args.replay = Some(value("path")?),
            "--seed" => {
                args.seed = Some(
                    value("number")?
                        .parse()
                        .map_err(|_| "--seed wants an unsigned integer".to_string())?,
                )
            }
            "--ticks" => {
                args.ticks = Some(
                    value("number")?
                        .parse()
                        .map_err(|_| "--ticks wants a positive integer".to_string())?,
                )
            }
            "--mode" => {
                args.mode = match value("mode")?.as_str() {
                    "open" | "open-loop" => DriveMode::OpenLoop,
                    "closed" | "closed-loop" => DriveMode::ClosedLoop,
                    other => return Err(format!("unknown mode `{other}`")),
                }
            }
            "--warmup" => {
                args.warmup = value("number")?
                    .parse()
                    .map_err(|_| "--warmup wants an unsigned integer".to_string())?
            }
            "--workers" => {
                args.workers = value("number")?
                    .parse()
                    .map_err(|_| "--workers wants an unsigned integer".to_string())?
            }
            "--nodes" => {
                args.nodes = value("number")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--nodes wants a positive integer".to_string())?
            }
            "--vnodes" => {
                args.vnodes = value("number")?
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--vnodes wants a positive integer".to_string())?
            }
            "--record" => args.record = Some(value("path")?),
            "--no-record" => args.no_record = true,
            "--out" => args.out = Some(value("path")?),
            "--smoke" => args.smoke = true,
            "--cold-lp" => args.cold_lp = true,
            "--quiet" => args.quiet = true,
            "--list" | "--list-scenarios" => args.list = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if args.list {
        println!("named scenarios:");
        for scenario in Scenario::all() {
            println!("  {:<14} {} ticks", scenario.name, scenario.ticks);
        }
        return Ok(());
    }

    // --- Obtain the trace: generate from a scenario, or load a recording ---
    let (trace, recorded_path) = match (&args.scenario, &args.replay) {
        (Some(_), Some(_)) => return Err("--scenario and --replay are mutually exclusive".into()),
        (None, None) => return Err(format!("need --scenario or --replay\n\n{USAGE}")),
        (None, Some(path)) => {
            // A recorded trace is immutable provenance; silently ignoring
            // generation flags would mislabel the results.
            let rejected: &[(&str, bool)] = &[
                ("--seed", args.seed.is_some()),
                ("--ticks", args.ticks.is_some()),
                ("--smoke", args.smoke),
                ("--record", args.record.is_some()),
                ("--no-record", args.no_record),
            ];
            if let Some((flag, _)) = rejected.iter().find(|(_, set)| *set) {
                return Err(format!(
                    "{flag} only applies when generating a scenario; it cannot alter a replayed trace"
                ));
            }
            let trace = Trace::read_from_file(path).map_err(|e| e.to_string())?;
            (trace, None)
        }
        (Some(name), None) => {
            let mut scenario = Scenario::by_name(name).ok_or_else(|| {
                let names: Vec<String> = Scenario::all().into_iter().map(|s| s.name).collect();
                format!("unknown scenario `{name}` (have: {})", names.join(", "))
            })?;
            if args.smoke {
                scenario = scenario.smoke();
            }
            if let Some(ticks) = args.ticks {
                scenario.ticks = ticks.max(1);
            }
            let seed = args.seed.unwrap_or(1);
            let trace = generate(&scenario, seed);
            let path = if args.no_record {
                None
            } else {
                let path = args.record.clone().unwrap_or_else(|| {
                    format!("target/loadgen/{}-seed{}.trace", scenario.name, seed)
                });
                trace
                    .write_to_file(&path)
                    .map_err(|e| format!("record {path}: {e}"))?;
                Some(path)
            };
            (trace, path)
        }
    };

    // --- Drive ---
    let engine = svgic_engine::EngineConfig {
        workers: args.workers,
        auto_flush_pending: 0,
        policy: svgic_engine::ResolvePolicy {
            warm_start_lp: !args.cold_lp,
            ..svgic_engine::ResolvePolicy::default()
        },
        ..svgic_engine::EngineConfig::default()
    };
    if args.nodes >= 1 {
        return run_cluster(&args, &trace, engine, recorded_path);
    }
    let config = DriverConfig {
        mode: args.mode,
        warmup_ticks: args.warmup,
        engine,
    };
    let driver = LoadDriver::new(config);
    let outcome = driver.run(&trace);

    // --- Report ---
    let mut report = LoadReport::new(&trace, outcome);
    report.trace_path = recorded_path.clone();
    let json = report.to_json();

    if !args.quiet {
        let o = &report.outcome;
        let all = o.latency.all();
        eprintln!(
            "loadgen: {} seed {} ({}, {} ticks) — {} sessions, {} requests in {:.3}s",
            report.scenario,
            report.seed,
            o.mode.label(),
            report.ticks,
            o.sessions,
            o.requests,
            o.wall_seconds,
        );
        eprintln!(
            "  throughput {:.0} req/s | latency p50 {:.1}µs p95 {:.1}µs p99 {:.1}µs max {:.1}µs",
            o.throughput_rps(),
            all.quantile(0.50).as_secs_f64() * 1e6,
            all.quantile(0.95).as_secs_f64() * 1e6,
            all.quantile(0.99).as_secs_f64() * 1e6,
            all.max().as_secs_f64() * 1e6,
        );
        eprintln!(
            "  engine: {} solves ({:.0}% incremental, {:.0}% warm-started), cache hit rate {:.1}%, {:.0}% events coalesced",
            o.engine.solves(),
            100.0 * o.engine.incremental_fraction(),
            100.0 * o.engine.warm_start_rate(),
            100.0 * o.engine.cache_hit_rate(),
            100.0 * o.engine.coalesce_rate(),
        );
        eprintln!("  config digest 0x{:016x}", o.config_digest);
        if let Some(path) = &recorded_path {
            eprintln!("  trace recorded to {path} (replay with --replay {path})");
        }
        debug_assert!(json.contains(REPORT_SCHEMA));
    }

    if let Some(path) = &args.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("mkdir for {path}: {e}"))?;
            }
        }
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    }
    println!("{json}");
    Ok(())
}

/// The `--nodes N` path: drive the trace through a cluster, with the fabric
/// schedule the trace implies (`node-churn` → kill/join/rebalances, any other
/// multi-node run → one guaranteed mid-run migration).
fn run_cluster(
    args: &Args,
    trace: &Trace,
    engine: svgic_engine::EngineConfig,
    recorded_path: Option<String>,
) -> Result<(), String> {
    let plan = NodePlan::for_trace(trace, args.nodes);
    let driver = ClusterDriver::new(ClusterDriverConfig {
        mode: args.mode,
        warmup_ticks: args.warmup,
        nodes: args.nodes,
        vnodes: args.vnodes,
        engine,
        plan,
        ..ClusterDriverConfig::default()
    });
    let outcome = driver.run(trace);

    let mut report = ClusterReport::new(trace, outcome);
    report.trace_path = recorded_path.clone();
    let json = report.to_json();

    if !args.quiet {
        let o = &report.outcome;
        let all = o.latency.all();
        eprintln!(
            "loadgen: {} seed {} ({}, {} ticks) — {} nodes, {} sessions, {} requests in {:.3}s",
            report.scenario,
            report.seed,
            o.mode.label(),
            report.ticks,
            o.nodes_initial,
            o.sessions,
            o.requests,
            o.wall_seconds,
        );
        eprintln!(
            "  wall throughput {:.0} req/s | scale-out projection {:.0} req/s \
             (busiest node {:.3}s of {:.3}s wall)",
            o.throughput_rps(),
            o.aggregate_throughput_rps(),
            o.makespan_seconds() - o.fabric_seconds,
            o.wall_seconds,
        );
        eprintln!(
            "  latency p50 {:.1}µs p95 {:.1}µs p99 {:.1}µs max {:.1}µs (merged over nodes)",
            all.quantile(0.50).as_secs_f64() * 1e6,
            all.quantile(0.95).as_secs_f64() * 1e6,
            all.quantile(0.99).as_secs_f64() * 1e6,
            all.max().as_secs_f64() * 1e6,
        );
        eprintln!(
            "  fabric: {} migrations ({} warm), {} recoveries ({} warm capital lost), \
             {} kills, {} joins, {} rebalances",
            o.cluster.migrations,
            o.cluster.warm_capital_preserved,
            o.cluster.sessions_recovered,
            o.cluster.warm_capital_lost,
            o.cluster.nodes_killed,
            o.cluster.nodes_added.saturating_sub(o.nodes_initial as u64),
            o.cluster.rebalances,
        );
        eprintln!(
            "  fleet engine: {} solves ({:.0}% incremental, {:.0}% warm-started), cache hit rate {:.1}%",
            o.merged.solves(),
            100.0 * o.merged.incremental_fraction(),
            100.0 * o.merged.warm_start_rate(),
            100.0 * o.merged.cache_hit_rate(),
        );
        eprintln!("  config digest 0x{:016x}", o.config_digest);
        if let Some(path) = &recorded_path {
            eprintln!("  trace recorded to {path} (replay with --replay {path})");
        }
    }

    if let Some(path) = &args.out {
        if let Some(parent) = std::path::Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).map_err(|e| format!("mkdir for {path}: {e}"))?;
            }
        }
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
    }
    println!("{json}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("loadgen: {message}");
            ExitCode::FAILURE
        }
    }
}
