//! Session arrival processes.
//!
//! Scenarios run on a discrete tick clock; an arrival process decides how many
//! new shopping groups open per tick. Three families cover the traffic shapes
//! the paper's social-VR setting exhibits:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless steady-state traffic;
//! * [`ArrivalProcess::OnOff`] — bursty flash-crowd traffic: geometric ON
//!   periods at a high rate alternating with geometric OFF lulls;
//! * [`ArrivalProcess::Diurnal`] — a sinusoidal day/night cycle modulating a
//!   Poisson rate.

use rand::Rng;

use crate::distributions::poisson;

/// Configuration of an arrival process (how many sessions open per tick).
#[derive(Clone, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate` sessions per tick.
    Poisson {
        /// Mean sessions per tick.
        rate: f64,
    },
    /// ON/OFF bursts: while ON, Poisson at `burst_rate`; while OFF, Poisson at
    /// `idle_rate`. Phase lengths are geometric with the given means.
    OnOff {
        /// Mean sessions per tick during a burst.
        burst_rate: f64,
        /// Mean sessions per tick between bursts.
        idle_rate: f64,
        /// Mean burst length in ticks (≥ 1).
        mean_on: f64,
        /// Mean lull length in ticks (≥ 1).
        mean_off: f64,
    },
    /// Sinusoidal diurnal cycle: rate at tick `t` is
    /// `base * (1 + amplitude * sin(2π t / period))`, floored at 0.
    Diurnal {
        /// Mean sessions per tick averaged over a period.
        base: f64,
        /// Relative swing in `[0, 1]`.
        amplitude: f64,
        /// Cycle length in ticks.
        period: f64,
    },
}

impl ArrivalProcess {
    /// Builds the stateful sampler for one generation run.
    pub fn sampler(&self) -> ArrivalSampler {
        ArrivalSampler {
            process: self.clone(),
            on: true,
        }
    }
}

/// Stateful per-run sampler produced by [`ArrivalProcess::sampler`].
#[derive(Clone, Debug)]
pub struct ArrivalSampler {
    process: ArrivalProcess,
    /// Current phase for the ON/OFF process (ignored by the others).
    on: bool,
}

impl ArrivalSampler {
    /// Number of sessions arriving at tick `tick`.
    pub fn arrivals_at<R: Rng + ?Sized>(&mut self, tick: usize, rng: &mut R) -> usize {
        match &self.process {
            ArrivalProcess::Poisson { rate } => poisson(*rate, rng),
            ArrivalProcess::OnOff {
                burst_rate,
                idle_rate,
                mean_on,
                mean_off,
            } => {
                let rate = if self.on { *burst_rate } else { *idle_rate };
                let drawn = poisson(rate, rng);
                // Geometric phase change: leave the current phase with
                // probability 1/mean_phase per tick.
                let mean_phase = if self.on { *mean_on } else { *mean_off };
                if rng.gen::<f64>() < 1.0 / mean_phase.max(1.0) {
                    self.on = !self.on;
                }
                drawn
            }
            ArrivalProcess::Diurnal {
                base,
                amplitude,
                period,
            } => {
                let phase = 2.0 * std::f64::consts::PI * tick as f64 / period.max(1.0);
                let rate = (base * (1.0 + amplitude * phase.sin())).max(0.0);
                poisson(rate, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn total_over(process: &ArrivalProcess, ticks: usize, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sampler = process.sampler();
        (0..ticks).map(|t| sampler.arrivals_at(t, &mut rng)).sum()
    }

    #[test]
    fn poisson_total_tracks_rate() {
        let total = total_over(&ArrivalProcess::Poisson { rate: 2.0 }, 500, 1);
        assert!((800..1200).contains(&total), "total {total}");
    }

    #[test]
    fn onoff_bursts_exceed_idle_traffic() {
        let bursty = ArrivalProcess::OnOff {
            burst_rate: 5.0,
            idle_rate: 0.1,
            mean_on: 3.0,
            mean_off: 6.0,
        };
        let total = total_over(&bursty, 600, 2);
        // Expected rate is between idle and burst; mostly just exercise the
        // phase machine and check it is neither all-idle nor all-burst.
        assert!(total > 60, "never entered a burst: {total}");
        assert!(total < 5 * 600, "never left the burst: {total}");
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let day = ArrivalProcess::Diurnal {
            base: 3.0,
            amplitude: 0.9,
            period: 24.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut sampler = day.sampler();
        let mut peak = 0usize;
        let mut trough = 0usize;
        for cycle in 0..200 {
            // Peak of sin is at period/4, trough at 3*period/4.
            peak += sampler.arrivals_at(cycle * 24 + 6, &mut rng);
            trough += sampler.arrivals_at(cycle * 24 + 18, &mut rng);
        }
        assert!(peak > 2 * trough, "peak {peak} vs trough {trough}");
    }
}
