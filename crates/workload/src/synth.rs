//! The scenario → trace generator.
//!
//! [`generate`] runs a scenario's stochastic processes on a discrete tick
//! clock and materializes every session lifecycle into a [`Trace`]. The trace
//! is the *only* output: the load driver never talks to the generator, so
//! anything it measures can be replayed bit-identically from the recorded
//! trace alone.
//!
//! Generation is deterministic: one master [`StdRng`] seeded from the
//! scenario seed drives template construction, arrivals, and per-session
//! lifecycles, in a fixed iteration order.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::distributions::{bounded_pareto, lognormal_ticks, poisson, ZipfSampler};
use crate::scenario::Scenario;
use crate::trace::{TemplateSpec, Trace, TraceEvent};

/// One live session during generation.
struct LiveSession {
    key: u64,
    template: usize,
    users: usize,
    remaining_ticks: usize,
}

/// Generates the scenario's full event trace under `seed`.
///
/// The same `(scenario, seed)` pair always yields a byte-identical trace
/// (see `Trace::render`), which is what the determinism audit asserts.
pub fn generate(scenario: &Scenario, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5C3A_AD00_17AC_E5EE);

    // Templates first, from the same master stream, so the whole trace is a
    // pure function of (scenario, seed).
    let templates: Vec<TemplateSpec> = (0..scenario.num_templates)
        .map(|t| {
            let users = bounded_pareto(
                scenario.group_size.min_users,
                scenario.group_size.max_users,
                scenario.group_size.alpha,
                &mut rng,
            );
            TemplateSpec {
                profile: scenario.profiles[t % scenario.profiles.len()],
                population: (users * 20).max(60),
                users,
                items: scenario.items,
                slots: scenario.slots.min(scenario.items),
                lambda: 0.5,
                build_seed: rng.gen::<u64>(),
            }
        })
        .collect();

    let template_pick = ZipfSampler::new(templates.len(), scenario.template_zipf);
    let item_pick = ZipfSampler::new(scenario.items, scenario.item_zipf);

    let mut events: Vec<TraceEvent> = Vec::new();
    let mut live: Vec<LiveSession> = Vec::new();
    let mut next_key = 0u64;

    let mut arrivals = scenario.arrivals.sampler();
    for tick in 0..scenario.ticks {
        events.push(TraceEvent::Tick(tick));

        // --- Arrivals ---
        let mut arriving = arrivals.arrivals_at(tick, &mut rng);
        if arriving == 0 && tick + 1 == scenario.ticks && next_key == 0 {
            // A trace with zero sessions would make every load test vacuous;
            // low-rate processes at few ticks can draw all zeroes, so force a
            // single straggler group on the last tick.
            arriving = 1;
        }
        for _ in 0..arriving {
            let template = template_pick.sample(&mut rng);
            let users = templates[template].users;
            let mut present: Vec<usize> = (0..users)
                .filter(|_| rng.gen::<f64>() < scenario.initial_presence)
                .collect();
            if present.is_empty() {
                present.push(rng.gen_range(0..users));
            }
            let duration = lognormal_ticks(
                scenario.duration.mu,
                scenario.duration.sigma,
                scenario.duration.cap,
                &mut rng,
            );
            events.push(TraceEvent::Open {
                key: next_key,
                template,
                seed: rng.gen::<u64>(),
                present,
            });
            live.push(LiveSession {
                key: next_key,
                template,
                users,
                remaining_ticks: duration,
            });
            next_key += 1;
        }

        // --- Per-session churn, catalogue rotations, λ re-tunes, queries ---
        for session in &live {
            for _ in 0..poisson(scenario.churn_rate, &mut rng) {
                let user = rng.gen_range(0..session.users);
                if rng.gen::<f64>() < 0.5 {
                    events.push(TraceEvent::Join {
                        key: session.key,
                        user,
                    });
                } else {
                    events.push(TraceEvent::Leave {
                        key: session.key,
                        user,
                    });
                }
            }
            if rng.gen::<f64>() < scenario.catalog_churn {
                events.push(TraceEvent::Catalog {
                    key: session.key,
                    items: rotate_catalog(&templates[session.template], &item_pick, &mut rng),
                });
            }
            if rng.gen::<f64>() < scenario.lambda_churn {
                events.push(TraceEvent::Lambda {
                    key: session.key,
                    value: rng.gen_range(0.15..0.95),
                });
            }
            if rng.gen::<f64>() < scenario.query_rate {
                events.push(TraceEvent::Query { key: session.key });
            }
        }

        // --- Departures ---
        let mut still_live = Vec::with_capacity(live.len());
        for mut session in live {
            session.remaining_ticks -= 1;
            if session.remaining_ticks == 0 {
                events.push(TraceEvent::Close { key: session.key });
            } else {
                still_live.push(session);
            }
        }
        live = still_live;
    }

    // End of run: every surviving session checks out, so replays exercise the
    // full lifecycle and the engine ends empty.
    for session in &live {
        events.push(TraceEvent::Close { key: session.key });
    }

    Trace {
        scenario: scenario.name.clone(),
        seed,
        ticks: scenario.ticks,
        templates,
        events,
    }
}

/// Picks a popularity-weighted rotated catalogue: at least `slots` items,
/// biased toward Zipf-popular (low-index) items.
fn rotate_catalog(
    template: &TemplateSpec,
    item_pick: &ZipfSampler,
    rng: &mut StdRng,
) -> Vec<usize> {
    let m = template.items;
    let target = rng.gen_range(template.slots.max(m / 2)..=m);
    let mut chosen = vec![false; m];
    let mut count = 0usize;
    let mut guard = 0usize;
    while count < target && guard < 50 * m {
        guard += 1;
        let item = item_pick.sample(rng);
        if !chosen[item] {
            chosen[item] = true;
            count += 1;
        }
    }
    // Guard exhaustion (extremely skewed Zipf): pad with the lowest indices.
    for slot in chosen.iter_mut() {
        if count >= target {
            break;
        }
        if !*slot {
            *slot = true;
            count += 1;
        }
    }
    (0..m).filter(|&i| chosen[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generation_is_deterministic_and_byte_identical() {
        for scenario in Scenario::all() {
            let scenario = scenario.smoke();
            let a = generate(&scenario, 42);
            let b = generate(&scenario, 42);
            assert_eq!(a, b, "{} traces differ", scenario.name);
            assert_eq!(a.render(), b.render());
            let c = generate(&scenario, 43);
            assert_ne!(a.render(), c.render(), "{} ignores the seed", scenario.name);
        }
    }

    #[test]
    fn traces_are_well_formed() {
        for scenario in Scenario::all() {
            let scenario = scenario.smoke();
            let trace = generate(&scenario, 7);
            let mut open: BTreeSet<u64> = BTreeSet::new();
            let mut ever: BTreeSet<u64> = BTreeSet::new();
            for event in &trace.events {
                match event {
                    TraceEvent::Open {
                        key,
                        template,
                        present,
                        ..
                    } => {
                        let spec = &trace.templates[*template];
                        assert!(!present.is_empty());
                        assert!(present.iter().all(|&u| u < spec.users));
                        assert!(open.insert(*key), "key {key} reopened");
                        assert!(ever.insert(*key), "key {key} reused");
                    }
                    TraceEvent::Join { key, .. }
                    | TraceEvent::Leave { key, .. }
                    | TraceEvent::Catalog { key, .. }
                    | TraceEvent::Lambda { key, .. }
                    | TraceEvent::Query { key } => {
                        assert!(open.contains(key), "event for dead session {key}");
                    }
                    TraceEvent::Close { key } => {
                        assert!(open.remove(key), "close of dead session {key}");
                    }
                    TraceEvent::Tick(_) => {}
                }
                if let TraceEvent::Catalog { key, items } = event {
                    assert!(open.contains(key));
                    let sorted = items.windows(2).all(|w| w[0] < w[1]);
                    assert!(sorted, "catalogue not sorted/deduplicated");
                }
            }
            assert!(open.is_empty(), "{}: sessions left open", scenario.name);
            assert!(
                trace.session_count() > 0,
                "{}: traces must never be session-free",
                scenario.name
            );
            // Round trip through the text format.
            let parsed: Trace = trace.render().parse().expect("parses");
            assert_eq!(parsed, trace);
        }
    }

    #[test]
    fn catalog_rotations_fit_constraints() {
        let scenario = Scenario::churn_heavy().smoke();
        let trace = generate(&scenario, 11);
        let mut rotations = 0;
        for event in &trace.events {
            if let TraceEvent::Catalog { key: _, items } = event {
                rotations += 1;
                assert!(items.len() >= trace.templates[0].slots);
                assert!(items.iter().all(|&i| i < scenario.items));
            }
        }
        assert!(rotations > 0, "churn-heavy produced no catalogue rotations");
    }
}
