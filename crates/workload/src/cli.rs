//! The `loadgen` command-line surface, defined **once**.
//!
//! Earlier revisions hand-maintained the `--help` text next to a separate
//! `match` of accepted flags, and the two drifted (flags like `--vnodes` and
//! `--cold-lp` parsed fine but were missing from `--help`). This module
//! fixes that structurally: [`flags`] is the single table each flag lives
//! in — name, metavar, help text, an example value, and the `apply`
//! function that parses it into [`Args`] — and both the parser
//! ([`parse`]) and the help text ([`usage`]) are generated from it. A flag
//! cannot exist without help text, and the unit tests below assert the
//! generated help covers every flag and that every flag's example value
//! parses.
//!
//! Cross-flag rules (mutually exclusive modes, replay immutability,
//! server-side flags rejected in `--connect` mode) live in [`validate`], so
//! the binary's `main` is dispatch only.

use crate::driver::DriveMode;

/// Everything the `loadgen` command line can express.
#[derive(Clone, Debug)]
pub struct Args {
    /// `loadgen serve …`: run a `svgic-net` server process instead of
    /// driving load.
    pub serve: bool,
    /// `loadgen metrics --connect host:port[,…]`: scrape each serving
    /// node's metric series (a `QueryMetrics` wire exchange per node) and
    /// print one JSON object per node.
    pub metrics: bool,
    /// `loadgen watch --connect host:port[,…]`: poll every node's metrics
    /// into a redrawing terminal table (rps, p99 by phase, memory, health).
    pub watch: bool,
    /// `loadgen profile --connect host:port[,…]`: fetch each node's profile
    /// (a `QueryProfile` wire exchange per node) and print the phase
    /// breakdown, per-template solve ledger and collapsed-stack export.
    pub profile: bool,
    /// (serve mode) Enable the engine's flight recorder, so server-side
    /// spans (queue waits, wire waits, solve phases) feed `loadgen profile`.
    pub obs: bool,
    /// (watch mode) Print one table and exit instead of redrawing.
    pub once: bool,
    /// (watch mode) Poll interval in milliseconds.
    pub interval_ms: u64,
    /// Port to serve on (serve mode; `0` = ephemeral, printed on stdout).
    pub port: Option<u16>,
    /// Remote engines to drive (`--connect host:port[,host:port…]`).
    pub connect: Vec<String>,
    /// Named scenario to generate.
    pub scenario: Option<String>,
    /// Recorded trace to replay.
    pub replay: Option<String>,
    /// Scenario seed.
    pub seed: Option<u64>,
    /// Tick-count override.
    pub ticks: Option<usize>,
    /// Pacing mode.
    pub mode: DriveMode,
    /// Warmup ticks before measurement.
    pub warmup: usize,
    /// Engine worker threads (`0` = one per core).
    pub workers: usize,
    /// In-process cluster nodes (`0` = bare engine).
    pub nodes: usize,
    /// Virtual nodes per cluster node on the hash ring.
    pub vnodes: usize,
    /// Warm standby replication in cluster runs.
    pub replicate: bool,
    /// Chaos plan seed for cluster runs (`None` = no fault injection).
    pub chaos: Option<u64>,
    /// Trace record path override.
    pub record: Option<String>,
    /// Skip trace recording.
    pub no_record: bool,
    /// Also write the JSON report here.
    pub out: Option<String>,
    /// Dump a Chrome trace-event JSON file of the run's spans here.
    pub trace_out: Option<String>,
    /// Shrink the scenario to CI-smoke size.
    pub smoke: bool,
    /// Disable warm-started re-solves.
    pub cold_lp: bool,
    /// Suppress the human summary on stderr.
    pub quiet: bool,
    /// List scenarios and exit.
    pub list: bool,
    /// Print usage and exit.
    pub help: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            serve: false,
            metrics: false,
            watch: false,
            profile: false,
            obs: false,
            once: false,
            interval_ms: 1000,
            port: None,
            connect: Vec::new(),
            scenario: None,
            replay: None,
            seed: None,
            ticks: None,
            mode: DriveMode::OpenLoop,
            warmup: 0,
            workers: 0,
            nodes: 0,
            vnodes: 64,
            replicate: false,
            chaos: None,
            record: None,
            no_record: false,
            out: None,
            trace_out: None,
            smoke: false,
            cold_lp: false,
            quiet: false,
            list: false,
            help: false,
        }
    }
}

/// One command-line flag: its name, metavar, help text, a value that the
/// self-tests feed through the parser, and the parse action.
pub struct FlagSpec {
    /// The flag as typed, e.g. `--seed`.
    pub name: &'static str,
    /// Metavar shown in help for value-taking flags; `None` for booleans.
    pub value: Option<&'static str>,
    /// A representative value accepted by `apply` (tests parse it).
    pub example: &'static str,
    /// Help text, one entry per rendered line.
    pub help: &'static [&'static str],
    /// Whether the flag only makes sense when *generating* a scenario
    /// (rejected in `--replay` mode: a recording is immutable provenance).
    pub generation_only: bool,
    /// Whether the flag configures the *serving engine* (rejected in
    /// `--connect` mode, where the remote server owns its engine).
    pub engine_side: bool,
    apply: fn(&mut Args, Option<String>) -> Result<(), String>,
}

fn parse_number<T: std::str::FromStr>(value: Option<String>, what: &str) -> Result<T, String> {
    value
        .expect("value-taking flag")
        .parse::<T>()
        .map_err(|_| format!("{what} wants a number"))
}

/// The flag table — the single source of truth for [`parse`] and
/// [`usage`].
pub fn flags() -> &'static [FlagSpec] {
    &[
        FlagSpec {
            name: "--scenario",
            value: Some("<name>"),
            example: "steady-mall",
            help: &["named scenario to generate and drive"],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.scenario = value;
                Ok(())
            },
        },
        FlagSpec {
            name: "--replay",
            value: Some("<path>"),
            example: "target/loadgen/steady-mall-seed1.trace",
            help: &["replay a recorded trace instead of generating"],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.replay = value;
                Ok(())
            },
        },
        FlagSpec {
            name: "--seed",
            value: Some("<N>"),
            example: "7",
            help: &["scenario seed (default 1)"],
            generation_only: true,
            engine_side: false,
            apply: |args, value| {
                args.seed = Some(parse_number(value, "--seed")?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--ticks",
            value: Some("<N>"),
            example: "12",
            help: &["override the scenario's tick count"],
            generation_only: true,
            engine_side: false,
            apply: |args, value| {
                args.ticks = Some(parse_number(value, "--ticks")?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--mode",
            value: Some("<open|closed>"),
            example: "closed",
            help: &["open-loop (batched, default) or closed-loop pacing"],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.mode = match value.expect("value-taking flag").as_str() {
                    "open" | "open-loop" => DriveMode::OpenLoop,
                    "closed" | "closed-loop" => DriveMode::ClosedLoop,
                    other => return Err(format!("unknown mode `{other}`")),
                };
                Ok(())
            },
        },
        FlagSpec {
            name: "--warmup",
            value: Some("<N>"),
            example: "2",
            help: &[
                "drive N ticks before measuring (caches stay warm,",
                "counters reset at the boundary; digest unaffected)",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.warmup = parse_number(value, "--warmup")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--workers",
            value: Some("<N>"),
            example: "2",
            help: &["engine worker threads (default: one per core)"],
            generation_only: false,
            engine_side: true,
            apply: |args, value| {
                args.workers = parse_number(value, "--workers")?;
                Ok(())
            },
        },
        FlagSpec {
            name: "--nodes",
            value: Some("<N>"),
            example: "4",
            help: &[
                "drive an N-node in-process cluster instead of a bare",
                "engine (emits a svgic-cluster-report/v1). The node-churn",
                "scenario schedules a node kill + join + rebalances; any",
                "other multi-node run gets one guaranteed mid-run live",
                "migration. Served configurations (the digest) are",
                "identical at any node count.",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                let n: usize = parse_number(value, "--nodes")?;
                if n < 1 {
                    return Err("--nodes wants a positive integer".into());
                }
                args.nodes = n;
                Ok(())
            },
        },
        FlagSpec {
            name: "--vnodes",
            value: Some("<N>"),
            example: "64",
            help: &["virtual nodes per cluster node on the hash ring (default 64)"],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                let n: usize = parse_number(value, "--vnodes")?;
                if n < 1 {
                    return Err("--vnodes wants a positive integer".into());
                }
                args.vnodes = n;
                Ok(())
            },
        },
        FlagSpec {
            name: "--replicate",
            value: None,
            example: "",
            help: &[
                "(cluster runs) ship warm standby replicas to each",
                "session's ring successor at every tick flush, so node",
                "kills fail over warm (solve generation and LP factors",
                "preserved) instead of rebuilding cold. Digest-neutral.",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, _| {
                args.replicate = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--chaos",
            value: Some("<seed>"),
            example: "42",
            help: &[
                "(cluster runs) inject a seeded fault plan at the",
                "transport seam: transient router↔node partitions",
                "(absorbed + retried, never lost), slow-node delays, and",
                "kill-during-flush. The same seed replays the identical",
                "schedule — and the config digest is unchanged by design.",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.chaos = Some(parse_number(value, "--chaos")?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--connect",
            value: Some("<host:port[,host:port…]>"),
            example: "127.0.0.1:7741,127.0.0.1:7742",
            help: &[
                "drive remote `loadgen serve` processes over TCP instead",
                "of an in-process engine. One address: a single remote",
                "engine (svgic-loadgen-report/v1). Several addresses: a",
                "multi-process cluster with live migration over the wire",
                "(svgic-cluster-report/v1). Digests match in-process runs.",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                let list = value.expect("value-taking flag");
                args.connect = list
                    .split(',')
                    .map(|addr| addr.trim().to_string())
                    .filter(|addr| !addr.is_empty())
                    .collect();
                if args.connect.is_empty() {
                    return Err("--connect wants host:port[,host:port…]".into());
                }
                Ok(())
            },
        },
        FlagSpec {
            name: "--port",
            value: Some("<N>"),
            example: "0",
            help: &[
                "(serve mode) TCP port to listen on, bound on 127.0.0.1;",
                "0 picks an ephemeral port. The bound address is printed",
                "on stdout.",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.port = Some(parse_number(value, "--port")?);
                Ok(())
            },
        },
        FlagSpec {
            name: "--smoke",
            value: None,
            example: "",
            help: &["shrink the scenario to CI-smoke size"],
            generation_only: true,
            engine_side: false,
            apply: |args, _| {
                args.smoke = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--cold-lp",
            value: None,
            example: "",
            help: &[
                "disable warm-started re-solves (the cold baseline: every",
                "re-solve recomputes its LP; served configs are identical",
                "either way)",
            ],
            generation_only: false,
            engine_side: true,
            apply: |args, _| {
                args.cold_lp = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--obs",
            value: None,
            example: "",
            help: &[
                "(serve mode) enable the engine's flight recorder so",
                "server-side spans — queue waits, wire waits, solve",
                "phases — feed `loadgen profile` waterfalls and collapsed",
                "stacks (digests are unaffected)",
            ],
            generation_only: false,
            engine_side: true,
            apply: |args, _| {
                args.obs = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--record",
            value: Some("<path>"),
            example: "target/loadgen/example.trace",
            help: &[
                "where to write the generated trace",
                "(default target/loadgen/<scenario>-seed<seed>.trace)",
            ],
            generation_only: true,
            engine_side: false,
            apply: |args, value| {
                args.record = value;
                Ok(())
            },
        },
        FlagSpec {
            name: "--no-record",
            value: None,
            example: "",
            help: &["skip recording the trace"],
            generation_only: true,
            engine_side: false,
            apply: |args, _| {
                args.no_record = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--out",
            value: Some("<path>"),
            example: "target/report.json",
            help: &["also write the JSON report to this file"],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.out = value;
                Ok(())
            },
        },
        FlagSpec {
            name: "--trace-out",
            value: Some("<path>"),
            example: "target/trace.json",
            help: &[
                "record per-request phase spans and write them as Chrome",
                "trace-event JSON (open in Perfetto). Single-engine runs",
                "only: bare in-process, or one --connect address (then the",
                "trace holds the client-side wire/round-trip spans).",
            ],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                args.trace_out = value;
                Ok(())
            },
        },
        FlagSpec {
            name: "--once",
            value: None,
            example: "",
            help: &["(watch mode) print one table and exit instead of redrawing"],
            generation_only: false,
            engine_side: false,
            apply: |args, _| {
                args.once = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--interval-ms",
            value: Some("<N>"),
            example: "500",
            help: &["(watch mode) poll interval in milliseconds (default 1000)"],
            generation_only: false,
            engine_side: false,
            apply: |args, value| {
                let ms: u64 = parse_number(value, "--interval-ms")?;
                if ms < 1 {
                    return Err("--interval-ms wants a positive integer".into());
                }
                args.interval_ms = ms;
                Ok(())
            },
        },
        FlagSpec {
            name: "--quiet",
            value: None,
            example: "",
            help: &["suppress the human-readable summary on stderr"],
            generation_only: false,
            engine_side: false,
            apply: |args, _| {
                args.quiet = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--list-scenarios",
            value: None,
            example: "",
            help: &["list the named scenarios and exit (alias: --list)"],
            generation_only: false,
            engine_side: false,
            apply: |args, _| {
                args.list = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--list",
            value: None,
            example: "",
            help: &["alias of --list-scenarios"],
            generation_only: false,
            engine_side: false,
            apply: |args, _| {
                args.list = true;
                Ok(())
            },
        },
        FlagSpec {
            name: "--help",
            value: None,
            example: "",
            help: &["print this help (alias: -h)"],
            generation_only: false,
            engine_side: false,
            apply: |args, _| {
                args.help = true;
                Ok(())
            },
        },
    ]
}

/// Renders the help text from the flag table.
pub fn usage() -> String {
    let mut out = String::from(
        "loadgen — scenario-driven load testing for the svgic serving engine\n\
         \n\
         USAGE:\n\
         \x20   loadgen --scenario <name> [--seed N] [--ticks N] [options]\n\
         \x20   loadgen --replay <trace-file> [options]\n\
         \x20   loadgen --scenario <name> --connect host:port[,host:port…]\n\
         \x20   loadgen serve --port <N> [--workers N] [--cold-lp]\n\
         \x20   loadgen metrics --connect host:port[,host:port…]\n\
         \x20   loadgen watch --connect host:port[,host:port…] [--once]\n\
         \x20   loadgen profile --connect host:port[,host:port…]\n\
         \x20   loadgen --list-scenarios\n\
         \n\
         MODES:\n\
         \x20   serve               run a svgic-net wire-protocol server fronting one\n\
         \x20                       engine (blocks until a client sends shutdown)\n\
         \x20   metrics             scrape each serving node's metric series over the\n\
         \x20                       wire (QueryMetrics) and print one JSON object per\n\
         \x20                       node, in address order\n\
         \x20   watch               poll every node's metrics into a redrawing fleet\n\
         \x20                       table: rps, p99 by phase, accounted memory, and\n\
         \x20                       SLO health per node (--once prints one table)\n\
         \x20   profile             fetch every node's profile over the wire\n\
         \x20                       (QueryProfile): phase breakdown, per-template\n\
         \x20                       solve ledger with miss causes, and a collapsed-\n\
         \x20                       stack (flamegraph) export. Serve with --obs for\n\
         \x20                       span-based waterfalls.\n\
         \n\
         OPTIONS:\n",
    );
    for flag in flags() {
        if flag.name == "--list" {
            continue; // documented as an alias on --list-scenarios
        }
        let header = match flag.value {
            Some(metavar) => format!("{} {}", flag.name, metavar),
            None => flag.name.to_string(),
        };
        let mut lines = flag.help.iter();
        let first = lines.next().expect("every flag has help text");
        if header.len() <= 19 {
            out.push_str(&format!("    {header:<19} {first}\n"));
        } else {
            out.push_str(&format!("    {header}\n    {:<19} {first}\n", ""));
        }
        for line in lines {
            out.push_str(&format!("    {:<19} {line}\n", ""));
        }
    }
    out.push_str(
        "\nGeneration-only flags (--seed, --ticks, --smoke, --record, --no-record) are\n\
         rejected in --replay mode: a recorded trace is immutable provenance.\n\
         Engine-side flags (--workers, --cold-lp, --obs) are rejected in --connect mode:\n\
         the remote `loadgen serve` process owns its engine configuration.\n",
    );
    out
}

/// Parses a command line (without the program name) against the flag table.
/// The leading positional `serve` selects server mode.
pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Args, String> {
    let mut parsed = Args::default();
    let mut it = args.into_iter().peekable();
    match it.peek().map(String::as_str) {
        Some("serve") => {
            parsed.serve = true;
            it.next();
        }
        Some("metrics") => {
            parsed.metrics = true;
            it.next();
        }
        Some("watch") => {
            parsed.watch = true;
            it.next();
        }
        Some("profile") => {
            parsed.profile = true;
            it.next();
        }
        _ => {}
    }
    while let Some(token) = it.next() {
        let name = if token == "-h" {
            "--help"
        } else {
            token.as_str()
        };
        let Some(flag) = flags().iter().find(|flag| flag.name == name) else {
            return Err(format!("unknown flag `{token}` (see --help)"));
        };
        let value = if flag.value.is_some() {
            Some(
                it.next()
                    .ok_or_else(|| format!("{name} needs a {} argument", flag.value.unwrap()))?,
            )
        } else {
            None
        };
        (flag.apply)(&mut parsed, value)?;
    }
    Ok(parsed)
}

/// Enforces the cross-flag rules the table cannot express. Returns `Ok` for
/// `--help`/`--list` invocations regardless of other flags.
pub fn validate(args: &Args) -> Result<(), String> {
    if args.help || args.list {
        return Ok(());
    }
    if args.metrics || args.watch || args.profile {
        let mode = if args.metrics {
            "metrics"
        } else if args.watch {
            "watch"
        } else {
            "profile"
        };
        if args.connect.is_empty() {
            return Err(format!(
                "{mode} mode needs --connect <host:port[,host:port…]>"
            ));
        }
        for (set, what) in [
            (args.serve, "serve"),
            (args.scenario.is_some(), "--scenario"),
            (args.replay.is_some(), "--replay"),
            (args.nodes > 0, "--nodes"),
            (args.port.is_some(), "--port"),
            (args.trace_out.is_some(), "--trace-out"),
            (!args.watch && args.once, "--once"),
            (args.obs, "--obs"),
        ] {
            if set {
                return Err(format!("{what} does not apply in {mode} mode"));
            }
        }
        return Ok(());
    }
    if args.once {
        return Err("--once only applies in watch mode (loadgen watch --connect …)".into());
    }
    if args.serve {
        if args.port.is_none() {
            return Err("serve mode needs --port <N>".into());
        }
        for (set, what) in [
            (args.scenario.is_some(), "--scenario"),
            (args.replay.is_some(), "--replay"),
            (!args.connect.is_empty(), "--connect"),
            (args.nodes > 0, "--nodes"),
            (args.out.is_some(), "--out"),
            (args.trace_out.is_some(), "--trace-out"),
        ] {
            if set {
                return Err(format!("{what} does not apply in serve mode"));
            }
        }
        return Ok(());
    }
    if args.port.is_some() {
        return Err("--port only applies in serve mode (loadgen serve --port N)".into());
    }
    match (&args.scenario, &args.replay) {
        (Some(_), Some(_)) => return Err("--scenario and --replay are mutually exclusive".into()),
        (None, None) => return Err("need --scenario or --replay (see --help)".into()),
        (None, Some(_)) => {
            // A recorded trace is immutable provenance; silently ignoring
            // generation flags would mislabel the results.
            let set = |flag: &FlagSpec| match flag.name {
                "--seed" => args.seed.is_some(),
                "--ticks" => args.ticks.is_some(),
                "--smoke" => args.smoke,
                "--record" => args.record.is_some(),
                "--no-record" => args.no_record,
                _ => false,
            };
            if let Some(flag) = flags().iter().find(|f| f.generation_only && set(f)) {
                return Err(format!(
                    "{} only applies when generating a scenario; it cannot alter a replayed trace",
                    flag.name
                ));
            }
        }
        (Some(_), None) => {}
    }
    if !args.connect.is_empty() {
        if args.nodes > 0 {
            return Err(
                "--nodes and --connect are mutually exclusive (the address list sets the node count)"
                    .into(),
            );
        }
        let set = |flag: &FlagSpec| match flag.name {
            "--workers" => args.workers > 0,
            "--cold-lp" => args.cold_lp,
            "--obs" => args.obs,
            _ => false,
        };
        if let Some(flag) = flags().iter().find(|f| f.engine_side && set(f)) {
            return Err(format!(
                "{} configures the serving engine; pass it to `loadgen serve` instead of --connect",
                flag.name
            ));
        }
    }
    if args.replicate || args.chaos.is_some() {
        // Replication and chaos are cluster-fabric features: they need the
        // cluster driver (in-process --nodes or a multi-address --connect
        // fleet; a single bare engine has no ring, no standbys, no
        // transport seam worth attacking).
        if args.nodes == 0 && args.connect.len() < 2 {
            let flag = if args.replicate {
                "--replicate"
            } else {
                "--chaos"
            };
            return Err(format!(
                "{flag} applies to cluster runs only (--nodes N or --connect with several addresses)"
            ));
        }
    }
    if args.trace_out.is_some() {
        // A trace is one process's flight recorder; cluster runs would
        // interleave per-node recorders with unrelated epochs. Single-engine
        // runs only: bare in-process, or one remote connection (client-side
        // spans).
        if args.nodes > 0 {
            return Err("--trace-out only applies to single-engine runs, not --nodes".into());
        }
        if args.connect.len() > 1 {
            return Err(
                "--trace-out only applies to single-engine runs; connect to one address".into(),
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(tokens: &[&str]) -> Args {
        parse(tokens.iter().map(|t| t.to_string())).expect("parses")
    }

    /// The drift that motivated this module: every flag the parser accepts
    /// must appear in the generated help, automatically, forever.
    #[test]
    fn usage_mentions_every_parsed_flag() {
        let usage = usage();
        for flag in flags() {
            assert!(
                usage.contains(flag.name),
                "--help is missing {} — the table should make this impossible",
                flag.name
            );
        }
        // The specific casualties of the old hand-maintained help.
        for needle in ["--vnodes", "--cold-lp", "--connect", "serve", "--port"] {
            assert!(usage.contains(needle), "usage lost `{needle}`");
        }
    }

    /// Every flag's example value must round-trip through the parser — a
    /// table entry whose `apply` rejects its own example is a bug.
    #[test]
    fn every_flag_example_parses() {
        for flag in flags() {
            let tokens: Vec<String> = match flag.value {
                Some(_) => vec![flag.name.to_string(), flag.example.to_string()],
                None => vec![flag.name.to_string()],
            };
            parse(tokens).unwrap_or_else(|e| panic!("{} rejected its example: {e}", flag.name));
        }
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(vec!["--frobnicate".to_string()]).is_err());
        assert!(parse(vec!["--seed".to_string()]).is_err(), "missing value");
        assert!(parse(vec!["--seed".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn serve_positional_and_port_parse() {
        let args = parse_ok(&["serve", "--port", "7741", "--workers", "2"]);
        assert!(args.serve);
        assert_eq!(args.port, Some(7741));
        assert_eq!(args.workers, 2);
        assert!(validate(&args).is_ok());
        // serve requires --port…
        assert!(validate(&parse_ok(&["serve"])).is_err());
        // …and --port requires serve.
        assert!(validate(&parse_ok(&["--scenario", "steady-mall", "--port", "1"])).is_err());
    }

    #[test]
    fn connect_splits_addresses_and_guards_engine_flags() {
        let args = parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "127.0.0.1:7741, 127.0.0.1:7742",
        ]);
        assert_eq!(args.connect, vec!["127.0.0.1:7741", "127.0.0.1:7742"]);
        assert!(validate(&args).is_ok());
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "a:1",
            "--nodes",
            "2"
        ]))
        .is_err());
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "a:1",
            "--workers",
            "4"
        ]))
        .is_err());
        // node-churn over a remote fleet is supported: kills wipe the
        // server (Crash over the wire) and joins reuse the crashed husk.
        assert!(validate(&parse_ok(&[
            "--scenario",
            "node-churn",
            "--connect",
            "a:1,b:2"
        ]))
        .is_ok());
        // Single-address node-churn is fine (no fabric plan fires).
        assert!(validate(&parse_ok(&["--scenario", "node-churn", "--connect", "a:1"])).is_ok());
    }

    #[test]
    fn replicate_and_chaos_require_a_cluster() {
        let ok = parse_ok(&["--scenario", "steady-mall", "--nodes", "3", "--replicate"]);
        assert!(ok.replicate);
        assert!(validate(&ok).is_ok());
        let chaos = parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "a:1,b:2",
            "--chaos",
            "7",
        ]);
        assert_eq!(chaos.chaos, Some(7));
        assert!(validate(&chaos).is_ok());
        // A bare engine has no fabric to replicate or attack.
        assert!(validate(&parse_ok(&["--scenario", "steady-mall", "--replicate"])).is_err());
        assert!(validate(&parse_ok(&["--scenario", "steady-mall", "--chaos", "7"])).is_err());
        assert!(
            validate(&parse_ok(&[
                "--scenario",
                "steady-mall",
                "--connect",
                "a:1",
                "--chaos",
                "7"
            ]))
            .is_err(),
            "one remote engine is not a cluster"
        );
    }

    #[test]
    fn replay_rejects_generation_flags_from_the_table() {
        for tokens in [
            vec!["--replay", "t.trace", "--seed", "3"],
            vec!["--replay", "t.trace", "--ticks", "5"],
            vec!["--replay", "t.trace", "--smoke"],
            vec!["--replay", "t.trace", "--record", "x"],
            vec!["--replay", "t.trace", "--no-record"],
        ] {
            let args = parse_ok(&tokens);
            assert!(
                validate(&args).is_err(),
                "replay must reject {:?}",
                tokens[2]
            );
        }
        assert!(validate(&parse_ok(&["--replay", "t.trace", "--nodes", "2"])).is_ok());
    }

    #[test]
    fn metrics_mode_takes_one_or_many_connections() {
        let args = parse_ok(&["metrics", "--connect", "127.0.0.1:7741"]);
        assert!(args.metrics);
        assert!(validate(&args).is_ok());
        assert!(validate(&parse_ok(&["metrics"])).is_err());
        // A comma-separated node list scrapes the whole fleet.
        let fleet = parse_ok(&["metrics", "--connect", "a:1,b:2"]);
        assert_eq!(fleet.connect.len(), 2);
        assert!(validate(&fleet).is_ok());
        assert!(validate(&parse_ok(&[
            "metrics",
            "--connect",
            "a:1",
            "--scenario",
            "steady-mall"
        ]))
        .is_err());
        assert!(
            validate(&parse_ok(&["metrics", "--connect", "a:1", "--once"])).is_err(),
            "--once is watch-only"
        );
    }

    #[test]
    fn watch_mode_polls_connections() {
        let args = parse_ok(&[
            "watch",
            "--connect",
            "127.0.0.1:7741,127.0.0.1:7742",
            "--once",
            "--interval-ms",
            "250",
        ]);
        assert!(args.watch);
        assert!(args.once);
        assert_eq!(args.interval_ms, 250);
        assert_eq!(args.connect.len(), 2);
        assert!(validate(&args).is_ok());
        assert!(validate(&parse_ok(&["watch"])).is_err(), "needs --connect");
        assert!(validate(&parse_ok(&["watch", "--connect", "a:1", "--nodes", "2"])).is_err());
        assert!(validate(&parse_ok(&[
            "watch",
            "--connect",
            "a:1",
            "--scenario",
            "steady-mall"
        ]))
        .is_err());
        // --once outside watch mode is rejected, not silently ignored.
        assert!(validate(&parse_ok(&["--scenario", "steady-mall", "--once"])).is_err());
        // A zero interval is a parse error.
        assert!(parse(
            ["watch", "--connect", "a:1", "--interval-ms", "0"]
                .iter()
                .map(|t| t.to_string())
        )
        .is_err());
    }

    #[test]
    fn profile_mode_takes_connections_and_rejects_engine_flags() {
        let args = parse_ok(&["profile", "--connect", "127.0.0.1:7741,127.0.0.1:7742"]);
        assert!(args.profile);
        assert_eq!(args.connect.len(), 2);
        assert!(validate(&args).is_ok());
        assert!(
            validate(&parse_ok(&["profile"])).is_err(),
            "needs --connect"
        );
        for extra in [
            ["--scenario", "steady-mall"].as_slice(),
            ["--nodes", "2"].as_slice(),
            ["--port", "1"].as_slice(),
            ["--trace-out", "t.json"].as_slice(),
            ["--once"].as_slice(),
            ["--obs"].as_slice(),
        ] {
            let mut tokens = vec!["profile", "--connect", "a:1"];
            tokens.extend_from_slice(extra);
            assert!(
                validate(&parse_ok(&tokens)).is_err(),
                "profile must reject {extra:?}"
            );
        }
    }

    #[test]
    fn obs_is_an_engine_side_serve_flag() {
        let args = parse_ok(&["serve", "--port", "0", "--obs"]);
        assert!(args.obs);
        assert!(validate(&args).is_ok());
        // In-process driving runs may enable the recorder too…
        assert!(validate(&parse_ok(&["--scenario", "steady-mall", "--obs"])).is_ok());
        // …but a --connect driver cannot configure the remote engine.
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "a:1",
            "--obs"
        ]))
        .is_err());
    }

    #[test]
    fn trace_out_is_single_engine_only() {
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--trace-out",
            "t.json"
        ]))
        .is_ok());
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "a:1",
            "--trace-out",
            "t.json"
        ]))
        .is_ok());
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--nodes",
            "2",
            "--trace-out",
            "t.json"
        ]))
        .is_err());
        assert!(validate(&parse_ok(&[
            "--scenario",
            "steady-mall",
            "--connect",
            "a:1,b:2",
            "--trace-out",
            "t.json"
        ]))
        .is_err());
        assert!(validate(&parse_ok(&[
            "serve",
            "--port",
            "0",
            "--trace-out",
            "t.json"
        ]))
        .is_err());
    }

    #[test]
    fn scenario_and_replay_are_exclusive_and_one_is_required() {
        assert!(validate(&parse_ok(&["--scenario", "a", "--replay", "b"])).is_err());
        assert!(validate(&parse_ok(&[])).is_err());
        assert!(validate(&parse_ok(&["--list"])).is_ok());
        assert!(validate(&parse_ok(&["-h"])).is_ok());
    }
}
