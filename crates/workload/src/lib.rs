//! # svgic-workload — scenario-driven load testing for the serving engine
//!
//! PR 1 turned the paper's batch solvers into an always-on serving engine;
//! this crate generates the *traffic*. It answers three questions the
//! workspace could not before:
//!
//! 1. **What does realistic load look like?** The [`scenario`] module names
//!    five parameterized traffic shapes (steady mall, diurnal cycle, flash
//!    sale, churn-heavy catalogue, megagroup stress) built from arrival
//!    processes ([`arrival`]), heavy-tailed group-size/duration/popularity
//!    distributions ([`distributions`]), and the `svgic-graph`-backed
//!    dataset profiles.
//! 2. **Can a run be reproduced?** Everything a scenario generates
//!    ([`synth`]) is materialized into a compact line-oriented [`trace`]
//!    that records and replays **bit-identically** across machines —
//!    instances are rebuilt from seeds, floats round-trip as IEEE-754 bits.
//! 3. **How does the engine behave under that load?** The [`driver`] feeds a
//!    trace into `svgic-engine` open- or closed-loop, recording per-request
//!    latency into HDR-style log-bucketed histograms ([`histogram`]),
//!    sustained throughput, utility-vs-bound quality, and a deterministic
//!    configuration digest; [`report`] serializes it all as machine-readable
//!    JSON for the perf trajectory.
//! 4. **Does it scale out?** The [`cluster_driver`] runs the same traces
//!    against a multi-node `svgic-cluster` fabric (`loadgen --nodes N`),
//!    merging per-node latency histograms and engine snapshots and executing
//!    a [`cluster_driver::NodePlan`] of node kills, joins and rebalances —
//!    the `node-churn` scenario's whole point. Digests stay comparable with
//!    single-engine runs: topology and live migration never change what is
//!    served.
//!
//! 5. **Does the wire change anything?** No — the drivers are generic over
//!    `svgic_engine::transport::EngineTransport`
//!    ([`LoadDriver::run_on`](driver::LoadDriver::run_on),
//!    [`ClusterDriver::run_with`](cluster_driver::ClusterDriver::run_with)),
//!    so the same traces drive `svgic-net` TCP servers — one, or a
//!    multi-process fleet — with **identical configuration digests**;
//!    [`json`] parses the reports back for conformance testing.
//!
//! The `loadgen` binary (this crate's `src/bin/loadgen.rs`) is the CLI over
//! all of it — its whole flag surface is defined once in [`cli`], which
//! generates both the parser and `--help`:
//!
//! ```text
//! cargo run --release --bin loadgen -- --scenario flash-sale --seed 7
//! cargo run --release --bin loadgen -- --replay target/loadgen/flash-sale-seed7.trace
//! cargo run --release --bin loadgen -- serve --port 7741
//! cargo run --release --bin loadgen -- --scenario steady-mall --connect 127.0.0.1:7741
//! ```
//!
//! ## Example
//!
//! ```rust
//! use svgic_workload::prelude::*;
//!
//! let mut scenario = Scenario::steady_mall().smoke(); // tiny for doctests
//! scenario.ticks = 2;
//! let trace = generate(&scenario, 7);
//! assert_eq!(trace.render(), generate(&scenario, 7).render()); // deterministic
//!
//! let outcome = LoadDriver::new(DriverConfig::default()).run(&trace);
//! assert!(outcome.requests > 0);
//! let json = LoadReport::new(&trace, outcome).to_json();
//! assert!(json.contains("throughput_rps"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod cli;
pub mod cluster_driver;
pub mod distributions;
pub mod driver;
pub mod histogram;
pub mod json;
pub mod report;
pub mod scenario;
pub mod synth;
pub mod trace;

pub use arrival::{ArrivalProcess, ArrivalSampler};
pub use cluster_driver::{
    ClusterDriver, ClusterDriverConfig, ClusterLoadOutcome, NodeAction, NodeOutcome, NodePlan,
    PolicyKind,
};
pub use driver::{DriveMode, DriverConfig, LatencyBreakdown, LoadDriver, LoadOutcome};
pub use histogram::LatencyHistogram;
pub use report::{ClusterReport, LoadReport, CLUSTER_REPORT_SCHEMA, REPORT_SCHEMA};
pub use scenario::{DurationModel, GroupSizeModel, Scenario};
pub use synth::generate;
pub use trace::{TemplateSpec, Trace, TraceError, TraceEvent};

/// The most common workload imports in one place.
pub mod prelude {
    pub use crate::arrival::ArrivalProcess;
    pub use crate::cluster_driver::{
        ClusterDriver, ClusterDriverConfig, ClusterLoadOutcome, NodeAction, NodePlan, PolicyKind,
    };
    pub use crate::driver::{DriveMode, DriverConfig, LoadDriver, LoadOutcome};
    pub use crate::histogram::LatencyHistogram;
    pub use crate::report::{ClusterReport, LoadReport};
    pub use crate::scenario::Scenario;
    pub use crate::synth::generate;
    pub use crate::trace::{Trace, TraceEvent};
}
