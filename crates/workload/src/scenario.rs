//! Named, parameterized workload scenarios.
//!
//! A [`Scenario`] bundles everything the generator needs: an arrival process,
//! template demographics (group sizes are heavy-tailed, template popularity
//! is Zipf), per-tick churn intensity, catalogue/λ mutation rates, and the
//! query mix. Five named scenarios ship out of the box:
//!
//! | name | traffic shape | stresses |
//! |---|---|---|
//! | `steady-mall` | Poisson arrivals, moderate churn | the steady-state batch path |
//! | `diurnal-cycle` | sinusoidal day/night rate | cache behaviour across load swings |
//! | `flash-sale` | ON/OFF bursts + catalogue rotations | burst absorption, coalescing |
//! | `churn-heavy` | constant catalogue/λ mutation, groups down to size 1 | base-instance rebuilds, cache turnover |
//! | `megagroup` | few huge groups, heavy membership churn | LP solve cost, incremental re-rounding |
//! | `node-churn` | long-lived sessions; the cluster driver kills/joins nodes mid-run | crash recovery, live migration, rebalancing |

use std::fmt;

use svgic_datasets::DatasetProfile;

use crate::arrival::ArrivalProcess;

/// Heavy-tailed group-size model: bounded Pareto on `[min_users, max_users]`.
#[derive(Clone, Debug, PartialEq)]
pub struct GroupSizeModel {
    /// Smallest group size (≥ 1; scenarios may go down to solo shoppers).
    pub min_users: usize,
    /// Largest group size.
    pub max_users: usize,
    /// Pareto tail exponent (smaller = heavier tail).
    pub alpha: f64,
}

/// Log-normal session-duration model, in ticks.
#[derive(Clone, Debug, PartialEq)]
pub struct DurationModel {
    /// Mean of the underlying normal.
    pub mu: f64,
    /// Sigma of the underlying normal.
    pub sigma: f64,
    /// Hard cap in ticks.
    pub cap: usize,
}

/// A named, fully parameterized workload scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Stable scenario name (what `loadgen --scenario` matches).
    pub name: String,
    /// Ticks the generation runs for.
    pub ticks: usize,
    /// Session arrival process.
    pub arrivals: ArrivalProcess,
    /// Number of instance templates sessions are stamped from.
    pub num_templates: usize,
    /// Zipf exponent of template popularity (0 = uniform; higher = a few hot
    /// templates, which is what makes the engine's cross-session factor cache
    /// earn its keep).
    pub template_zipf: f64,
    /// Dataset families templates cycle through.
    pub profiles: Vec<DatasetProfile>,
    /// Group-size distribution.
    pub group_size: GroupSizeModel,
    /// Items per template (`m`).
    pub items: usize,
    /// Display slots per template (`k`).
    pub slots: usize,
    /// Session-duration distribution.
    pub duration: DurationModel,
    /// Probability each user is present at open (at least one always is).
    pub initial_presence: f64,
    /// Mean membership (join/leave) events per live session per tick.
    pub churn_rate: f64,
    /// Per-session per-tick probability of a catalogue rotation.
    pub catalog_churn: f64,
    /// Per-session per-tick probability of a λ re-tune.
    pub lambda_churn: f64,
    /// Zipf exponent of item popularity used when rotating catalogues.
    pub item_zipf: f64,
    /// Per-session per-tick probability the client reads its configuration.
    pub query_rate: f64,
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

impl Scenario {
    /// Steady-state mall: Poisson arrivals, moderate churn, warm caches.
    pub fn steady_mall() -> Self {
        Scenario {
            name: "steady-mall".into(),
            ticks: 24,
            arrivals: ArrivalProcess::Poisson { rate: 1.2 },
            num_templates: 6,
            template_zipf: 0.9,
            profiles: DatasetProfile::all().to_vec(),
            group_size: GroupSizeModel {
                min_users: 4,
                max_users: 10,
                alpha: 1.6,
            },
            items: 16,
            slots: 3,
            duration: DurationModel {
                mu: 1.9,
                sigma: 0.5,
                cap: 16,
            },
            initial_presence: 0.75,
            churn_rate: 1.2,
            catalog_churn: 0.02,
            lambda_churn: 0.01,
            item_zipf: 0.8,
            query_rate: 0.5,
        }
    }

    /// Day/night cycle: the arrival rate swings sinusoidally over the run.
    pub fn diurnal_cycle() -> Self {
        Scenario {
            name: "diurnal-cycle".into(),
            ticks: 36,
            arrivals: ArrivalProcess::Diurnal {
                base: 1.4,
                amplitude: 0.9,
                period: 36.0,
            },
            ..Scenario::steady_mall()
        }
    }

    /// Flash sale: bursty ON/OFF arrivals plus frequent catalogue rotations
    /// while the sale is on.
    pub fn flash_sale() -> Self {
        Scenario {
            name: "flash-sale".into(),
            ticks: 24,
            arrivals: ArrivalProcess::OnOff {
                burst_rate: 4.0,
                idle_rate: 0.2,
                mean_on: 3.0,
                mean_off: 5.0,
            },
            template_zipf: 1.4,
            churn_rate: 1.8,
            catalog_churn: 0.12,
            item_zipf: 1.3,
            duration: DurationModel {
                mu: 1.5,
                sigma: 0.6,
                cap: 12,
            },
            ..Scenario::steady_mall()
        }
    }

    /// Churn-heavy catalogue: constant catalogue/λ mutation and solo shoppers
    /// (group sizes sweep down to 1), stressing base-instance rebuilds.
    pub fn churn_heavy() -> Self {
        Scenario {
            name: "churn-heavy".into(),
            ticks: 24,
            group_size: GroupSizeModel {
                min_users: 1,
                max_users: 8,
                alpha: 1.1,
            },
            churn_rate: 0.8,
            catalog_churn: 0.35,
            lambda_churn: 0.10,
            ..Scenario::steady_mall()
        }
    }

    /// Megagroup stress: a couple of very large groups with heavy membership
    /// churn — the LP-cost and incremental-re-rounding worst case.
    pub fn megagroup() -> Self {
        Scenario {
            name: "megagroup".into(),
            ticks: 16,
            arrivals: ArrivalProcess::Poisson { rate: 0.3 },
            num_templates: 2,
            template_zipf: 0.5,
            profiles: vec![DatasetProfile::TimikLike],
            group_size: GroupSizeModel {
                min_users: 14,
                max_users: 20,
                alpha: 2.0,
            },
            items: 14,
            slots: 3,
            duration: DurationModel {
                mu: 2.4,
                sigma: 0.3,
                cap: 16,
            },
            churn_rate: 4.0,
            catalog_churn: 0.0,
            lambda_churn: 0.02,
            query_rate: 1.0,
            ..Scenario::steady_mall()
        }
    }

    /// Node churn: long-lived sessions under steady traffic, designed for
    /// multi-node runs — the cluster driver schedules a node kill, a
    /// replacement join and rebalances against it (`NodePlan::node_churn`).
    /// Durations are stretched so most sessions live *through* the fabric
    /// events: that is what makes recovery and migration visible in the
    /// outcome rather than churning already-closed sessions.
    pub fn node_churn() -> Self {
        Scenario {
            name: "node-churn".into(),
            ticks: 24,
            arrivals: ArrivalProcess::Poisson { rate: 1.0 },
            duration: DurationModel {
                mu: 2.6,
                sigma: 0.4,
                cap: 24,
            },
            churn_rate: 0.9,
            catalog_churn: 0.04,
            lambda_churn: 0.02,
            query_rate: 0.8,
            ..Scenario::steady_mall()
        }
    }

    /// All named scenarios, in documentation order.
    pub fn all() -> Vec<Scenario> {
        vec![
            Scenario::steady_mall(),
            Scenario::diurnal_cycle(),
            Scenario::flash_sale(),
            Scenario::churn_heavy(),
            Scenario::megagroup(),
            Scenario::node_churn(),
        ]
    }

    /// Looks a scenario up by its stable name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        Scenario::all().into_iter().find(|s| s.name == name)
    }

    /// A shrunk copy for smoke tests and CI: few ticks, small groups, small
    /// catalogues. Traffic *shape* (arrival process, churn mix) is preserved.
    pub fn smoke(mut self) -> Self {
        self.ticks = self.ticks.min(6);
        self.num_templates = self.num_templates.min(3);
        self.group_size.min_users = self.group_size.min_users.min(4);
        self.group_size.max_users = self.group_size.max_users.min(6);
        self.items = self.items.min(10);
        self.slots = self.slots.min(2);
        self.duration.cap = self.duration.cap.min(5);
        self.duration.mu = self.duration.mu.min(1.2);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<String> = Scenario::all().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "steady-mall",
                "diurnal-cycle",
                "flash-sale",
                "churn-heavy",
                "megagroup",
                "node-churn"
            ]
        );
        for name in &names {
            assert_eq!(&Scenario::by_name(name).expect("found").name, name);
        }
        assert!(Scenario::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn scenarios_are_well_formed() {
        for scenario in Scenario::all() {
            assert!(scenario.ticks > 0);
            assert!(scenario.num_templates > 0);
            assert!(!scenario.profiles.is_empty());
            assert!(scenario.group_size.min_users >= 1);
            assert!(scenario.group_size.max_users >= scenario.group_size.min_users);
            assert!(scenario.slots <= scenario.items);
            assert!((0.0..=1.0).contains(&scenario.initial_presence));
        }
    }

    #[test]
    fn smoke_shrinks_but_keeps_shape() {
        let full = Scenario::flash_sale();
        let smoke = full.clone().smoke();
        assert!(smoke.ticks <= 6);
        assert!(smoke.group_size.max_users <= 6);
        assert_eq!(smoke.arrivals, full.arrivals);
        assert_eq!(smoke.name, full.name);
    }
}
