//! A minimal, validating JSON parser.
//!
//! The workspace is built offline (no serde), so the loadgen reports are
//! written by a hand-rolled emitter ([`crate::report`]). This module is the
//! *reading* half: a small recursive-descent parser used by the format
//! conformance tests (`tests/format_conformance.rs`) to prove that the
//! example blobs checked into `docs/FORMATS.md` parse and stay structurally
//! identical to what the emitter actually produces — without shelling out
//! to python the way the CI smoke steps do.
//!
//! Scope: full JSON syntax (objects, arrays, strings with escapes, numbers,
//! booleans, null). Numbers are held as `f64`, which is lossy above 2⁵³ —
//! fine for structural validation, not for reading 64-bit seeds back
//! exactly (the reports emit those as exact integer literals; consumers that
//! need them verbatim should read the raw text).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (held as `f64`; lossy above 2⁵³).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object. Keys are held sorted (`BTreeMap`) — document order is not
    /// preserved, which the structural conformance checks don't need.
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing content rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` on non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The object's keys, sorted (empty for non-objects).
    pub fn keys(&self) -> Vec<&str> {
        match self {
            Json::Object(map) => map.keys().map(String::as_str).collect(),
            _ => Vec::new(),
        }
    }

    /// Every key path reachable in the document, `.`-joined (e.g.
    /// `latency_us.all.p99`), sorted. The structural fingerprint the
    /// conformance tests compare: two reports with the same schema must
    /// expose the same path set.
    pub fn key_paths(&self) -> Vec<String> {
        let mut paths = Vec::new();
        fn walk(value: &Json, prefix: &str, paths: &mut Vec<String>) {
            if let Json::Object(map) = value {
                for (key, child) in map {
                    let path = if prefix.is_empty() {
                        key.clone()
                    } else {
                        format!("{prefix}.{key}")
                    };
                    paths.push(path.clone());
                    walk(child, &path, paths);
                }
            }
        }
        walk(self, "", &mut paths);
        paths.sort();
        paths
    }

    /// The number at `self`, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string at `self`, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".into()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate key `{key}`"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by the reports;
                            // reject rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|text| text.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_reports_end_to_end() {
        use crate::driver::{DriverConfig, LoadDriver};
        use crate::report::LoadReport;
        use crate::scenario::Scenario;
        use crate::synth::generate;
        let mut scenario = Scenario::steady_mall().smoke();
        scenario.ticks = 2;
        let trace = generate(&scenario, 3);
        let outcome = LoadDriver::new(DriverConfig::default()).run(&trace);
        let json = LoadReport::new(&trace, outcome).to_json();
        let value = Json::parse(&json).expect("the emitter writes valid JSON");
        assert_eq!(
            value.get("schema").and_then(Json::as_str),
            Some("svgic-loadgen-report/v1")
        );
        assert!(value
            .get("throughput_rps")
            .and_then(Json::as_f64)
            .is_some_and(|rps| rps > 0.0));
        assert!(value
            .key_paths()
            .iter()
            .any(|path| path == "latency_us.all.p99"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed `{bad}`");
        }
    }

    #[test]
    fn decodes_escapes_and_numbers() {
        let value =
            Json::parse(r#"{"s": "a\n\"bA", "n": -1.5e2, "b": [true, null]}"#).expect("parses");
        assert_eq!(value.get("s").and_then(Json::as_str), Some("a\n\"bA"));
        assert_eq!(value.get("n").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(
            value.get("b"),
            Some(&Json::Array(vec![Json::Bool(true), Json::Null]))
        );
    }
}
