//! The deterministic, serializable event-trace format.
//!
//! A trace is the unit of reproducibility for load tests: anything the
//! scenario generator produces can be written to a compact line-oriented text
//! file and replayed **bit-identically** on another machine — same instances,
//! same event order, hence (engine determinism) the same served
//! configurations.
//!
//! ## Format (`svgic-trace v1`)
//!
//! ```text
//! svgic-trace v1
//! scenario flash-sale 7 24
//! template timik 160 8 16 3 3fe0000000000000 17278004353704125235
//! tick 0
//! open 0 1 9817350032133055464 0,2,3
//! join 0 4
//! leave 0 2
//! catalog 0 0,1,2,5,6,7
//! lambda 0 3fe999999999999a
//! query 0
//! close 0
//! end 8
//! ```
//!
//! * `scenario <name> <seed> <ticks>` — provenance of the trace;
//! * `template <profile> <population> <users> <items> <slots> <λ-bits>
//!   <build-seed>` — one line per instance template, id implicit by order.
//!   Replay rebuilds the *identical* [`SvgicInstance`] from these seven
//!   fields alone (floats are serialized as IEEE-754 bit patterns in hex so
//!   round-trips are exact);
//! * `tick <t>` — advances the batch clock (the open-loop driver flushes the
//!   engine here);
//! * `open <key> <template> <seed> <u,u,...>` — opens session `key` from a
//!   template with the given rounding seed and initially present users;
//! * `join` / `leave` / `catalog` / `lambda` / `query` / `close` — the
//!   session-level events, keyed by the trace-local session key;
//! * `end <n>` — trailer carrying the event count as a truncation guard.

use std::fmt;
use std::path::Path;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic_core::SvgicInstance;
use svgic_datasets::{DatasetProfile, InstanceSpec};

/// Magic first line of every trace file.
pub const TRACE_MAGIC: &str = "svgic-trace v1";

/// A parse/IO failure while reading a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError(pub String);

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

fn err<T>(message: impl Into<String>) -> Result<T, TraceError> {
    Err(TraceError(message.into()))
}

/// Everything needed to rebuild one instance template bit-identically.
#[derive(Clone, Debug, PartialEq)]
pub struct TemplateSpec {
    /// Dataset family of the background network.
    pub profile: DatasetProfile,
    /// Background population the group is sampled from.
    pub population: usize,
    /// Group size (`n`).
    pub users: usize,
    /// Candidate items (`m`).
    pub items: usize,
    /// Display slots (`k`).
    pub slots: usize,
    /// Trade-off weight `λ`.
    pub lambda: f64,
    /// Seed of the dedicated RNG the instance is built from.
    pub build_seed: u64,
}

impl TemplateSpec {
    /// Builds the template's instance; identical calls yield identical
    /// instances (the build RNG is owned by the spec).
    pub fn build(&self) -> SvgicInstance {
        InstanceSpec {
            profile: self.profile,
            population: self.population,
            num_users: self.users,
            num_items: self.items,
            num_slots: self.slots,
            lambda: self.lambda,
            model: None,
        }
        .build(&mut StdRng::seed_from_u64(self.build_seed))
    }
}

fn profile_code(profile: DatasetProfile) -> &'static str {
    match profile {
        DatasetProfile::TimikLike => "timik",
        DatasetProfile::YelpLike => "yelp",
        DatasetProfile::EpinionsLike => "epinions",
    }
}

fn profile_from_code(code: &str) -> Result<DatasetProfile, TraceError> {
    match code {
        "timik" => Ok(DatasetProfile::TimikLike),
        "yelp" => Ok(DatasetProfile::YelpLike),
        "epinions" => Ok(DatasetProfile::EpinionsLike),
        other => err(format!("unknown profile code `{other}`")),
    }
}

/// One line of the trace body.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Batch-clock boundary; the open-loop driver flushes here.
    Tick(usize),
    /// Opens session `key` from `template` with `seed` and `present` users.
    Open {
        /// Trace-local session key (dense, assigned in open order).
        key: u64,
        /// Index into the trace's template table.
        template: usize,
        /// Rounding seed handed to the engine session.
        seed: u64,
        /// Initially present users (original indices, non-empty, sorted).
        present: Vec<usize>,
    },
    /// User joins the session's group.
    Join {
        /// Session key.
        key: u64,
        /// User index in the template's population.
        user: usize,
    },
    /// User leaves the session's group.
    Leave {
        /// Session key.
        key: u64,
        /// User index in the template's population.
        user: usize,
    },
    /// Replaces the session's active catalogue.
    Catalog {
        /// Session key.
        key: u64,
        /// New catalogue (original item indices, sorted, ≥ k entries).
        items: Vec<usize>,
    },
    /// Re-tunes the session's preference/social weight `λ`.
    Lambda {
        /// Session key.
        key: u64,
        /// New λ in `[0, 1]`.
        value: f64,
    },
    /// Client reads the served configuration (digested by the driver).
    Query {
        /// Session key.
        key: u64,
    },
    /// Closes the session.
    Close {
        /// Session key.
        key: u64,
    },
}

/// A fully materialized, replayable workload trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// Scenario name the trace was generated from (or `replay` provenance).
    pub scenario: String,
    /// Scenario seed.
    pub seed: u64,
    /// Number of ticks the generation ran for.
    pub ticks: usize,
    /// Instance templates; sessions reference these by index.
    pub templates: Vec<TemplateSpec>,
    /// The event stream, in submission order.
    pub events: Vec<TraceEvent>,
}

fn render_indices(list: &[usize]) -> String {
    list.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_indices(text: &str) -> Result<Vec<usize>, TraceError> {
    if text.is_empty() {
        return err("empty index list");
    }
    text.split(',')
        .map(|tok| {
            tok.parse::<usize>()
                .map_err(|_| TraceError(format!("bad index `{tok}`")))
        })
        .collect()
}

fn parse_field<T: FromStr>(tok: Option<&str>, what: &str) -> Result<T, TraceError> {
    tok.ok_or_else(|| TraceError(format!("missing {what}")))?
        .parse::<T>()
        .map_err(|_| TraceError(format!("bad {what}")))
}

/// Canonical form of a scenario name inside the space-delimited header:
/// whitespace becomes `-`, an empty name becomes `unnamed`.
fn canonical_name(name: &str) -> String {
    if name.is_empty() {
        return "unnamed".into();
    }
    name.chars()
        .map(|c| if c.is_whitespace() { '-' } else { c })
        .collect()
}

fn parse_f64_bits(tok: Option<&str>, what: &str) -> Result<f64, TraceError> {
    let raw = tok.ok_or_else(|| TraceError(format!("missing {what}")))?;
    u64::from_str_radix(raw, 16)
        .map(f64::from_bits)
        .map_err(|_| TraceError(format!("bad {what} bits `{raw}`")))
}

impl Trace {
    /// Number of sessions the trace opens.
    pub fn session_count(&self) -> usize {
        self.events
            .iter()
            .filter(|event| matches!(event, TraceEvent::Open { .. }))
            .count()
    }

    /// Serializes to the canonical `svgic-trace v1` text. Canonical means
    /// byte-identical across `render → parse → render` round trips. Scenario
    /// names are canonicalized (whitespace → `-`, empty → `unnamed`) because
    /// the header is space-delimited; the shipped scenario names pass through
    /// verbatim.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(TRACE_MAGIC);
        out.push('\n');
        out.push_str(&format!(
            "scenario {} {} {}\n",
            canonical_name(&self.scenario),
            self.seed,
            self.ticks
        ));
        for t in &self.templates {
            out.push_str(&format!(
                "template {} {} {} {} {} {:016x} {}\n",
                profile_code(t.profile),
                t.population,
                t.users,
                t.items,
                t.slots,
                t.lambda.to_bits(),
                t.build_seed
            ));
        }
        for event in &self.events {
            match event {
                TraceEvent::Tick(t) => out.push_str(&format!("tick {t}\n")),
                TraceEvent::Open {
                    key,
                    template,
                    seed,
                    present,
                } => out.push_str(&format!(
                    "open {key} {template} {seed} {}\n",
                    render_indices(present)
                )),
                TraceEvent::Join { key, user } => out.push_str(&format!("join {key} {user}\n")),
                TraceEvent::Leave { key, user } => out.push_str(&format!("leave {key} {user}\n")),
                TraceEvent::Catalog { key, items } => {
                    out.push_str(&format!("catalog {key} {}\n", render_indices(items)))
                }
                TraceEvent::Lambda { key, value } => {
                    out.push_str(&format!("lambda {key} {:016x}\n", value.to_bits()))
                }
                TraceEvent::Query { key } => out.push_str(&format!("query {key}\n")),
                TraceEvent::Close { key } => out.push_str(&format!("close {key}\n")),
            }
        }
        out.push_str(&format!("end {}\n", self.events.len()));
        out
    }

    /// Writes the canonical text to `path`, creating parent directories.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.render())
    }

    /// Reads and parses a trace file.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| TraceError(format!("read {}: {e}", path.as_ref().display())))?;
        text.parse()
    }
}

impl FromStr for Trace {
    type Err = TraceError;

    fn from_str(text: &str) -> Result<Self, TraceError> {
        let mut lines = text.lines().enumerate();
        let Some((_, magic)) = lines.next() else {
            return err("empty trace");
        };
        if magic != TRACE_MAGIC {
            return err(format!("bad magic `{magic}` (want `{TRACE_MAGIC}`)"));
        }
        let Some((_, header)) = lines.next() else {
            return err("missing scenario header");
        };
        let mut toks = header.split(' ');
        if toks.next() != Some("scenario") {
            return err("second line must be `scenario <name> <seed> <ticks>`");
        }
        let scenario: String = parse_field(toks.next(), "scenario name")?;
        let seed: u64 = parse_field(toks.next(), "scenario seed")?;
        let ticks: usize = parse_field(toks.next(), "scenario ticks")?;
        if let Some(extra) = toks.next() {
            return err(format!("trailing token `{extra}` in scenario header"));
        }

        let mut templates = Vec::new();
        let mut events = Vec::new();
        let mut trailer: Option<usize> = None;
        for (lineno, line) in lines {
            if trailer.is_some() {
                return Err(TraceError(format!(
                    "line {}: content after `end` trailer",
                    lineno + 1
                )));
            }
            let mut toks = line.split(' ');
            let tag = toks.next().unwrap_or("");
            let parsed: Result<(), TraceError> = (|| {
                match tag {
                    "template" => {
                        if !events.is_empty() {
                            return err("template line after first event");
                        }
                        templates.push(TemplateSpec {
                            profile: profile_from_code(
                                toks.next()
                                    .ok_or_else(|| TraceError("missing profile".into()))?,
                            )?,
                            population: parse_field(toks.next(), "population")?,
                            users: parse_field(toks.next(), "users")?,
                            items: parse_field(toks.next(), "items")?,
                            slots: parse_field(toks.next(), "slots")?,
                            lambda: parse_f64_bits(toks.next(), "lambda")?,
                            build_seed: parse_field(toks.next(), "build seed")?,
                        });
                    }
                    "tick" => events.push(TraceEvent::Tick(parse_field(toks.next(), "tick")?)),
                    "open" => {
                        let key = parse_field(toks.next(), "session key")?;
                        let template: usize = parse_field(toks.next(), "template id")?;
                        if template >= templates.len() {
                            return err(format!("template id {template} out of range"));
                        }
                        events.push(TraceEvent::Open {
                            key,
                            template,
                            seed: parse_field(toks.next(), "session seed")?,
                            present: parse_indices(
                                toks.next()
                                    .ok_or_else(|| TraceError("missing present".into()))?,
                            )?,
                        });
                    }
                    "join" => events.push(TraceEvent::Join {
                        key: parse_field(toks.next(), "session key")?,
                        user: parse_field(toks.next(), "user")?,
                    }),
                    "leave" => events.push(TraceEvent::Leave {
                        key: parse_field(toks.next(), "session key")?,
                        user: parse_field(toks.next(), "user")?,
                    }),
                    "catalog" => events.push(TraceEvent::Catalog {
                        key: parse_field(toks.next(), "session key")?,
                        items: parse_indices(
                            toks.next()
                                .ok_or_else(|| TraceError("missing items".into()))?,
                        )?,
                    }),
                    "lambda" => events.push(TraceEvent::Lambda {
                        key: parse_field(toks.next(), "session key")?,
                        value: parse_f64_bits(toks.next(), "lambda")?,
                    }),
                    "query" => events.push(TraceEvent::Query {
                        key: parse_field(toks.next(), "session key")?,
                    }),
                    "close" => events.push(TraceEvent::Close {
                        key: parse_field(toks.next(), "session key")?,
                    }),
                    "end" => trailer = Some(parse_field(toks.next(), "event count")?),
                    other => return err(format!("unknown tag `{other}`")),
                }
                // The format is strict everywhere else (magic, trailer count,
                // template ordering); trailing junk on a line is corruption
                // too, not something to silently ignore.
                if let Some(extra) = toks.next() {
                    return err(format!("trailing token `{extra}` after `{tag}` fields"));
                }
                Ok(())
            })();
            parsed.map_err(|e| TraceError(format!("line {}: {}", lineno + 1, e.0)))?;
        }
        match trailer {
            None => err("missing `end` trailer (truncated trace?)"),
            Some(count) if count != events.len() => err(format!(
                "trailer says {count} events, parsed {}",
                events.len()
            )),
            Some(_) => Ok(Trace {
                scenario,
                seed,
                ticks,
                templates,
                events,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace {
            scenario: "unit".into(),
            seed: 9,
            ticks: 2,
            templates: vec![TemplateSpec {
                profile: DatasetProfile::TimikLike,
                population: 40,
                users: 5,
                items: 8,
                slots: 2,
                lambda: 0.5,
                build_seed: 1234,
            }],
            events: vec![
                TraceEvent::Tick(0),
                TraceEvent::Open {
                    key: 0,
                    template: 0,
                    seed: 7,
                    present: vec![0, 2, 4],
                },
                TraceEvent::Join { key: 0, user: 1 },
                TraceEvent::Lambda { key: 0, value: 0.8 },
                TraceEvent::Tick(1),
                TraceEvent::Catalog {
                    key: 0,
                    items: vec![0, 1, 2, 3],
                },
                TraceEvent::Query { key: 0 },
                TraceEvent::Close { key: 0 },
            ],
        }
    }

    #[test]
    fn render_parse_roundtrip_is_byte_identical() {
        let trace = sample_trace();
        let text = trace.render();
        let parsed: Trace = text.parse().expect("parses");
        assert_eq!(parsed, trace);
        assert_eq!(parsed.render(), text);
        assert_eq!(parsed.session_count(), 1);
    }

    #[test]
    fn lambda_bits_roundtrip_exactly() {
        let mut trace = sample_trace();
        let awkward = 0.1 + 0.2; // not representable prettily in decimal
        trace.events.push(TraceEvent::Lambda {
            key: 0,
            value: awkward,
        });
        let parsed: Trace = trace.render().parse().expect("parses");
        let Some(TraceEvent::Lambda { value, .. }) = parsed.events.last() else {
            panic!("lost the lambda event");
        };
        assert_eq!(value.to_bits(), awkward.to_bits());
    }

    #[test]
    fn template_build_is_deterministic() {
        let spec = sample_trace().templates[0].clone();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.num_users(), 5);
        assert_eq!(a.num_items(), 8);
        for u in 0..a.num_users() {
            for c in 0..a.num_items() {
                assert_eq!(a.preference(u, c).to_bits(), b.preference(u, c).to_bits());
            }
        }
    }

    #[test]
    fn truncated_and_corrupt_traces_are_rejected() {
        let trace = sample_trace();
        let text = trace.render();
        // Drop the trailer.
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(truncated.parse::<Trace>().is_err());
        // Wrong magic.
        assert!("not-a-trace\n".parse::<Trace>().is_err());
        // Garbage tag.
        let garbled = text.replace("query 0", "frobnicate 0");
        assert!(garbled.parse::<Trace>().is_err());
        // Trailer miscount.
        let miscount = text.replace("end 8", "end 9");
        assert!(miscount.parse::<Trace>().is_err());
        // Out-of-range template reference.
        let bad_template = text.replace("open 0 0", "open 0 5");
        assert!(bad_template.parse::<Trace>().is_err());
        // Trailing junk on an event line (duplicated field) is corruption.
        let trailing = text.replace("join 0 1", "join 0 1 7");
        assert!(trailing.parse::<Trace>().is_err());
        // Trailing junk in the header too.
        let header_junk = text.replace("scenario unit 9 2", "scenario unit 9 2 junk");
        assert!(header_junk.parse::<Trace>().is_err());
    }

    #[test]
    fn whitespace_scenario_names_are_canonicalized_not_corrupting() {
        let mut trace = sample_trace();
        trace.scenario = "my mall\tday".into();
        let text = trace.render();
        let parsed: Trace = text.parse().expect("canonicalized header parses");
        assert_eq!(parsed.scenario, "my-mall-day");
        assert_eq!(parsed.render(), text, "round trip stays byte-identical");
        trace.scenario = String::new();
        assert_eq!(
            trace.render().parse::<Trace>().expect("parses").scenario,
            "unnamed"
        );
    }
}
