//! Heavy-tailed samplers used by the scenario model.
//!
//! Social-VR traffic is skewed everywhere: a few scene templates attract most
//! groups (Zipf), group sizes follow a power law (most pairs/trios, rare
//! megagroups), and session durations are log-normal (most groups browse for
//! minutes, a few camp for hours). All samplers are deterministic given the
//! RNG passed in, which is what makes recorded traces reproducible.

use rand::Rng;

/// A Zipf(`s`) sampler over ranks `0..n` (rank 0 is the most popular).
///
/// Weights are `1 / (r + 1)^s`; the cumulative table is precomputed so each
/// draw is a binary search.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n ≥ 1` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` concentrates mass on low ranks).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "ZipfSampler needs at least one rank");
        assert!(
            s >= 0.0 && s.is_finite(),
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler has zero ranks (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x = rng.gen::<f64>() * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Draws an integer from a bounded Pareto distribution on `[lo, hi]` with
/// tail exponent `alpha` (smaller `alpha` = heavier tail). `lo = hi` is
/// allowed and returns `lo`.
pub fn bounded_pareto<R: Rng + ?Sized>(lo: usize, hi: usize, alpha: f64, rng: &mut R) -> usize {
    assert!(lo >= 1, "bounded_pareto needs lo >= 1");
    assert!(hi >= lo, "bounded_pareto needs hi >= lo");
    assert!(alpha > 0.0, "tail exponent must be positive");
    if lo == hi {
        return lo;
    }
    let l = lo as f64;
    let h = hi as f64;
    let u: f64 = rng.gen();
    // Inverse CDF of the bounded Pareto: x = L * (1 - u (1 - (L/H)^a))^(-1/a).
    let x = l * (1.0 - u * (1.0 - (l / h).powf(alpha))).powf(-1.0 / alpha);
    (x.floor() as usize).clamp(lo, hi)
}

/// Draws a non-negative integer duration (in ticks) from a log-normal with
/// the given mean/sigma of the underlying normal, clamped to `[1, cap]`.
pub fn lognormal_ticks<R: Rng + ?Sized>(mu: f64, sigma: f64, cap: usize, rng: &mut R) -> usize {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    // Box–Muller.
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = (mu + sigma * z).exp();
    (x.round() as usize).clamp(1, cap.max(1))
}

/// Draws from a Poisson distribution with rate `lambda ≥ 0` (Knuth's
/// product-of-uniforms method; fine for the per-tick rates scenarios use).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "rate must be finite, >= 0"
    );
    if lambda == 0.0 {
        return 0;
    }
    let threshold = (-lambda).exp();
    let mut count = 0usize;
    let mut product: f64 = 1.0;
    loop {
        product *= rng.gen::<f64>();
        if product <= threshold || count > 10_000 {
            return count;
        }
        count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = StdRng::seed_from_u64(1);
        let zipf = ZipfSampler::new(10, 1.2);
        let mut counts = [0usize; 10];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9],
            "rank 0 {} vs rank 9 {}",
            counts[0],
            counts[9]
        );
        assert!(counts[0] > counts[4]);
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let zipf = ZipfSampler::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 700, "uniform-ish counts, got {counts:?}");
        }
    }

    #[test]
    fn bounded_pareto_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        for _ in 0..2000 {
            let x = bounded_pareto(2, 9, 1.4, &mut rng);
            assert!((2..=9).contains(&x));
            seen_lo |= x == 2;
        }
        assert!(seen_lo, "the mode of a Pareto is its lower bound");
        assert_eq!(bounded_pareto(5, 5, 1.0, &mut rng), 5);
    }

    #[test]
    fn lognormal_in_range_and_poisson_mean_tracks_rate() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..500 {
            let d = lognormal_ticks(1.5, 0.8, 40, &mut rng);
            assert!((1..=40).contains(&d));
        }
        let mean: f64 = (0..4000)
            .map(|_| poisson(2.5, &mut rng) as f64)
            .sum::<f64>()
            / 4000.0;
        assert!((mean - 2.5).abs() < 0.25, "poisson mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }
}
