//! Log-bucketed HDR-style latency histograms.
//!
//! Latencies span six orders of magnitude (a cached query is nanoseconds, a
//! full LP flush is milliseconds), so linear buckets are useless. This
//! histogram uses the classic HDR layout: values below 16 ns get exact
//! buckets; above that, each power-of-two range is split into 16 linear
//! sub-buckets. Quantiles are reported at bucket midpoints, bounding the
//! (two-sided) relative error at half a sub-bucket ≈ 1/32 ≈ 3%, while
//! keeping the whole histogram a fixed 976-slot array that records in O(1)
//! and merges by element-wise addition.

use std::time::Duration;

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 16
const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS; // 960
const TOTAL_SLOTS: usize = SUB_BUCKETS + NUM_BUCKETS; // 976

/// A fixed-size log-bucketed histogram of durations (recorded in
/// nanoseconds).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn slot_of(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros(); // >= SUB_BUCKET_BITS
    let sub = ((nanos >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (exp - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Lower bound of a slot's value range.
fn slot_lower_bound(slot: usize) -> u64 {
    if slot < SUB_BUCKETS {
        return slot as u64;
    }
    let exp = (slot / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let sub = (slot % SUB_BUCKETS) as u64;
    (1u64 << exp) | (sub << (exp - SUB_BUCKET_BITS))
}

/// Representative value of a slot: its midpoint. Using the lower bound would
/// bias every reported quantile low by up to a full sub-bucket (1/16
/// relative); the midpoint makes the error two-sided and halves it. Slots
/// below [`SUB_BUCKETS`] hold exactly one integer value and are exact.
fn slot_value(slot: usize) -> u64 {
    let lower = slot_lower_bound(slot);
    if slot < SUB_BUCKETS {
        return lower;
    }
    let exp = (slot / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let width = 1u64 << (exp - SUB_BUCKET_BITS);
    lower + width / 2
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; TOTAL_SLOTS],
            total: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[slot_of(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Exact mean of recorded samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// The quantile `q ∈ [0, 1]`, reported at the containing bucket's
    /// midpoint: the error is two-sided and at most half a sub-bucket
    /// (≈ 1/32 relative). The exact max is returned for the top quantile.
    ///
    /// An empty histogram has no quantiles; by contract this returns
    /// [`Duration::ZERO`] then (it is the documented "no data" value, tested
    /// alongside `mean`/`max`, not an incidental fall-through).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max();
        }
        let mut seen = 0u64;
        for (slot, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report a bucket bound above the true max.
                return Duration::from_nanos(slot_value(slot).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_monotone_and_cover_u64() {
        let mut previous = 0usize;
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            for probe in [v, v + (v >> 1)] {
                let slot = slot_of(probe);
                assert!(slot < TOTAL_SLOTS, "slot {slot} for {probe}");
                assert!(
                    slot >= previous,
                    "slots must be monotone in the sample: {slot} < {previous} at {probe}"
                );
                assert!(
                    slot_lower_bound(slot) <= probe,
                    "slot lower bound {} above sample {probe}",
                    slot_lower_bound(slot)
                );
                // The representative midpoint stays inside the bucket: at or
                // above the lower bound, and below the next slot's lower
                // bound (when one exists).
                assert!(slot_value(slot) >= slot_lower_bound(slot));
                if slot + 1 < TOTAL_SLOTS {
                    assert!(
                        slot_value(slot) < slot_lower_bound(slot + 1),
                        "midpoint of slot {slot} spills into the next bucket"
                    );
                }
                previous = slot;
            }
        }
        assert!(slot_of(u64::MAX) < TOTAL_SLOTS);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        // Midpoint representatives bound the error two-sidedly at half a
        // sub-bucket (1/32 ≈ 3.1%) plus the discretisation of the uniform
        // grid itself; assert both directions at a 4% band.
        for (q, expected) in [(0.25, 250.0), (0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q).as_nanos() as f64 / 1000.0;
            let relative = (got - expected) / expected;
            assert!(
                relative.abs() < 0.04,
                "q{q}: got {got}µs, expected {expected}µs ({:+.2}% off)",
                100.0 * relative
            );
        }
        assert_eq!(h.quantile(1.0), Duration::from_micros(1000));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(h.count(), 1000);
        let mean = h.mean().as_micros();
        assert!((499..=502).contains(&mean), "mean {mean}");
    }

    #[test]
    fn midpoint_representative_is_not_biased_low() {
        // Every sample sits at the same value: a full sub-bucket above its
        // bucket's lower bound would be a +6% error, the lower bound itself a
        // -6% error. The midpoint must land within half a sub-bucket.
        let mut h = LatencyHistogram::new();
        // Top of the first sub-bucket of the 2^19 octave: the lower bound is
        // 32767 ns (-5.9%) away — the old lower-bound representative fails
        // this band, the midpoint is -2.9% and passes.
        let value = (1u64 << 19) + (1u64 << 15) - 1;
        for _ in 0..100 {
            h.record(Duration::from_nanos(value));
        }
        for q in [0.1, 0.5, 0.9] {
            let got = h.quantile(q).as_nanos() as f64;
            let relative = (got - value as f64) / value as f64;
            assert!(
                relative.abs() <= 1.0 / 32.0 + 1e-9,
                "q{q}: {got} vs {value} ({:+.2}%)",
                100.0 * relative
            );
        }
        // The top quantile still reports the exact max, never a midpoint
        // above it.
        assert_eq!(h.quantile(1.0), Duration::from_nanos(value));
    }

    #[test]
    fn empty_histogram_quantile_is_the_documented_zero() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Duration::ZERO);
        }
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_nanos(17 * i * i + 3);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
