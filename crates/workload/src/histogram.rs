//! Log-bucketed HDR-style latency histograms.
//!
//! Latencies span six orders of magnitude (a cached query is nanoseconds, a
//! full LP flush is milliseconds), so linear buckets are useless. This
//! histogram uses the classic HDR layout: values below 16 ns get exact
//! buckets; above that, each power-of-two range is split into 16 linear
//! sub-buckets, bounding the relative quantile error at 1/16 ≈ 6% while
//! keeping the whole histogram a fixed 976-slot array that records in O(1)
//! and merges by element-wise addition.

use std::time::Duration;

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS; // 16
const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS; // 960
const TOTAL_SLOTS: usize = SUB_BUCKETS + NUM_BUCKETS; // 976

/// A fixed-size log-bucketed histogram of durations (recorded in
/// nanoseconds).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn slot_of(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let exp = 63 - nanos.leading_zeros(); // >= SUB_BUCKET_BITS
    let sub = ((nanos >> (exp - SUB_BUCKET_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (exp - SUB_BUCKET_BITS + 1) as usize * SUB_BUCKETS + sub
}

/// Lower bound of a slot's value range (its representative value).
fn slot_value(slot: usize) -> u64 {
    if slot < SUB_BUCKETS {
        return slot as u64;
    }
    let exp = (slot / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let sub = (slot % SUB_BUCKETS) as u64;
    (1u64 << exp) | (sub << (exp - SUB_BUCKET_BITS))
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; TOTAL_SLOTS],
            total: 0,
            sum_nanos: 0,
            max_nanos: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        self.counts[slot_of(nanos)] += 1;
        self.total += 1;
        self.sum_nanos += nanos as u128;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact maximum recorded sample.
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Exact mean of recorded samples (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.total == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// The quantile `q ∈ [0, 1]` with ≤ 1/16 relative error (the exact max is
    /// returned for the top quantile; zero when empty).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.total == 0 {
            return Duration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        if rank >= self.total {
            return self.max();
        }
        let mut seen = 0u64;
        for (slot, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                // Never report a bucket bound above the true max.
                return Duration::from_nanos(slot_value(slot).min(self.max_nanos));
            }
        }
        self.max()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_monotone_and_cover_u64() {
        let mut previous = 0usize;
        for exp in 0..64u32 {
            let v = 1u64 << exp;
            for probe in [v, v + (v >> 1)] {
                let slot = slot_of(probe);
                assert!(slot < TOTAL_SLOTS, "slot {slot} for {probe}");
                assert!(
                    slot >= previous,
                    "slots must be monotone in the sample: {slot} < {previous} at {probe}"
                );
                assert!(
                    slot_value(slot) <= probe,
                    "slot lower bound {} above sample {probe}",
                    slot_value(slot)
                );
                previous = slot;
            }
        }
        assert!(slot_of(u64::MAX) < TOTAL_SLOTS);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        for micros in 1..=1000u64 {
            h.record(Duration::from_micros(micros));
        }
        let p50 = h.quantile(0.50).as_micros() as f64;
        let p99 = h.quantile(0.99).as_micros() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.08, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.08, "p99 {p99}");
        assert_eq!(h.quantile(1.0), Duration::from_micros(1000));
        assert_eq!(h.max(), Duration::from_micros(1000));
        assert_eq!(h.count(), 1000);
        let mean = h.mean().as_micros();
        assert!((499..=502).contains(&mean), "mean {mean}");
    }

    #[test]
    fn empty_histogram_is_all_zeroes() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut whole = LatencyHistogram::new();
        for i in 0..500u64 {
            let d = Duration::from_nanos(17 * i * i + 3);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
            whole.record(d);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.max(), whole.max());
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q));
        }
    }
}
