//! Log-bucketed HDR-style latency histograms.
//!
//! [`LatencyHistogram`] originated here; it moved to `svgic-obs` when the
//! engine grew per-phase histograms over the same bucket layout (the obs
//! crate sits below the engine in the dependency graph, this crate sits
//! above it). This module re-exports it unchanged so every existing
//! `svgic_workload::histogram::LatencyHistogram` path keeps working; the
//! layout and quantile contracts are tested where the type now lives.

pub use svgic_obs::LatencyHistogram;

#[cfg(test)]
mod tests {
    use super::LatencyHistogram;
    use std::time::Duration;

    /// The re-export serves the same type the drivers were built on: a quick
    /// end-to-end smoke over the moved implementation.
    #[test]
    fn reexported_histogram_still_records_and_reports() {
        let mut h = LatencyHistogram::new();
        for micros in 1..=100u64 {
            h.record(Duration::from_micros(micros));
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), Duration::from_micros(100));
        let p50 = h.quantile(0.5).as_nanos() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.05, "p50 {p50}");
    }
}
