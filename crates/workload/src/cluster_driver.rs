//! The cluster load driver: feeds a trace into a multi-node
//! [`svgic_cluster::Cluster`] and measures it, node churn included.
//!
//! Mirrors [`crate::driver::LoadDriver`] — same traces, same latency
//! classes, same configuration digest — but routes sessions across nodes via
//! the cluster's consistent-hash ring and executes a [`NodePlan`] of fabric
//! events (node kills, joins, rebalances) at tick boundaries.
//!
//! ## Digest semantics
//!
//! Served configurations are independent of topology and *migration*
//! history (see `svgic-cluster`'s crate docs), so a trace driven on 1 node,
//! on 4 nodes, or on 4 nodes with live rebalances all produce the **same
//! digest** as the single-engine [`crate::driver::LoadDriver`] — which is
//! asserted in tests and CI. Node **kills** do change the digest (recovered
//! sessions restart their solve generation with a fresh rounding stream),
//! but remain deterministic run-to-run — and with
//! [`ClusterDriverConfig::replicate`] on, a kill whose lost sessions all
//! promote from current standbys preserves even generations, making a fully
//! warm kill digest-invisible. A [`ChaosPlan`] is digest-neutral by
//! construction (faults delay requests, never drop or reorder them), so a
//! replayed chaos run yields the identical digest, replication on or off,
//! one node or many.
//!
//! ## Timing model
//!
//! The fabric is in-process: nodes that would be separate machines in a real
//! deployment share this process's cores, so wall-clock throughput cannot
//! show scale-out on a small host. The driver therefore keeps **two
//! clocks**: `wall_seconds` (honest end-to-end wall time of the in-process
//! simulation) and a per-node **busy clock** that accumulates each node's
//! own serving time (creates, submits, queries, flushes executed on that
//! node). Nodes are independent — no cross-node communication exists on the
//! serving path — so in a real deployment the run's critical path is the
//! busiest node plus the fabric's control-plane work:
//! `makespan = max(node busy) + fabric`. [`ClusterLoadOutcome`] reports
//! both `throughput_rps` (wall) and `aggregate_throughput_rps`
//! (requests / makespan, the scale-out projection the scaling bench
//! records).

use std::collections::HashMap;
use std::time::Instant;

use svgic_cluster::prelude::*;
use svgic_core::extensions::DynamicEvent;
use svgic_core::SvgicInstance;
use svgic_engine::fingerprint::Fnv;
use svgic_engine::prelude::*;
use svgic_engine::{CreateSession, Health, TelemetrySample};

use crate::driver::{digest_view, DriveMode, LatencyBreakdown, QualityUnderLoad};
use crate::trace::{Trace, TraceEvent};

/// Which rebalance policy a plan step runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyKind {
    /// Ring-authority placement ([`RingPolicy`]).
    Ring,
    /// Load-aware placement ([`QueueDepthPolicy`], tolerance 1).
    QueueDepth,
}

impl PolicyKind {
    /// Stable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Ring => "ring",
            PolicyKind::QueueDepth => "queue-depth",
        }
    }
}

/// One scheduled fabric event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeAction {
    /// Crash the alive node currently holding the most sessions (ties break
    /// toward the lower node id). Refused silently when only one node is
    /// alive.
    KillBusiest,
    /// Spawn a fresh node and add it to the ring (sessions move only when a
    /// later rebalance says so).
    Join,
    /// Run one rebalance pass under the given policy.
    Rebalance(PolicyKind),
    /// Live-migrate the session with the lowest key to the next alive node
    /// (ascending cyclic order). Unlike a rebalance — which is quiet on a
    /// balanced fleet — this guarantees one migration on any multi-node
    /// cluster, which is what the digest-determinism checks exercise.
    MigrateLowest,
}

/// A deterministic schedule of fabric events, executed at tick boundaries
/// (after that tick's flush).
#[derive(Clone, Debug, Default)]
pub struct NodePlan {
    /// `(tick, action)` pairs; executed in order per tick.
    pub actions: Vec<(usize, NodeAction)>,
}

impl NodePlan {
    /// No fabric events.
    pub fn none() -> Self {
        NodePlan::default()
    }

    /// A guaranteed live migration plus one load-aware rebalance at the
    /// run's midpoint — the canonical "mid-run migration" used by the
    /// digest-determinism checks: any multi-node run exercises migration
    /// without changing what is served.
    pub fn mid_run_rebalance(ticks: usize) -> Self {
        NodePlan {
            actions: vec![
                (ticks / 2, NodeAction::MigrateLowest),
                (ticks / 2, NodeAction::Rebalance(PolicyKind::QueueDepth)),
            ],
        }
    }

    /// A load-aware rebalance every `every` ticks — the steady-state fabric
    /// posture: migrations are microseconds and carry the session's warm
    /// factors, so continuously evening out session counts keeps the busiest
    /// node close to the fleet mean, which is what scale-out throughput is
    /// limited by.
    pub fn periodic_rebalance(ticks: usize, every: usize, kind: PolicyKind) -> Self {
        let every = every.max(1);
        NodePlan {
            actions: (0..ticks)
                .step_by(every)
                .skip(1)
                .map(|tick| (tick, NodeAction::Rebalance(kind)))
                .collect(),
        }
    }

    /// The `node-churn` schedule: kill the busiest node a third into the
    /// run, rebalance the survivors, then add a replacement node and hand it
    /// its ring share. Exercises crash recovery, load-aware and
    /// ring-authority rebalancing in one run.
    pub fn node_churn(ticks: usize) -> Self {
        let third = (ticks / 3).max(1);
        NodePlan {
            actions: vec![
                (third, NodeAction::KillBusiest),
                (third, NodeAction::Rebalance(PolicyKind::QueueDepth)),
                (2 * third, NodeAction::Join),
                (2 * third, NodeAction::Rebalance(PolicyKind::Ring)),
            ],
        }
    }

    /// The schedule a trace implies at a given node count: the `node-churn`
    /// scenario gets its kill/join/rebalance schedule, any other multi-node
    /// run gets the canonical mid-run rebalance, single-node runs get
    /// nothing. Derived from the trace header alone so replays reproduce the
    /// identical fabric schedule.
    pub fn for_trace(trace: &Trace, nodes: usize) -> Self {
        if nodes <= 1 {
            NodePlan::none()
        } else if trace.scenario == "node-churn" {
            NodePlan::node_churn(trace.ticks)
        } else {
            NodePlan::mid_run_rebalance(trace.ticks)
        }
    }

    fn actions_at(&self, tick: usize) -> impl Iterator<Item = NodeAction> + '_ {
        self.actions
            .iter()
            .filter(move |(t, _)| *t == tick)
            .map(|&(_, action)| action)
    }
}

/// Cluster-driver configuration.
#[derive(Clone, Debug)]
pub struct ClusterDriverConfig {
    /// Pacing mode (same semantics as the single-engine driver; closed loop
    /// flushes only the submitting session's node).
    pub mode: DriveMode,
    /// Ticks to drive before measurement starts (counters reset at the
    /// boundary, caches and placements stay; the digest always covers the
    /// full run).
    pub warmup_ticks: usize,
    /// Number of nodes the cluster starts with.
    pub nodes: usize,
    /// Virtual nodes per physical node on the routing ring.
    pub vnodes: usize,
    /// Session placement strategy (default: bounded-load consistent hashing
    /// at 1.25x the fleet-mean weighted load).
    pub placement: PlacementMode,
    /// Per-node engine configuration (auto-flush is forced off by the
    /// cluster — it owns the flush clock).
    pub engine: EngineConfig,
    /// Fabric event schedule.
    pub plan: NodePlan,
    /// Warm standby replication (see [`svgic_cluster::ClusterConfig`]):
    /// each tick flush piggybacks standby copies onto ring successors, and
    /// kills fail over warm when the replica is current. Digest-neutral —
    /// replication never touches live sessions.
    pub replicate: bool,
    /// Seeded fault schedule injected at the transport seam (see
    /// [`svgic_cluster::ChaosPlan`]). Every node backend is wrapped in a
    /// [`svgic_cluster::ChaosTransport`] consulting one shared clock, so the
    /// same plan runs identically against in-process engines and TCP
    /// connections. Digest-neutral: faults delay requests, never drop them.
    pub chaos: ChaosPlan,
}

impl Default for ClusterDriverConfig {
    fn default() -> Self {
        ClusterDriverConfig {
            mode: DriveMode::OpenLoop,
            warmup_ticks: 0,
            nodes: 1,
            vnodes: 64,
            placement: PlacementMode::BoundedLoad {
                capacity_factor: 1.25,
            },
            engine: EngineConfig {
                auto_flush_pending: 0,
                ..EngineConfig::default()
            },
            plan: NodePlan::none(),
            replicate: false,
            chaos: ChaosPlan::inactive(),
        }
    }
}

/// One node's ledger in the outcome. Survives the node's death (a killed
/// node keeps its busy time and final counter snapshot).
#[derive(Clone, Debug)]
pub struct NodeOutcome {
    /// The node.
    pub node: NodeId,
    /// Whether the node was still alive at the end of the run.
    pub alive: bool,
    /// Seconds the node spent serving (its own creates, submits, queries,
    /// closes and flushes).
    pub busy_seconds: f64,
    /// Live sessions at the end of the run (0 for dead nodes).
    pub sessions: u64,
    /// The node engine's counters — final for alive nodes, last-observed
    /// (at the preceding tick boundary) for killed ones.
    pub engine: StatsSnapshot,
    /// The node's per-tick telemetry ring, oldest first (empty for killed
    /// nodes — their ring died with the engine — and for capacity-0 nodes).
    pub telemetry: Vec<TelemetrySample>,
}

impl NodeOutcome {
    /// The node's derived health under the default policy (killed nodes
    /// assess their last-observed counters).
    pub fn health(&self) -> Health {
        self.engine.health()
    }

    /// Total accounted bytes on the node at the end of the run.
    pub fn mem_bytes(&self) -> u64 {
        self.engine.mem_total_bytes()
    }
}

/// Everything one cluster run produced.
#[derive(Clone, Debug)]
pub struct ClusterLoadOutcome {
    /// Pacing mode.
    pub mode: DriveMode,
    /// Nodes the cluster started with.
    pub nodes_initial: usize,
    /// Wall-clock duration of the measured window (in-process, all nodes
    /// serialized onto this host).
    pub wall_seconds: f64,
    /// Control-plane seconds: fabric work not attributable to one node's
    /// serving path (kills + recovery, migrations, rebalance planning).
    pub fabric_seconds: f64,
    /// Engine requests issued in the measured window.
    pub requests: u64,
    /// Trace events consumed (whole run).
    pub trace_events: usize,
    /// Sessions opened (whole run).
    pub sessions: u64,
    /// Per-class latency histograms, merged across nodes.
    pub latency: LatencyBreakdown,
    /// Quality of served configurations sampled at queries.
    pub quality: QualityUnderLoad,
    /// Deterministic digest over every query response (and the final sweep).
    /// Comparable with [`crate::driver::LoadOutcome::config_digest`].
    pub config_digest: u64,
    /// Per-node ledgers, ascending by node id (dead nodes included).
    pub per_node: Vec<NodeOutcome>,
    /// Every alive node's engine counters merged into one fleet snapshot.
    pub merged: StatsSnapshot,
    /// Fabric counters (migrations, warm capital, recoveries, kills).
    pub cluster: ClusterStats,
    /// Requests the chaos plan absorbed (each retried and delivered).
    pub chaos_injected_failures: u64,
    /// Requests the chaos plan delayed.
    pub chaos_injected_delays: u64,
}

impl ClusterLoadOutcome {
    /// Wall-clock request throughput of the in-process simulation.
    pub fn throughput_rps(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.requests as f64 / self.wall_seconds
        }
    }

    /// The run's critical path under the deployment model: nodes are
    /// independent machines, so they serve concurrently and the run takes as
    /// long as its busiest node, plus the fabric's control-plane work.
    pub fn makespan_seconds(&self) -> f64 {
        let busiest = self
            .per_node
            .iter()
            .map(|n| n.busy_seconds)
            .fold(0.0, f64::max);
        busiest + self.fabric_seconds
    }

    /// Scale-out throughput projection: requests over the critical path.
    /// Equals `throughput_rps` modulo driver overhead at 1 node; grows with
    /// nodes as long as the hash ring keeps them evenly busy.
    pub fn aggregate_throughput_rps(&self) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan <= 0.0 {
            0.0
        } else {
            self.requests as f64 / makespan
        }
    }
}

/// The trace-driven cluster load driver.
#[derive(Clone, Debug, Default)]
pub struct ClusterDriver {
    config: ClusterDriverConfig,
}

/// Busy-clock ledger per node id, surviving node deaths.
#[derive(Default)]
struct Ledger {
    busy: HashMap<u64, f64>,
    /// Last observed engine snapshot per node (so a killed node's counters
    /// are not lost with its engine).
    last_seen: HashMap<u64, StatsSnapshot>,
    dead: Vec<u64>,
    fabric: f64,
}

impl Ledger {
    fn charge(&mut self, node: NodeId, seconds: f64) {
        *self.busy.entry(node.0).or_default() += seconds;
    }

    fn reset_measured(&mut self) {
        self.busy.clear();
        self.fabric = 0.0;
        // Nodes that died during warmup stay in the report (alive: false),
        // but their counters belong to the excluded window — zero them so
        // the measured report never mixes warmup and measured data.
        for snapshot in self.last_seen.values_mut() {
            *snapshot = svgic_engine::EngineStats::default().snapshot();
        }
    }
}

impl ClusterDriver {
    /// Builds a driver.
    pub fn new(config: ClusterDriverConfig) -> Self {
        ClusterDriver { config }
    }

    /// Drives `trace` through a fresh in-process cluster and measures it.
    ///
    /// Panics on traces that reference unknown session keys or that the
    /// engines reject — like the single-engine driver, a rejection means a
    /// corrupted trace, not an operational error.
    pub fn run(&self, trace: &Trace) -> ClusterLoadOutcome {
        self.run_with(trace, |engine: &EngineConfig| Engine::new(engine.clone()))
    }

    /// Drives `trace` through a cluster whose node backends come from
    /// `spawner` — in-process engines, or `svgic_net::NetClient` connections
    /// to real server processes (`loadgen --connect a:p,b:p`). The spawner
    /// is called once per node, initial fleet and later joins alike.
    ///
    /// Served configurations (the digest) are identical for any backend:
    /// the fabric's placement and migration machinery is
    /// backend-independent, and the wire codec is canonical.
    pub fn run_with<B: EngineTransport + 'static>(
        &self,
        trace: &Trace,
        spawner: impl FnMut(&EngineConfig) -> B + 'static,
    ) -> ClusterLoadOutcome {
        let instances: Vec<SvgicInstance> =
            trace.templates.iter().map(|spec| spec.build()).collect();

        // Every backend — initial fleet and later joins, in-process or TCP —
        // is wrapped in a chaos transport sharing one control; an inactive
        // plan makes the wrapper transparent.
        let chaos = ChaosControl::new(self.config.chaos.clone());
        let mut spawner = spawner;
        let chaos_for_spawner = chaos.clone();
        let mut cluster = Cluster::with_backends(
            ClusterConfig {
                nodes: self.config.nodes.max(1),
                vnodes: self.config.vnodes,
                placement: self.config.placement,
                engine: self.config.engine.clone(),
                replicate: self.config.replicate,
            },
            move |engine: &EngineConfig| chaos_for_spawner.wrap(spawner(engine)),
        );
        // Remote node backends may be long-lived server processes with
        // counters from earlier runs; zero them so this run's report covers
        // exactly this trace (no-op for fresh in-process engines; topology
        // counters survive by design).
        cluster.reset_stats();
        let mut ledger = Ledger::default();
        let mut latency = LatencyBreakdown::default();
        let mut quality = QualityUnderLoad::default();
        let mut digest = Fnv::new();
        let mut requests = 0u64;
        let mut sessions_opened = 0u64;
        let mut open_keys: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        let closed_loop = self.config.mode == DriveMode::ClosedLoop;

        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
        let mut started = Instant::now();
        let mut warming = self.config.warmup_ticks > 0;
        for event in &trace.events {
            match event {
                TraceEvent::Tick(tick) => {
                    chaos.advance_to(*tick);
                    if !closed_loop {
                        // Kill-during-flush: when the chaos plan arms it and
                        // this tick kills, the victim's tick flush is
                        // skipped — it dies holding this tick's pending
                        // events, which recovery must then replay from
                        // shadow intent exactly once (a replica shipped at
                        // an earlier flush is stale by now and must not
                        // promote).
                        let spare = if self.config.chaos.kill_mid_flush
                            && cluster.node_count() > 1
                            && self
                                .config
                                .plan
                                .actions_at(*tick)
                                .any(|action| action == NodeAction::KillBusiest)
                        {
                            cluster
                                .node_sessions()
                                .into_iter()
                                .max_by_key(|&(node, sessions)| {
                                    (sessions, std::cmp::Reverse(node.0))
                                })
                                .map(|(node, _)| node)
                        } else {
                            None
                        };
                        for node in cluster.node_ids() {
                            if Some(node) == spare {
                                continue;
                            }
                            // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                            let t0 = Instant::now();
                            cluster.flush_node(node).expect("alive node flushes");
                            let dt = t0.elapsed();
                            ledger.charge(node, dt.as_secs_f64());
                            latency.flush.record(dt);
                        }
                    }
                    self.run_plan_at(*tick, &mut cluster, &mut ledger);
                    if warming && *tick >= self.config.warmup_ticks {
                        warming = false;
                        cluster.reset_stats();
                        ledger.reset_measured();
                        latency = LatencyBreakdown::default();
                        quality = QualityUnderLoad::default();
                        requests = 0;
                        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                        started = Instant::now();
                    }
                }
                TraceEvent::Open {
                    key,
                    template,
                    seed,
                    present,
                } => {
                    // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                    let t0 = Instant::now();
                    let (node, view) = cluster
                        .open_session(
                            *key,
                            CreateSession {
                                instance: instances[*template].clone(),
                                initial_present: present.clone(),
                                seed: *seed,
                            },
                        )
                        .expect("trace opens a valid session");
                    let dt = t0.elapsed();
                    ledger.charge(node, dt.as_secs_f64());
                    latency.create.record(dt);
                    requests += 1;
                    sessions_opened += 1;
                    open_keys.insert(*key);
                    assert!(
                        view.present.is_empty() || view.configuration.is_valid(view.catalog.len()),
                        "cluster served an invalid initial configuration"
                    );
                }
                TraceEvent::Join { key, user } | TraceEvent::Leave { key, user } => {
                    let membership = match event {
                        TraceEvent::Join { .. } => DynamicEvent::Join(*user),
                        _ => DynamicEvent::Leave(*user),
                    };
                    self.submit(
                        &mut cluster,
                        *key,
                        SessionEvent::Membership(membership),
                        &mut ledger,
                        &mut latency,
                        &mut requests,
                    );
                }
                TraceEvent::Catalog { key, items } => {
                    self.submit(
                        &mut cluster,
                        *key,
                        SessionEvent::SetCatalog(items.clone()),
                        &mut ledger,
                        &mut latency,
                        &mut requests,
                    );
                }
                TraceEvent::Lambda { key, value } => {
                    self.submit(
                        &mut cluster,
                        *key,
                        SessionEvent::RetuneLambda(*value),
                        &mut ledger,
                        &mut latency,
                        &mut requests,
                    );
                }
                TraceEvent::Query { key } => {
                    // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                    let t0 = Instant::now();
                    let (node, view) = cluster.query_configuration(*key).expect("live session");
                    let dt = t0.elapsed();
                    ledger.charge(node, dt.as_secs_f64());
                    latency.query.record(dt);
                    requests += 1;
                    self.observe(*key, &view, &mut digest, &mut quality);
                }
                TraceEvent::Close { key } => {
                    // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
                    let t0 = Instant::now();
                    let (node, _) = cluster.close_session(*key).expect("close succeeds");
                    let dt = t0.elapsed();
                    ledger.charge(node, dt.as_secs_f64());
                    latency.close.record(dt);
                    requests += 1;
                    open_keys.remove(key);
                }
            }
        }

        // Final sweep: flush leftovers and digest every still-open session,
        // mirroring the single-engine driver so digests are comparable.
        for node in cluster.node_ids() {
            // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
            let t0 = Instant::now();
            cluster.flush_node(node).expect("alive node flushes");
            ledger.charge(node, t0.elapsed().as_secs_f64());
        }
        for key in open_keys {
            // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
            let t0 = Instant::now();
            let (node, view) = cluster.query_configuration(key).expect("live session");
            self.observe(key, &view, &mut digest, &mut quality);
            cluster.close_session(key).expect("close succeeds");
            ledger.charge(node, t0.elapsed().as_secs_f64());
            requests += 2;
        }
        let wall_seconds = started.elapsed().as_secs_f64();

        // Fold the fleet's final state into the outcome. Alive nodes report
        // their final counters; killed nodes their last tick-boundary
        // snapshot from the ledger.
        let snapshot = cluster.snapshot();
        let mut per_node: Vec<NodeOutcome> = snapshot
            .nodes
            .iter()
            .map(|node| NodeOutcome {
                node: node.node,
                alive: true,
                busy_seconds: ledger.busy.get(&node.node.0).copied().unwrap_or(0.0),
                sessions: node.sessions,
                engine: node.engine.clone(),
                telemetry: node.telemetry.clone(),
            })
            .collect();
        for &dead in &ledger.dead {
            per_node.push(NodeOutcome {
                node: NodeId(dead),
                alive: false,
                busy_seconds: ledger.busy.get(&dead).copied().unwrap_or(0.0),
                sessions: 0,
                engine: ledger
                    .last_seen
                    .get(&dead)
                    .cloned()
                    .unwrap_or_else(|| svgic_engine::EngineStats::default().snapshot()),
                telemetry: Vec::new(),
            });
        }
        per_node.sort_by_key(|n| n.node.0);

        ClusterLoadOutcome {
            mode: self.config.mode,
            nodes_initial: self.config.nodes.max(1),
            wall_seconds,
            fabric_seconds: ledger.fabric,
            requests,
            trace_events: trace.events.len(),
            sessions: sessions_opened,
            latency,
            quality,
            config_digest: digest.finish(),
            per_node,
            merged: snapshot.merged,
            cluster: snapshot.stats,
            chaos_injected_failures: chaos.injected().failures,
            chaos_injected_delays: chaos.injected().delays,
        }
    }

    /// Executes the plan's fabric events scheduled at `tick`.
    fn run_plan_at<B: EngineTransport>(
        &self,
        tick: usize,
        cluster: &mut Cluster<B>,
        ledger: &mut Ledger,
    ) {
        for action in self.config.plan.actions_at(tick) {
            // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
            let t0 = Instant::now();
            match action {
                NodeAction::KillBusiest => {
                    if cluster.node_count() > 1 {
                        let victim = cluster
                            .node_sessions()
                            .into_iter()
                            .max_by_key(|&(node, sessions)| (sessions, std::cmp::Reverse(node.0)))
                            .map(|(node, _)| node)
                            .expect("at least one node");
                        // Preserve the victim's counters before they die.
                        if let Ok(stats) = cluster.node_stats(victim) {
                            ledger.last_seen.insert(victim.0, stats);
                        }
                        cluster.kill_node(victim).expect("not the last node");
                        ledger.dead.push(victim.0);
                    }
                }
                NodeAction::Join => {
                    cluster.add_node();
                }
                NodeAction::MigrateLowest => {
                    if cluster.node_count() > 1 {
                        if let Some(&key) = cluster.session_keys().first() {
                            let current = cluster.placement_of(key).expect("live session");
                            let ids = cluster.node_ids();
                            let position =
                                ids.iter().position(|&n| n == current).expect("alive node");
                            let to = ids[(position + 1) % ids.len()];
                            cluster
                                .migrate_session(key, to)
                                .expect("live session moves");
                        }
                    }
                }
                NodeAction::Rebalance(kind) => {
                    match kind {
                        PolicyKind::Ring => cluster.rebalance(&RingPolicy),
                        PolicyKind::QueueDepth => {
                            cluster.rebalance(&QueueDepthPolicy { tolerance: 1 })
                        }
                    };
                }
            }
            ledger.fabric += t0.elapsed().as_secs_f64();
        }
    }

    fn submit<B: EngineTransport>(
        &self,
        cluster: &mut Cluster<B>,
        key: u64,
        event: SessionEvent,
        ledger: &mut Ledger,
        latency: &mut LatencyBreakdown,
        requests: &mut u64,
    ) {
        // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
        let t0 = Instant::now();
        let (node, _) = cluster
            .submit_event(key, event)
            .expect("trace event is valid");
        let dt = t0.elapsed();
        ledger.charge(node, dt.as_secs_f64());
        latency.submit.record(dt);
        *requests += 1;
        if self.config.mode == DriveMode::ClosedLoop {
            // lint: allow(wall-clock, client-side latency sample for the load report; responses are digested independently of timing)
            let t0 = Instant::now();
            cluster.flush_node(node).expect("alive node flushes");
            let dt = t0.elapsed();
            ledger.charge(node, dt.as_secs_f64());
            latency.flush.record(dt);
        }
    }

    fn observe(
        &self,
        key: u64,
        view: &svgic_engine::ConfigurationView,
        digest: &mut Fnv,
        quality: &mut QualityUnderLoad,
    ) {
        digest_view(digest, key, view);
        if !view.present.is_empty() {
            assert!(
                view.configuration.is_valid(view.catalog.len()),
                "cluster served an invalid configuration under load"
            );
            quality.samples += 1;
            quality.utility_sum += view.utility;
            quality.bound_sum += view.lp_bound;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, LoadDriver};
    use crate::scenario::Scenario;
    use crate::synth::generate;

    fn engine_config() -> EngineConfig {
        EngineConfig {
            workers: 2,
            shards: 2,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        }
    }

    fn smoke_trace() -> Trace {
        let mut scenario = Scenario::steady_mall().smoke();
        scenario.ticks = 4;
        generate(&scenario, 17)
    }

    fn cluster_outcome(nodes: usize, plan: NodePlan) -> ClusterLoadOutcome {
        ClusterDriver::new(ClusterDriverConfig {
            nodes,
            engine: engine_config(),
            plan,
            ..ClusterDriverConfig::default()
        })
        .run(&smoke_trace())
    }

    #[test]
    fn one_node_cluster_matches_the_single_engine_driver() {
        let trace = smoke_trace();
        let single = LoadDriver::new(DriverConfig {
            engine: engine_config(),
            ..DriverConfig::default()
        })
        .run(&trace);
        let clustered = cluster_outcome(1, NodePlan::none());
        assert_eq!(
            clustered.config_digest, single.config_digest,
            "a 1-node cluster must serve byte-identically to a bare engine"
        );
        assert_eq!(clustered.requests, single.requests);
        assert_eq!(clustered.sessions, single.sessions);
    }

    #[test]
    fn digest_is_topology_invariant_with_migrations() {
        let one = cluster_outcome(1, NodePlan::none());
        let four = cluster_outcome(4, NodePlan::mid_run_rebalance(4));
        assert_eq!(one.config_digest, four.config_digest);
        assert_eq!(one.requests, four.requests);
        assert!(
            four.cluster.migrations > 0,
            "the mid-run rebalance must actually move sessions"
        );
        assert_eq!(
            four.cluster.warm_capital_preserved, four.cluster.migrations,
            "every solved session migrates warm"
        );
        assert!(four.per_node.len() == 4);
        assert!(four.per_node.iter().all(|n| n.alive));
        // Every alive node sampled its ring at each tick flush: non-empty,
        // ticks strictly monotone, and the mem gauges track live state.
        for node in &four.per_node {
            assert!(!node.telemetry.is_empty(), "node {:?}", node.node);
            assert!(node.telemetry.windows(2).all(|w| w[0].tick < w[1].tick));
            assert_eq!(node.health(), Health::Ok);
        }
        assert!(
            four.per_node
                .iter()
                .any(|n| n.telemetry.iter().any(|s| s.mem_session_bytes > 0)),
            "some node held live sessions when a tick sampled"
        );
        // The fleet view sums the per-node engines.
        let created: u64 = four
            .per_node
            .iter()
            .map(|n| n.engine.sessions_created)
            .sum();
        assert_eq!(four.merged.sessions_created, created);
    }

    #[test]
    fn closed_loop_is_also_topology_invariant() {
        let trace = smoke_trace();
        let run = |nodes: usize| {
            ClusterDriver::new(ClusterDriverConfig {
                nodes,
                mode: DriveMode::ClosedLoop,
                engine: engine_config(),
                plan: NodePlan::none(),
                ..ClusterDriverConfig::default()
            })
            .run(&trace)
        };
        assert_eq!(run(1).config_digest, run(3).config_digest);
    }

    #[test]
    fn node_churn_plan_is_deterministic_and_recovers() {
        let mut scenario = Scenario::node_churn().smoke();
        scenario.ticks = 6;
        let trace = generate(&scenario, 23);
        let run = || {
            ClusterDriver::new(ClusterDriverConfig {
                nodes: 3,
                engine: engine_config(),
                plan: NodePlan::for_trace(&trace, 3),
                ..ClusterDriverConfig::default()
            })
            .run(&trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.config_digest, b.config_digest, "churn must be replayable");
        assert_eq!(a.cluster, b.cluster);
        assert_eq!(a.cluster.nodes_killed, 1);
        assert!(a.cluster.sessions_recovered > 0, "{:?}", a.cluster);
        assert!(a.cluster.warm_capital_lost > 0);
        assert!(a.cluster.migrations > 0, "rebalances must move sessions");
        assert_eq!(a.cluster.nodes_added, 3 + 1, "initial fleet + one join");
        // The dead node keeps its ledger entry.
        assert_eq!(a.per_node.len(), 4);
        assert_eq!(a.per_node.iter().filter(|n| !n.alive).count(), 1);
        let dead = a.per_node.iter().find(|n| !n.alive).unwrap();
        assert!(dead.engine.sessions_created > 0, "killed node had served");
    }

    #[test]
    fn chaos_and_replication_are_digest_neutral() {
        let baseline = cluster_outcome(3, NodePlan::mid_run_rebalance(4));
        let chaotic = ClusterDriver::new(ClusterDriverConfig {
            nodes: 3,
            engine: engine_config(),
            plan: NodePlan::mid_run_rebalance(4),
            replicate: true,
            chaos: ChaosPlan::generate(42, 3, 4),
            ..ClusterDriverConfig::default()
        })
        .run(&smoke_trace());
        assert_eq!(
            baseline.config_digest, chaotic.config_digest,
            "faults delay requests, never change what is served"
        );
        assert_eq!(baseline.requests, chaotic.requests);
        assert!(
            chaotic.chaos_injected_failures > 0 || chaotic.chaos_injected_delays > 0,
            "the generated plan must actually inject"
        );
        assert!(chaotic.cluster.replication_bytes > 0);
        assert_eq!(baseline.chaos_injected_failures, 0);
    }

    #[test]
    fn replicated_churn_fails_over_warm_and_kill_mid_flush_stays_conserving() {
        let mut scenario = Scenario::node_churn().smoke();
        scenario.ticks = 6;
        let trace = generate(&scenario, 23);
        let run = |kill_mid_flush: bool| {
            ClusterDriver::new(ClusterDriverConfig {
                nodes: 3,
                engine: engine_config(),
                plan: NodePlan::for_trace(&trace, 3),
                replicate: true,
                chaos: ChaosPlan {
                    seed: 0,
                    faults: Vec::new(),
                    kill_mid_flush,
                },
                ..ClusterDriverConfig::default()
            })
            .run(&trace)
        };
        // Clean kill at the tick boundary: every lost session was flushed
        // and replicated this very tick, so the failover is fully warm.
        let clean = run(false);
        assert_eq!(clean.cluster.nodes_killed, 1);
        assert_eq!(
            clean.cluster.warm_capital_lost, 0,
            "replication must make the boundary kill warm: {:?}",
            clean.cluster
        );
        assert!(clean.cluster.standby_promotions > 0);
        assert_eq!(clean.cluster.failover_warm, 1);
        assert_eq!(
            clean.cluster.failover_warm + clean.cluster.failover_cold,
            clean.cluster.nodes_killed
        );
        // Kill-during-flush: the victim dies holding its tick's pending
        // events. Sessions mutated that tick rebuild cold (their replicas
        // are one generation stale — the promotion gate must hold them
        // back); nothing is lost either way, and the run replays.
        let dirty = run(true);
        assert_eq!(dirty.cluster.nodes_killed, 1);
        assert_eq!(dirty.sessions, clean.sessions);
        assert_eq!(
            dirty.cluster.failover_warm + dirty.cluster.failover_cold,
            dirty.cluster.nodes_killed
        );
        let replay = run(true);
        assert_eq!(dirty.config_digest, replay.config_digest);
        assert_eq!(dirty.cluster, replay.cluster);
    }

    #[test]
    fn warmup_excludes_counters_but_not_the_digest() {
        let trace = smoke_trace();
        let run = |warmup: usize| {
            ClusterDriver::new(ClusterDriverConfig {
                nodes: 2,
                warmup_ticks: warmup,
                engine: engine_config(),
                plan: NodePlan::none(),
                ..ClusterDriverConfig::default()
            })
            .run(&trace)
        };
        let full = run(0);
        let warmed = run(2);
        assert_eq!(full.config_digest, warmed.config_digest);
        assert!(warmed.requests < full.requests);
        assert!(warmed.merged.requests < full.merged.requests);
    }

    #[test]
    fn throughput_projection_uses_the_busiest_node() {
        let outcome = cluster_outcome(2, NodePlan::none());
        assert!(outcome.throughput_rps() > 0.0);
        assert!(outcome.aggregate_throughput_rps() > 0.0);
        let busiest = outcome
            .per_node
            .iter()
            .map(|n| n.busy_seconds)
            .fold(0.0, f64::max);
        assert!(busiest > 0.0);
        assert!(outcome.makespan_seconds() >= busiest);
        // The makespan can only be shorter than the serial wall time.
        assert!(outcome.makespan_seconds() <= outcome.wall_seconds * 1.5);
    }
}
