//! Machine-readable JSON load reports.
//!
//! [`LoadReport`] is what `loadgen` emits and what the `BENCH_*.json` perf
//! trajectory consumes: scenario provenance, throughput, per-class latency
//! quantiles, served-configuration quality, the full engine
//! [`StatsSnapshot`](svgic_engine::StatsSnapshot) (via its `metrics()` list
//! — nothing is re-derived here),
//! and the configuration digest that ties the numbers to a replayable trace.
//!
//! The workspace has no serde (offline build), so the writer is a ~60-line
//! hand-rolled JSON emitter; output is deterministic modulo the wall-clock
//! fields.

use std::time::Duration;

use svgic_engine::TelemetrySample;

use crate::cluster_driver::ClusterLoadOutcome;
use crate::driver::{LoadOutcome, QualityUnderLoad};
use crate::histogram::LatencyHistogram;
use crate::trace::Trace;

/// Schema tag embedded in every single-engine report.
pub const REPORT_SCHEMA: &str = "svgic-loadgen-report/v1";

/// Schema tag embedded in every cluster report (`loadgen --nodes N`).
pub const CLUSTER_REPORT_SCHEMA: &str = "svgic-cluster-report/v1";

/// A complete load-test report, ready to serialize.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Scenario name (from the trace header).
    pub scenario: String,
    /// Scenario seed (from the trace header).
    pub seed: u64,
    /// Ticks the trace spans.
    pub ticks: usize,
    /// Path the trace was recorded to, when it was.
    pub trace_path: Option<String>,
    /// Sessions the trace opens.
    pub trace_sessions: usize,
    /// The measured outcome.
    pub outcome: LoadOutcome,
}

impl LoadReport {
    /// Assembles a report from a trace and its driver outcome (the worker
    /// count comes from the outcome — the engine resolved it).
    pub fn new(trace: &Trace, outcome: LoadOutcome) -> Self {
        LoadReport {
            scenario: trace.scenario.clone(),
            seed: trace.seed,
            ticks: trace.ticks,
            trace_path: None,
            trace_sessions: trace.session_count(),
            outcome,
        }
    }

    /// Serializes the report as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open();
        w.string("schema", REPORT_SCHEMA);
        w.string("scenario", &self.scenario);
        w.integer("seed", self.seed);
        w.integer("ticks", self.ticks as u64);
        w.string("mode", self.outcome.mode.label());
        w.integer("workers", self.outcome.workers as u64);
        match &self.trace_path {
            Some(path) => w.string("trace_path", path),
            None => w.raw("trace_path", "null"),
        }
        w.integer("trace_events", self.outcome.trace_events as u64);
        w.integer("sessions", self.outcome.sessions);
        w.integer("trace_sessions", self.trace_sessions as u64);
        w.integer("requests", self.outcome.requests);
        w.number("wall_seconds", self.outcome.wall_seconds);
        w.number("throughput_rps", self.outcome.throughput_rps());

        w.nested("latency_us", |w| {
            let classes: [(&str, &LatencyHistogram); 5] = [
                ("create", &self.outcome.latency.create),
                ("submit", &self.outcome.latency.submit),
                ("query", &self.outcome.latency.query),
                ("flush", &self.outcome.latency.flush),
                ("close", &self.outcome.latency.close),
            ];
            for (name, histogram) in classes {
                w.nested(name, |w| write_histogram(w, histogram));
            }
            let all = self.outcome.latency.all();
            w.nested("all", |w| write_histogram(w, &all));
        });

        w.nested("quality", |w| write_quality(w, &self.outcome.quality));

        w.nested("engine", |w| {
            for (name, value) in self.outcome.engine.metrics() {
                w.number(&name, value);
            }
        });

        write_time_series(&mut w, &self.outcome.telemetry);

        write_profile(
            &mut w,
            &self.outcome.engine.profile,
            self.outcome.engine.profile_dropped,
        );

        w.string(
            "config_digest",
            &format!("0x{:016x}", self.outcome.config_digest),
        );
        w.close();
        w.finish()
    }
}

/// A cluster run's complete report (`loadgen --nodes N`): fleet-wide
/// throughput (wall *and* the scale-out projection over the busiest node),
/// merged latency histograms, the fabric counters (migrations, warm capital,
/// recoveries, node churn), the merged engine metrics, and one nested object
/// per node — dead nodes included, with their last-observed counters.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Scenario name (from the trace header).
    pub scenario: String,
    /// Scenario seed (from the trace header).
    pub seed: u64,
    /// Ticks the trace spans.
    pub ticks: usize,
    /// Path the trace was recorded to, when it was.
    pub trace_path: Option<String>,
    /// The measured outcome.
    pub outcome: ClusterLoadOutcome,
}

impl ClusterReport {
    /// Assembles a report from a trace and its cluster-driver outcome.
    pub fn new(trace: &Trace, outcome: ClusterLoadOutcome) -> Self {
        ClusterReport {
            scenario: trace.scenario.clone(),
            seed: trace.seed,
            ticks: trace.ticks,
            trace_path: None,
            outcome,
        }
    }

    /// Serializes the report as a pretty-printed JSON object.
    pub fn to_json(&self) -> String {
        let o = &self.outcome;
        let mut w = JsonWriter::new();
        w.open();
        w.string("schema", CLUSTER_REPORT_SCHEMA);
        w.string("scenario", &self.scenario);
        w.integer("seed", self.seed);
        w.integer("ticks", self.ticks as u64);
        w.string("mode", o.mode.label());
        w.integer("nodes", o.nodes_initial as u64);
        match &self.trace_path {
            Some(path) => w.string("trace_path", path),
            None => w.raw("trace_path", "null"),
        }
        w.integer("trace_events", o.trace_events as u64);
        w.integer("sessions", o.sessions);
        w.integer("requests", o.requests);
        w.number("wall_seconds", o.wall_seconds);
        w.number("fabric_seconds", o.fabric_seconds);
        w.number("makespan_seconds", o.makespan_seconds());
        w.number("throughput_rps", o.throughput_rps());
        w.number("aggregate_throughput_rps", o.aggregate_throughput_rps());

        w.nested("latency_us", |w| {
            let classes: [(&str, &LatencyHistogram); 5] = [
                ("create", &o.latency.create),
                ("submit", &o.latency.submit),
                ("query", &o.latency.query),
                ("flush", &o.latency.flush),
                ("close", &o.latency.close),
            ];
            for (name, histogram) in classes {
                w.nested(name, |w| write_histogram(w, histogram));
            }
            let all = o.latency.all();
            w.nested("all", |w| write_histogram(w, &all));
        });

        w.nested("quality", |w| write_quality(w, &o.quality));

        w.nested("cluster", |w| {
            w.integer("nodes_added", o.cluster.nodes_added);
            w.integer("nodes_killed", o.cluster.nodes_killed);
            w.integer("migrations", o.cluster.migrations);
            w.integer("warm_capital_preserved", o.cluster.warm_capital_preserved);
            w.integer("warm_capital_lost", o.cluster.warm_capital_lost);
            w.integer("sessions_recovered", o.cluster.sessions_recovered);
            w.integer("rebalances", o.cluster.rebalances);
            w.integer("spill_placements", o.cluster.spill_placements);
            w.integer("replication_bytes", o.cluster.replication_bytes);
            w.integer("standby_promotions", o.cluster.standby_promotions);
            w.integer("failover_warm", o.cluster.failover_warm);
            w.integer("failover_cold", o.cluster.failover_cold);
            w.integer("chaos_injected_failures", o.chaos_injected_failures);
            w.integer("chaos_injected_delays", o.chaos_injected_delays);
        });

        w.nested("engine", |w| {
            for (name, value) in o.merged.metrics() {
                w.number(&name, value);
            }
        });

        w.nested("per_node", |w| {
            for node in &o.per_node {
                w.nested(&format!("node{}", node.node.0), |w| {
                    w.raw("alive", if node.alive { "true" } else { "false" });
                    w.integer("sessions", node.sessions);
                    w.number("busy_seconds", node.busy_seconds);
                    w.integer("solves", node.engine.solves());
                    w.number("warm_start_rate", node.engine.warm_start_rate());
                    w.integer("queue_depth", node.engine.total_queue_depth());
                    // Per-node phase breakdown, from the phase histograms
                    // that ride in each node's stats snapshot: where this
                    // node spent its solve time, and how evenly its shards
                    // shared the load.
                    w.number("mean_lp_seconds", node.engine.mean_lp_time().as_secs_f64());
                    w.number(
                        "p99_lp_seconds",
                        node.engine.lp_latency.quantile_seconds(0.99),
                    );
                    w.number(
                        "mean_warm_solve_seconds",
                        node.engine.mean_warm_solve_time().as_secs_f64(),
                    );
                    w.number(
                        "mean_cold_solve_seconds",
                        node.engine.mean_cold_solve_time().as_secs_f64(),
                    );
                    w.number("shard_imbalance", node.engine.shard_imbalance());
                    // Resource + SLO posture: the health label, the
                    // accounted bytes, and the node's own tick series.
                    w.string("health", node.health().name());
                    w.integer("mem_bytes", node.mem_bytes());
                    write_time_series(w, &node.telemetry);
                });
            }
        });

        write_profile(&mut w, &o.merged.profile, o.merged.profile_dropped);

        w.string("config_digest", &format!("0x{:016x}", o.config_digest));
        w.close();
        w.finish()
    }
}

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn write_histogram(w: &mut JsonWriter, h: &LatencyHistogram) {
    w.integer("count", h.count());
    w.number("mean", micros(h.mean()));
    w.number("p50", micros(h.quantile(0.50)));
    w.number("p95", micros(h.quantile(0.95)));
    w.number("p99", micros(h.quantile(0.99)));
    w.number("max", micros(h.max()));
}

fn write_quality(w: &mut JsonWriter, q: &QualityUnderLoad) {
    w.integer("samples", q.samples);
    w.number("mean_utility", q.mean_utility());
    w.number("bound_ratio", q.bound_ratio());
}

/// Emits a telemetry ring as the `time_series` array: one all-integer object
/// per tick sample, oldest first, field-for-field the
/// [`TelemetrySample`] wire record (see `docs/FORMATS.md`).
fn write_time_series(w: &mut JsonWriter, samples: &[TelemetrySample]) {
    w.array("time_series", |w| {
        for s in samples {
            w.item(|w| {
                w.integer("tick", s.tick);
                w.integer("requests", s.requests);
                w.integer("solves", s.solves);
                w.integer("queue_depth", s.queue_depth);
                w.integer("warm_rate_ppm", s.warm_rate_ppm);
                w.integer("imbalance_ppm", s.imbalance_ppm);
                w.integer("mem_session_bytes", s.mem_session_bytes);
                w.integer("mem_pending_bytes", s.mem_pending_bytes);
                w.integer("mem_served_bytes", s.mem_served_bytes);
                w.integer("mem_cache_bytes", s.mem_cache_bytes);
                w.integer("mem_total_bytes", s.mem_total_bytes);
            });
        }
    });
}

/// Emits the per-template solve ledger as the `profile` section: one
/// all-integer object per template (ascending by fingerprint, exactly the
/// wire order), plus the count of solves the ledger could not attribute.
/// Counts are deterministic under a fixed seed; the `*_nanos` fields are
/// wall-clock (see `docs/FORMATS.md`).
fn write_profile(w: &mut JsonWriter, entries: &[svgic_engine::ProfileEntry], dropped: u64) {
    w.nested("profile", |w| {
        w.integer("dropped", dropped);
        w.array("templates", |w| {
            for e in entries {
                w.item(|w| {
                    w.string(
                        "template_fingerprint",
                        &format!("0x{:016x}", e.template_fingerprint),
                    );
                    w.integer("warm_solves", e.warm_solves);
                    w.integer("cold_solves", e.cold_solves);
                    w.integer("warm_nanos", e.warm_nanos);
                    w.integer("cold_nanos", e.cold_nanos);
                    w.integer("miss_new", e.miss_new);
                    w.integer("miss_evicted", e.miss_evicted);
                    w.integer("miss_component_changed", e.miss_component_changed);
                });
            }
        });
    });
}

/// Minimal pretty-printing JSON object writer (objects and scalar fields —
/// all the report needs).
struct JsonWriter {
    out: String,
    indent: usize,
    /// Whether the current object already has a field (comma management).
    has_field: Vec<bool>,
}

impl JsonWriter {
    fn new() -> Self {
        JsonWriter {
            out: String::new(),
            indent: 0,
            has_field: Vec::new(),
        }
    }

    fn open(&mut self) {
        self.out.push('{');
        self.indent += 1;
        self.has_field.push(false);
    }

    fn close(&mut self) {
        self.indent -= 1;
        self.has_field.pop();
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('}');
    }

    fn key(&mut self, name: &str) {
        let first = !std::mem::replace(self.has_field.last_mut().expect("inside an object"), true);
        if !first {
            self.out.push(',');
        }
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.out.push('"');
        self.out.push_str(&escape(name));
        self.out.push_str("\": ");
    }

    fn string(&mut self, name: &str, value: &str) {
        self.key(name);
        self.out.push('"');
        self.out.push_str(&escape(value));
        self.out.push('"');
    }

    fn raw(&mut self, name: &str, literal: &str) {
        self.key(name);
        self.out.push_str(literal);
    }

    fn number(&mut self, name: &str, value: f64) {
        self.key(name);
        if value.is_finite() {
            self.out.push_str(&format!("{value}"));
        } else {
            // JSON has no NaN/Inf.
            self.out.push_str("null");
        }
    }

    /// Integer fields (seeds, counts) are emitted as integer literals, not
    /// routed through `f64` — a `u64` seed above 2^53 must survive verbatim.
    fn integer(&mut self, name: &str, value: u64) {
        self.key(name);
        self.out.push_str(&value.to_string());
    }

    fn nested(&mut self, name: &str, body: impl FnOnce(&mut JsonWriter)) {
        self.key(name);
        self.open();
        body(self);
        self.close();
    }

    /// A named array field; `body` appends elements via [`JsonWriter::item`].
    fn array(&mut self, name: &str, body: impl FnOnce(&mut JsonWriter)) {
        self.key(name);
        self.out.push('[');
        self.indent += 1;
        self.has_field.push(false);
        body(self);
        self.indent -= 1;
        let had_items = self.has_field.pop().expect("inside an array");
        if had_items {
            self.out.push('\n');
            self.out.push_str(&"  ".repeat(self.indent));
        }
        self.out.push(']');
    }

    /// One object element of the enclosing [`JsonWriter::array`].
    fn item(&mut self, body: impl FnOnce(&mut JsonWriter)) {
        let first = !std::mem::replace(self.has_field.last_mut().expect("inside an array"), true);
        if !first {
            self.out.push(',');
        }
        self.out.push('\n');
        self.out.push_str(&"  ".repeat(self.indent));
        self.open();
        body(self);
        self.close();
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{DriverConfig, LoadDriver};
    use crate::scenario::Scenario;
    use crate::synth::generate;

    fn sample_report() -> LoadReport {
        let mut scenario = Scenario::steady_mall().smoke();
        scenario.ticks = 2;
        let trace = generate(&scenario, 3);
        let outcome = LoadDriver::new(DriverConfig::default()).run(&trace);
        LoadReport::new(&trace, outcome)
    }

    #[test]
    fn u64_seed_survives_serialization_verbatim() {
        let mut report = sample_report();
        report.seed = (1u64 << 53) + 1; // not representable as f64
        let json = report.to_json();
        assert!(
            json.contains(&format!("\"seed\": {}", (1u64 << 53) + 1)),
            "seed must be emitted as an exact integer literal:\n{json}"
        );
    }

    #[test]
    fn report_contains_required_fields() {
        let report = sample_report();
        let json = report.to_json();
        for needle in [
            "\"schema\": \"svgic-loadgen-report/v1\"",
            "\"scenario\": \"steady-mall\"",
            "\"throughput_rps\":",
            "\"p50\":",
            "\"p95\":",
            "\"p99\":",
            "\"cache_hit_rate\":",
            "\"coalesce_rate\":",
            "\"mem_session_bytes\":",
            "\"mem_total_bytes\":",
            "\"slo_lp_burn\":",
            "\"health\":",
            "\"time_series\": [",
            "\"warm_rate_ppm\":",
            "\"profile\": {",
            "\"templates\": [",
            "\"template_fingerprint\": \"0x",
            "\"miss_new\":",
            "\"miss_evicted\":",
            "\"miss_component_changed\":",
            "\"dropped\": 0",
            "\"config_digest\": \"0x",
            "\"trace_path\": null",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // The driver flushes once per tick, so the series is populated.
        assert!(
            json.contains("\"tick\": 0"),
            "time_series must carry tick samples:\n{json}"
        );
    }

    #[test]
    fn report_json_is_structurally_balanced() {
        let json = sample_report().to_json();
        // No serde to parse with, so check structural invariants: balanced
        // braces/brackets, balanced quotes, no trailing commas.
        let braces: i64 = json
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
        let brackets: i64 = json
            .chars()
            .map(|c| match c {
                '[' => 1,
                ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(brackets, 0);
        assert_eq!(json.matches('"').count() % 2, 0);
        assert!(!json.contains(",\n}"));
        assert!(!json.contains(",}"));
        assert!(!json.contains(",\n]"));
        assert!(!json.contains(",]"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn empty_time_series_renders_as_an_empty_array() {
        let mut report = sample_report();
        report.outcome.telemetry.clear();
        let json = report.to_json();
        assert!(
            json.contains("\"time_series\": []"),
            "capacity-0 engines report an empty array, not a missing key:\n{json}"
        );
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn cluster_report_contains_fleet_fields_and_balances() {
        use crate::cluster_driver::{ClusterDriver, ClusterDriverConfig, NodePlan};
        let mut scenario = Scenario::steady_mall().smoke();
        scenario.ticks = 3;
        let trace = generate(&scenario, 5);
        let outcome = ClusterDriver::new(ClusterDriverConfig {
            nodes: 2,
            plan: NodePlan::mid_run_rebalance(3),
            ..ClusterDriverConfig::default()
        })
        .run(&trace);
        let json = ClusterReport::new(&trace, outcome).to_json();
        for needle in [
            "\"schema\": \"svgic-cluster-report/v1\"",
            "\"nodes\": 2",
            "\"aggregate_throughput_rps\":",
            "\"makespan_seconds\":",
            "\"migrations\":",
            "\"warm_capital_preserved\":",
            "\"node0\":",
            "\"node1\":",
            "\"busy_seconds\":",
            "\"mean_lp_seconds\":",
            "\"p99_lp_seconds\":",
            "\"shard_imbalance\":",
            "\"health\": \"ok\"",
            "\"mem_bytes\":",
            "\"time_series\": [",
            "\"mem_total_bytes\":",
            "\"profile\": {",
            "\"templates\": [",
            "\"config_digest\": \"0x",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Same structural invariants as the single-engine report.
        let braces: i64 = json
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0);
        assert!(!json.contains(",\n}"));
        assert!(json.ends_with("}\n"));
    }
}
