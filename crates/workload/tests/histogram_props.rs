//! Property tests for [`LatencyHistogram::merge`] — the primitive the
//! cluster driver leans on to aggregate per-node histograms into fleet-wide
//! latency quantiles.
//!
//! The contract: merging histograms is **exactly** equivalent to having
//! recorded every sample into one histogram. Counts and means are exact;
//! quantiles are bucket-identical (not merely close); the merge is
//! commutative and associative; and count/total bookkeeping stays
//! consistent through arbitrary merge trees.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic_workload::LatencyHistogram;

/// Deterministic heavy-tailed sample set: mixes nanosecond-scale cache hits
/// with millisecond-scale solves, like real driver traffic.
fn samples(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let magnitude = rng.gen_range(0u32..7); // 1ns .. 10ms scales
            let base = 10u64.pow(magnitude);
            rng.gen_range(0..base.saturating_mul(10).max(1))
        })
        .collect()
}

fn record_all(values: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &v in values {
        h.record(Duration::from_nanos(v));
    }
    h
}

const QUANTILES: [f64; 7] = [0.0, 0.1, 0.25, 0.5, 0.9, 0.99, 1.0];

fn assert_equivalent(a: &LatencyHistogram, b: &LatencyHistogram) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.count(), b.count());
    prop_assert_eq!(a.max(), b.max());
    prop_assert_eq!(a.mean(), b.mean());
    for q in QUANTILES {
        prop_assert_eq!(a.quantile(q), b.quantile(q));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merge_equals_recording_everything_in_one(
        seed in 0u64..1_000_000,
        len_a in 0usize..400,
        len_b in 0usize..400,
    ) {
        let a_values = samples(seed, len_a);
        let b_values = samples(seed ^ 0xDEAD_BEEF, len_b);
        let mut merged = record_all(&a_values);
        merged.merge(&record_all(&b_values));
        let mut union = a_values.clone();
        union.extend(&b_values);
        assert_equivalent(&merged, &record_all(&union))?;
        // Count/total consistency survives the merge.
        prop_assert_eq!(merged.count(), (len_a + len_b) as u64);
        prop_assert_eq!(merged.is_empty(), len_a + len_b == 0);
    }

    #[test]
    fn merge_is_commutative(seed in 0u64..1_000_000, len in 1usize..300) {
        let a_values = samples(seed, len);
        let b_values = samples(seed.wrapping_add(1), len / 2 + 1);
        let mut ab = record_all(&a_values);
        ab.merge(&record_all(&b_values));
        let mut ba = record_all(&b_values);
        ba.merge(&record_all(&a_values));
        assert_equivalent(&ab, &ba)?;
    }

    #[test]
    fn merge_is_associative(seed in 0u64..1_000_000, len in 1usize..200) {
        let a = samples(seed, len);
        let b = samples(seed ^ 0xA5A5, len);
        let c = samples(seed ^ 0x5A5A, len);
        // (a ∪ b) ∪ c
        let mut left = record_all(&a);
        left.merge(&record_all(&b));
        left.merge(&record_all(&c));
        // a ∪ (b ∪ c)
        let mut right_tail = record_all(&b);
        right_tail.merge(&record_all(&c));
        let mut right = record_all(&a);
        right.merge(&right_tail);
        assert_equivalent(&left, &right)?;
    }

    #[test]
    fn merging_empty_is_identity(seed in 0u64..1_000_000, len in 0usize..300) {
        let values = samples(seed, len);
        let reference = record_all(&values);
        let mut merged = record_all(&values);
        merged.merge(&LatencyHistogram::new());
        assert_equivalent(&merged, &reference)?;
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&reference);
        assert_equivalent(&from_empty, &reference)?;
    }

    #[test]
    fn many_way_merge_matches_fleet_aggregation(
        seed in 0u64..1_000_000,
        nodes in 2usize..8,
        per_node in 1usize..120,
    ) {
        // Shard one sample stream across N "nodes", then merge the per-node
        // histograms — exactly what the cluster driver does per class.
        let all = samples(seed, nodes * per_node);
        let mut merged = LatencyHistogram::new();
        for node in 0..nodes {
            let share: Vec<u64> = all
                .iter()
                .enumerate()
                .filter(|(i, _)| i % nodes == node)
                .map(|(_, &v)| v)
                .collect();
            merged.merge(&record_all(&share));
        }
        assert_equivalent(&merged, &record_all(&all))?;
    }
}
