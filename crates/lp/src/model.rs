//! A small LP/MILP modelling layer.
//!
//! The core crate builds the paper's IP model (constraints (1)–(10)) and its
//! LP relaxations (LP_SVGIC, LP_SIMP) on top of this layer; the [`crate::simplex`]
//! and [`crate::branch_bound`] modules consume it.

/// Identifier of a variable inside a [`LinearProgram`].
pub type VarId = usize;

/// Continuous or integer variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Continuous variable within its bounds.
    Continuous,
    /// Integer variable within its bounds (the SVGIC IP only needs binaries,
    /// i.e. integer variables with bounds `[0, 1]`).
    Integer,
}

/// Sense of a linear constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintSense {
    /// `Σ a_i x_i ≤ b`
    LessEq,
    /// `Σ a_i x_i ≥ b`
    GreaterEq,
    /// `Σ a_i x_i = b`
    Equal,
}

/// A sparse linear constraint.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Sparse coefficients `(variable, coefficient)`; duplicate variables are
    /// summed when the constraint is consumed by a solver.
    pub terms: Vec<(VarId, f64)>,
    /// Constraint sense.
    pub sense: ConstraintSense,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional human-readable name (useful for debugging model builders).
    pub name: Option<String>,
}

/// Description of a single variable.
#[derive(Clone, Debug)]
pub struct Variable {
    /// Objective coefficient (the objective is always *maximised*).
    pub objective: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound (may be `f64::INFINITY`).
    pub upper: f64,
    /// Continuous or integer.
    pub kind: VarKind,
    /// Optional name.
    pub name: Option<String>,
}

/// A linear (or mixed-integer) program with a maximisation objective.
#[derive(Clone, Debug, Default)]
pub struct LinearProgram {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable and returns its id.
    pub fn add_variable(
        &mut self,
        objective: f64,
        lower: f64,
        upper: f64,
        kind: VarKind,
        name: Option<String>,
    ) -> VarId {
        assert!(
            lower <= upper,
            "variable lower bound {lower} exceeds upper bound {upper}"
        );
        self.variables.push(Variable {
            objective,
            lower,
            upper,
            kind,
            name,
        });
        self.variables.len() - 1
    }

    /// Convenience: adds a continuous variable with bounds `[0, 1]`.
    pub fn add_unit_var(&mut self, objective: f64, name: Option<String>) -> VarId {
        self.add_variable(objective, 0.0, 1.0, VarKind::Continuous, name)
    }

    /// Convenience: adds a binary (integer, `[0, 1]`) variable.
    pub fn add_binary_var(&mut self, objective: f64, name: Option<String>) -> VarId {
        self.add_variable(objective, 0.0, 1.0, VarKind::Integer, name)
    }

    /// Adds a constraint.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        sense: ConstraintSense,
        rhs: f64,
        name: Option<String>,
    ) {
        for &(v, _) in &terms {
            assert!(
                v < self.variables.len(),
                "constraint references unknown variable {v}"
            );
        }
        self.constraints.push(Constraint {
            terms,
            sense,
            rhs,
            name,
        });
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable metadata.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id]
    }

    /// All variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Mutable access to a variable's bounds (used by branch & bound to fix
    /// branching variables).
    pub fn set_bounds(&mut self, id: VarId, lower: f64, upper: f64) {
        assert!(lower <= upper, "invalid bounds [{lower}, {upper}]");
        self.variables[id].lower = lower;
        self.variables[id].upper = upper;
    }

    /// Returns a copy of this program with every integer variable relaxed to a
    /// continuous one (the LP relaxation).
    pub fn relaxed(&self) -> LinearProgram {
        let mut lp = self.clone();
        for v in &mut lp.variables {
            v.kind = VarKind::Continuous;
        }
        lp
    }

    /// Ids of all integer variables.
    pub fn integer_variables(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Integer)
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates the objective for a full assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.variables.len());
        self.variables
            .iter()
            .zip(values)
            .map(|(v, &x)| v.objective * x)
            .sum()
    }

    /// Checks feasibility of an assignment within tolerance `tol`
    /// (bounds, constraints and integrality of integer variables).
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.variables.len() {
            return false;
        }
        for (v, &x) in self.variables.iter().zip(values) {
            if x < v.lower - tol || x > v.upper + tol {
                return false;
            }
            if v.kind == VarKind::Integer && (x - x.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(i, a)| a * values[i]).sum();
            let ok = match c.sense {
                ConstraintSense::LessEq => lhs <= c.rhs + tol,
                ConstraintSense::GreaterEq => lhs >= c.rhs - tol,
                ConstraintSense::Equal => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Solution of a linear program.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Value of each variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Objective value (maximisation).
    pub objective: f64,
}

impl Solution {
    /// Value of variable `id`.
    pub fn value(&self, id: VarId) -> f64 {
        self.values[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_lp() -> LinearProgram {
        // max x + 2y s.t. x + y <= 4, y <= 3, x,y in [0, 10]
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, 10.0, VarKind::Continuous, Some("x".into()));
        let y = lp.add_variable(2.0, 0.0, 10.0, VarKind::Continuous, Some("y".into()));
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::LessEq, 4.0, None);
        lp.add_constraint(vec![(y, 1.0)], ConstraintSense::LessEq, 3.0, None);
        lp
    }

    #[test]
    fn builder_bookkeeping() {
        let lp = toy_lp();
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.variable(1).objective, 2.0);
        assert!(lp.integer_variables().is_empty());
    }

    #[test]
    fn objective_and_feasibility() {
        let lp = toy_lp();
        assert_eq!(lp.objective_value(&[1.0, 3.0]), 7.0);
        assert!(lp.is_feasible(&[1.0, 3.0], 1e-9));
        assert!(!lp.is_feasible(&[2.0, 3.0], 1e-9)); // violates x + y <= 4
        assert!(!lp.is_feasible(&[-1.0, 0.0], 1e-9)); // violates lower bound
    }

    #[test]
    fn relaxation_clears_integrality() {
        let mut lp = toy_lp();
        let z = lp.add_binary_var(5.0, None);
        assert_eq!(lp.integer_variables(), vec![z]);
        assert!(!lp.is_feasible(&[0.0, 0.0, 0.5], 1e-9));
        let relaxed = lp.relaxed();
        assert!(relaxed.integer_variables().is_empty());
        assert!(relaxed.is_feasible(&[0.0, 0.0, 0.5], 1e-9));
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraint_with_unknown_variable_panics() {
        let mut lp = LinearProgram::new();
        lp.add_constraint(vec![(3, 1.0)], ConstraintSense::Equal, 1.0, None);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn invalid_bounds_panic() {
        let mut lp = LinearProgram::new();
        lp.add_variable(0.0, 2.0, 1.0, VarKind::Continuous, None);
    }
}
