//! Dense two-phase primal simplex.
//!
//! The solver works on the generic [`LinearProgram`] model: arbitrary variable
//! bounds, `≤` / `≥` / `=` constraints, maximisation objective.  Internally it
//! converts the program to standard form (shifted non-negative variables,
//! explicit upper-bound rows, slack / surplus / artificial columns) and runs a
//! textbook two-phase tableau simplex with a largest-reduced-cost pivot rule
//! and a Bland's-rule fallback to prevent cycling.
//!
//! The implementation targets correctness and predictability at the scale
//! where the paper itself uses exact LPs (small evaluation instances and the
//! root relaxations of the IP baseline); the large-scale relaxations are
//! handled by [`crate::structured`].

use crate::model::{ConstraintSense, LinearProgram, Solution};

/// Options controlling the simplex run.
#[derive(Clone, Debug)]
pub struct SimplexOptions {
    /// Maximum number of pivots across both phases.
    pub max_pivots: usize,
    /// Numerical tolerance for optimality / feasibility tests.
    pub tolerance: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        Self {
            max_pivots: 200_000,
            tolerance: 1e-8,
        }
    }
}

/// Errors reported by the simplex solver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimplexError {
    /// The constraint system has no feasible point.
    Infeasible,
    /// The objective is unbounded above on the feasible region.
    Unbounded,
    /// The pivot budget was exhausted before reaching optimality.
    IterationLimit,
    /// The model contains a variable with an infinite lower bound, which the
    /// standard-form conversion does not support.
    UnsupportedLowerBound,
    /// Every remaining improving pivot would land on a (near-)zero element;
    /// proceeding would corrupt the tableau, so the solve is aborted instead.
    Numerical,
}

impl std::fmt::Display for SimplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::IterationLimit => write!(f, "simplex pivot limit exhausted"),
            SimplexError::UnsupportedLowerBound => {
                write!(f, "variables must have finite lower bounds")
            }
            SimplexError::Numerical => {
                write!(
                    f,
                    "simplex aborted: every improving pivot is numerically unstable"
                )
            }
        }
    }
}

impl std::error::Error for SimplexError {}

/// Solves `lp` (treating every variable as continuous) and returns the optimal
/// solution.
///
/// Integer variables are *not* enforced here; use [`crate::branch_bound`] for
/// MILPs.
pub fn solve_lp(lp: &LinearProgram, options: &SimplexOptions) -> Result<Solution, SimplexError> {
    Tableau::build(lp, options)?.solve(lp)
}

/// Internal standard-form tableau.
struct Tableau {
    /// Row-major matrix of size `rows × (cols + 1)`; the last column is the RHS.
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// `basis[r]` is the column currently basic in row `r`.
    basis: Vec<usize>,
    /// Phase-2 objective coefficients per column (minimisation form).
    cost: Vec<f64>,
    /// Phase-1 objective coefficients per column.
    phase1_cost: Vec<f64>,
    /// Columns corresponding to the original (shifted) structural variables.
    structural: usize,
    /// Shift applied to each original variable (its lower bound).
    shift: Vec<f64>,
    /// Constant offset of the objective induced by the shifts.
    objective_offset: f64,
    options: SimplexOptions,
    artificial_start: usize,
}

impl Tableau {
    fn build(lp: &LinearProgram, options: &SimplexOptions) -> Result<Self, SimplexError> {
        let nvars = lp.num_variables();
        let mut shift = vec![0.0; nvars];
        for (i, v) in lp.variables().iter().enumerate() {
            if !v.lower.is_finite() {
                return Err(SimplexError::UnsupportedLowerBound);
            }
            shift[i] = v.lower;
        }

        // Collect rows: user constraints plus finite upper-bound rows.
        // Each row: (coefficients over structural vars, sense, rhs).
        struct Row {
            coeffs: Vec<(usize, f64)>,
            sense: ConstraintSense,
            rhs: f64,
        }
        let mut raw_rows: Vec<Row> = Vec::new();
        for c in lp.constraints() {
            // Merge duplicate terms. BTreeMap, not HashMap: the shift sum
            // below adds floats in iteration order, and float addition is not
            // associative — hash order would make the tableau (and the
            // configuration digest downstream) vary run to run.
            let mut merged: std::collections::BTreeMap<usize, f64> =
                std::collections::BTreeMap::new();
            for &(v, a) in &c.terms {
                *merged.entry(v).or_insert(0.0) += a;
            }
            // Shift: Σ a_i (x_i' + l_i) sense b  =>  Σ a_i x_i' sense b - Σ a_i l_i
            let shift_amount: f64 = merged.iter().map(|(&v, &a)| a * shift[v]).sum();
            raw_rows.push(Row {
                coeffs: merged.into_iter().collect(),
                sense: c.sense,
                rhs: c.rhs - shift_amount,
            });
        }
        for (i, v) in lp.variables().iter().enumerate() {
            if v.upper.is_finite() {
                let span = v.upper - v.lower;
                raw_rows.push(Row {
                    coeffs: vec![(i, 1.0)],
                    sense: ConstraintSense::LessEq,
                    rhs: span,
                });
            }
        }

        // Normalise RHS to be non-negative.
        for row in &mut raw_rows {
            if row.rhs < 0.0 {
                for (_, a) in &mut row.coeffs {
                    *a = -*a;
                }
                row.rhs = -row.rhs;
                row.sense = match row.sense {
                    ConstraintSense::LessEq => ConstraintSense::GreaterEq,
                    ConstraintSense::GreaterEq => ConstraintSense::LessEq,
                    ConstraintSense::Equal => ConstraintSense::Equal,
                };
            }
        }

        let rows = raw_rows.len();
        // Count auxiliary columns.
        let mut num_slack = 0usize;
        let mut num_artificial = 0usize;
        for row in &raw_rows {
            match row.sense {
                ConstraintSense::LessEq => num_slack += 1,
                ConstraintSense::GreaterEq => {
                    num_slack += 1;
                    num_artificial += 1;
                }
                ConstraintSense::Equal => num_artificial += 1,
            }
        }
        let structural = nvars;
        let cols = structural + num_slack + num_artificial;
        let artificial_start = structural + num_slack;

        let mut a = vec![0.0; rows * (cols + 1)];
        let mut basis = vec![usize::MAX; rows];
        let mut slack_idx = structural;
        let mut art_idx = artificial_start;
        for (r, row) in raw_rows.iter().enumerate() {
            for &(v, coef) in &row.coeffs {
                a[r * (cols + 1) + v] += coef;
            }
            a[r * (cols + 1) + cols] = row.rhs;
            match row.sense {
                ConstraintSense::LessEq => {
                    a[r * (cols + 1) + slack_idx] = 1.0;
                    basis[r] = slack_idx;
                    slack_idx += 1;
                }
                ConstraintSense::GreaterEq => {
                    a[r * (cols + 1) + slack_idx] = -1.0;
                    slack_idx += 1;
                    a[r * (cols + 1) + art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
                ConstraintSense::Equal => {
                    a[r * (cols + 1) + art_idx] = 1.0;
                    basis[r] = art_idx;
                    art_idx += 1;
                }
            }
        }

        // Phase-2 cost: minimise -objective over shifted variables.
        let mut cost = vec![0.0; cols];
        let mut objective_offset = 0.0;
        for (i, v) in lp.variables().iter().enumerate() {
            cost[i] = -v.objective;
            objective_offset += v.objective * shift[i];
        }
        // Phase-1 cost: minimise the sum of artificials.
        let mut phase1_cost = vec![0.0; cols];
        for slot in phase1_cost.iter_mut().skip(artificial_start) {
            *slot = 1.0;
        }

        Ok(Self {
            a,
            rows,
            cols,
            basis,
            cost,
            phase1_cost,
            structural,
            shift,
            objective_offset,
            options: options.clone(),
            artificial_start,
        })
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * (self.cols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * (self.cols + 1) + c] = v;
    }

    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.cols)
    }

    /// Smallest pivot element magnitude the tableau update tolerates. Scaled
    /// off the configured tolerance but never below an absolute floor:
    /// dividing a row by anything smaller amplifies its rounding noise past
    /// any later feasibility/optimality test.
    fn min_pivot(&self) -> f64 {
        self.options.tolerance.max(1e-11)
    }

    /// Performs the pivot, returning `false` (tableau untouched) when the
    /// pivot element is too small to divide by. In release builds this is the
    /// guard that keeps an ill-conditioned instance from silently corrupting
    /// the tableau; callers fall back to another column or report
    /// [`SimplexError::Numerical`].
    #[must_use]
    fn pivot(&mut self, pr: usize, pc: usize) -> bool {
        let width = self.cols + 1;
        let pivot_val = self.at(pr, pc);
        if !pivot_val.is_finite() || pivot_val.abs() <= self.min_pivot() {
            return false;
        }
        for c in 0..width {
            let v = self.at(pr, c) / pivot_val;
            self.set(pr, c, v);
        }
        for r in 0..self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= 0.0 {
                continue;
            }
            for c in 0..width {
                let v = self.at(r, c) - factor * self.a[pr * width + c];
                self.set(r, c, v);
            }
        }
        self.basis[pr] = pc;
        true
    }

    /// Runs the simplex method on the given cost vector, starting from the
    /// current basic feasible solution.  `allowed_cols` limits the entering
    /// columns (phase 2 forbids artificials).  Returns the number of pivots.
    fn run_phase(
        &mut self,
        cost: &[f64],
        forbid_artificials: bool,
        pivots_used: &mut usize,
    ) -> Result<(), SimplexError> {
        let tol = self.options.tolerance;
        // Columns rejected this iteration because their only improving pivot
        // element was numerically unusable; cleared after every successful
        // pivot (the tableau, and hence the elements, change).
        let mut rejected = vec![false; self.cols];
        loop {
            if *pivots_used >= self.options.max_pivots {
                return Err(SimplexError::IterationLimit);
            }
            // Reduced costs: c_j - c_B B^{-1} A_j.  With an explicit tableau the
            // reduced cost is c_j - Σ_r c_{basis[r]} * a[r][j].
            let mut entering: Option<usize> = None;
            let mut best_reduced = -tol;
            let mut any_rejected_improving = false;
            let use_bland = *pivots_used > self.options.max_pivots / 2;
            let col_limit = if forbid_artificials {
                self.artificial_start
            } else {
                self.cols
            };
            for j in 0..col_limit {
                if self.basis.contains(&j) {
                    continue;
                }
                let mut reduced = cost[j];
                for r in 0..self.rows {
                    let cb = cost[self.basis[r]];
                    if cb != 0.0 {
                        reduced -= cb * self.at(r, j);
                    }
                }
                if reduced < -tol {
                    if rejected[j] {
                        any_rejected_improving = true;
                        continue;
                    }
                    if use_bland {
                        entering = Some(j);
                        break;
                    }
                    if reduced < best_reduced {
                        best_reduced = reduced;
                        entering = Some(j);
                    }
                }
            }
            let Some(pc) = entering else {
                if any_rejected_improving {
                    // Improvement is still possible in exact arithmetic, but
                    // every improving column pivots on a (near-)zero element.
                    return Err(SimplexError::Numerical);
                }
                return Ok(()); // optimal for this phase
            };
            // Ratio test.
            let mut leaving: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let coef = self.at(r, pc);
                if coef > tol {
                    let ratio = self.rhs(r) / coef;
                    if ratio < best_ratio - tol
                        || (ratio < best_ratio + tol
                            && leaving.is_none_or(|lr| self.basis[r] < self.basis[lr]))
                    {
                        best_ratio = ratio;
                        leaving = Some(r);
                    }
                }
            }
            let Some(pr) = leaving else {
                return Err(SimplexError::Unbounded);
            };
            if !self.pivot(pr, pc) {
                // Near-zero pivot element: reject the column and retry with
                // the remaining candidates (Bland-style fallback) rather than
                // dividing the row by numerical noise.
                rejected[pc] = true;
                continue;
            }
            rejected.fill(false);
            *pivots_used += 1;
        }
    }

    fn solve(mut self, lp: &LinearProgram) -> Result<Solution, SimplexError> {
        let tol = self.options.tolerance;
        let mut pivots = 0usize;

        // Phase 1: drive artificials to zero (only needed if any exist).
        if self.artificial_start < self.cols {
            let phase1 = self.phase1_cost.clone();
            self.run_phase(&phase1, false, &mut pivots)?;
            // Compute phase-1 objective = sum of artificial values.
            let mut infeasibility = 0.0;
            for r in 0..self.rows {
                if self.basis[r] >= self.artificial_start {
                    infeasibility += self.rhs(r);
                }
            }
            if infeasibility > 1e-6 {
                return Err(SimplexError::Infeasible);
            }
            // Drive remaining artificial basics out of the basis when possible.
            for r in 0..self.rows {
                if self.basis[r] >= self.artificial_start {
                    // Find a non-artificial column with a non-zero coefficient.
                    let mut replacement = None;
                    for j in 0..self.artificial_start {
                        if !self.basis.contains(&j) && self.at(r, j).abs() > tol {
                            replacement = Some(j);
                            break;
                        }
                    }
                    if let Some(j) = replacement {
                        if self.pivot(r, j) {
                            pivots += 1;
                        }
                    }
                    // If no replacement exists (or its pivot element is too
                    // small to divide by) the row is redundant; the artificial
                    // stays basic at value ~0, which is harmless.
                }
            }
        }

        // Phase 2: optimise the real objective without artificials entering.
        let phase2 = self.cost.clone();
        self.run_phase(&phase2, true, &mut pivots)?;

        // Extract solution.
        let mut shifted = vec![0.0; self.structural];
        for r in 0..self.rows {
            let b = self.basis[r];
            if b < self.structural {
                shifted[b] = self.rhs(r);
            }
        }
        let values: Vec<f64> = shifted
            .iter()
            .enumerate()
            .map(|(i, &x)| x + self.shift[i])
            .collect();
        let _ = self.objective_offset;
        let objective = lp.objective_value(&values);
        Ok(Solution { values, objective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinearProgram, VarKind};

    fn solve(lp: &LinearProgram) -> Solution {
        solve_lp(lp, &SimplexOptions::default()).expect("solvable")
    }

    #[test]
    fn simple_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (classic example, opt 36 at (2,6))
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(3.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        let y = lp.add_variable(5.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintSense::LessEq, 4.0, None);
        lp.add_constraint(vec![(y, 2.0)], ConstraintSense::LessEq, 12.0, None);
        lp.add_constraint(
            vec![(x, 3.0), (y, 2.0)],
            ConstraintSense::LessEq,
            18.0,
            None,
        );
        let sol = solve(&lp);
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[x] - 2.0).abs() < 1e-6);
        assert!((sol.values[y] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_and_geq_constraints() {
        // max x + y s.t. x + y = 5, x >= 2, y >= 1  => objective 5.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        let y = lp.add_variable(1.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::Equal, 5.0, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintSense::GreaterEq, 2.0, None);
        lp.add_constraint(vec![(y, 1.0)], ConstraintSense::GreaterEq, 1.0, None);
        let sol = solve(&lp);
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert!(lp.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn variable_bounds_are_respected() {
        // max 2x + y with x in [0, 1], y in [0.5, 2], x + y <= 2 => x=1, y=1, obj 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(2.0, 0.0, 1.0, VarKind::Continuous, None);
        let y = lp.add_variable(1.0, 0.5, 2.0, VarKind::Continuous, None);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::LessEq, 2.0, None);
        let sol = solve(&lp);
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!((sol.values[x] - 1.0).abs() < 1e-6);
        assert!((sol.values[y] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds_shift_correctly() {
        // min-like test via maximisation of a negative coefficient:
        // max -x with x in [3, 10] => x = 3, objective -3.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(-1.0, 3.0, 10.0, VarKind::Continuous, None);
        let sol = solve(&lp);
        assert!((sol.objective + 3.0).abs() < 1e-6);
        assert!((sol.values[x] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasibility() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, 1.0, VarKind::Continuous, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintSense::GreaterEq, 2.0, None);
        let err = solve_lp(&lp, &SimplexOptions::default()).unwrap_err();
        assert_eq!(err, SimplexError::Infeasible);
    }

    #[test]
    fn detects_unboundedness() {
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        let y = lp.add_variable(0.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        lp.add_constraint(
            vec![(x, 1.0), (y, -1.0)],
            ConstraintSense::LessEq,
            1.0,
            None,
        );
        let err = solve_lp(&lp, &SimplexOptions::default()).unwrap_err();
        assert_eq!(err, SimplexError::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Several redundant constraints through the same vertex.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        let y = lp.add_variable(1.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        for _ in 0..4 {
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintSense::LessEq, 1.0, None);
        }
        lp.add_constraint(vec![(x, 1.0)], ConstraintSense::LessEq, 1.0, None);
        lp.add_constraint(vec![(y, 1.0)], ConstraintSense::LessEq, 1.0, None);
        let sol = solve(&lp);
        assert!((sol.objective - 1.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        // max x s.t. 0.5x + 0.5x <= 3  => x = 3.
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, f64::INFINITY, VarKind::Continuous, None);
        lp.add_constraint(vec![(x, 0.5), (x, 0.5)], ConstraintSense::LessEq, 3.0, None);
        let sol = solve(&lp);
        assert!((sol.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn near_zero_pivot_is_rejected_not_executed() {
        // `y` is profitable and its *only* constraint row carries a 1e-13
        // coefficient. With a tolerance below that coefficient the ratio test
        // accepts the row, and the pre-guard solver pivoted on it — dividing
        // the row by 1e-13 and blowing the tableau up (the old debug_assert
        // only caught this in debug builds). The runtime guard must reject
        // the column and, since no stable improving pivot remains, abort with
        // the numerical-error variant instead of "solving".
        let mut lp = LinearProgram::new();
        let x = lp.add_variable(1.0, 0.0, 1.0, VarKind::Continuous, None);
        let y = lp.add_variable(1e6, 0.0, f64::INFINITY, VarKind::Continuous, None);
        lp.add_constraint(vec![(y, 1e-13)], ConstraintSense::LessEq, 1.0, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintSense::LessEq, 1.0, None);
        let options = SimplexOptions {
            tolerance: 1e-15,
            ..SimplexOptions::default()
        };
        let err = solve_lp(&lp, &options).unwrap_err();
        assert_eq!(err, SimplexError::Numerical);
    }

    #[test]
    fn ill_conditioned_but_stable_instance_still_solves() {
        // Coefficients spanning ten orders of magnitude, solved with a much
        // smaller tolerance than the default: every pivot element is still
        // above the guard's floor, so the solve must succeed and stay exact.
        // max 2a + b  s.t.  1e-3·a + 1e-7·b ≤ 1e-3,  a,b ∈ [0, 1]  →  a = 1
        // forces 1e-7·b ≤ 0 at the vertex... keep slack: rhs 2e-3 → a = 1,
        // b = min(1, 1e4·1e-3) = 1.
        let mut lp = LinearProgram::new();
        let a = lp.add_variable(2.0, 0.0, 1.0, VarKind::Continuous, None);
        let b = lp.add_variable(1.0, 0.0, 1.0, VarKind::Continuous, None);
        lp.add_constraint(
            vec![(a, 1e-3), (b, 1e-7)],
            ConstraintSense::LessEq,
            2e-3,
            None,
        );
        let options = SimplexOptions {
            tolerance: 1e-12,
            ..SimplexOptions::default()
        };
        let sol = solve_lp(&lp, &options).expect("stable instance solves");
        assert!((sol.objective - 3.0).abs() < 1e-6, "got {}", sol.objective);
        assert!(lp.is_feasible(&sol.values, 1e-9));
    }

    #[test]
    fn fractional_assignment_structure() {
        // A tiny LP with the structure of LP_SIMP: two users, two items, k = 1,
        // a single friend pair with symmetric social utility.  The optimum
        // co-displays the shared item when the social utility dominates.
        // Variables: x_a1, x_a2, x_b1, x_b2, y_1, y_2.
        let mut lp = LinearProgram::new();
        let xa1 = lp.add_unit_var(0.3, None);
        let xa2 = lp.add_unit_var(0.0, None);
        let xb1 = lp.add_unit_var(0.0, None);
        let xb2 = lp.add_unit_var(0.3, None);
        let y1 = lp.add_unit_var(1.0, None);
        let y2 = lp.add_unit_var(1.0, None);
        lp.add_constraint(
            vec![(xa1, 1.0), (xa2, 1.0)],
            ConstraintSense::Equal,
            1.0,
            None,
        );
        lp.add_constraint(
            vec![(xb1, 1.0), (xb2, 1.0)],
            ConstraintSense::Equal,
            1.0,
            None,
        );
        lp.add_constraint(
            vec![(y1, 1.0), (xa1, -1.0)],
            ConstraintSense::LessEq,
            0.0,
            None,
        );
        lp.add_constraint(
            vec![(y1, 1.0), (xb1, -1.0)],
            ConstraintSense::LessEq,
            0.0,
            None,
        );
        lp.add_constraint(
            vec![(y2, 1.0), (xa2, -1.0)],
            ConstraintSense::LessEq,
            0.0,
            None,
        );
        lp.add_constraint(
            vec![(y2, 1.0), (xb2, -1.0)],
            ConstraintSense::LessEq,
            0.0,
            None,
        );
        let sol = solve(&lp);
        // Best: both users take the same item (either one); objective = 1.0 + 0.3.
        assert!((sol.objective - 1.3).abs() < 1e-6);
    }
}
