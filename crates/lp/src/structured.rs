//! Special-purpose solver for the condensed LP_SIMP relaxation (§4.4).
//!
//! After the paper's advanced LP transformation, the SVGIC relaxation becomes
//!
//! ```text
//! maximise   Σ_i a_i · x_i  +  Σ_t b_t · min(x_{p_t}, x_{q_t})
//! subject to Σ_{i ∈ group g} x_i = budget_g          for every group g,
//!            0 ≤ x_i ≤ 1,
//! ```
//!
//! where a group is one user (its variables are `x_u^c` over all items `c`),
//! the linear part carries the scaled preference utilities, and each coupling
//! term carries the pairwise social utility `w_e^c = τ(u,v,c) + τ(v,u,c)` of a
//! friend pair on a common item (at optimum the auxiliary variable `y_e^c`
//! equals `min(x_u^c, x_v^c)`, so it is eliminated).
//!
//! With all coefficients non-negative, each per-group subproblem (all other
//! groups fixed) is the maximisation of a *separable concave piecewise-linear*
//! function over a capped simplex, which is solved exactly by water-filling on
//! slope-sorted segments.  Repeating block-coordinate passes yields a feasible
//! fractional solution whose objective monotonically improves; in practice it
//! lands within a fraction of a percent of the true LP optimum (validated in
//! tests against the exact simplex), and Corollary 4.2 of the paper shows that
//! running AVG on a β-approximate fractional solution retains a `4β`
//! approximation guarantee.

/// One coupling term `weight · min(x_first, x_second)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CouplingTerm {
    /// First variable index.
    pub first: usize,
    /// Second variable index.
    pub second: usize,
    /// Non-negative weight.
    pub weight: f64,
}

/// A "min-coupling" problem instance (see the module documentation).
#[derive(Clone, Debug, Default)]
pub struct MinCouplingProblem {
    /// Linear objective coefficient per variable (non-negative).
    pub linear: Vec<f64>,
    /// Group index of each variable.
    pub group_of: Vec<usize>,
    /// Budget (`k` in SVGIC) per group; each group's variables must sum to it.
    pub budgets: Vec<f64>,
    /// Coupling terms.
    pub couplings: Vec<CouplingTerm>,
}

impl MinCouplingProblem {
    /// Creates an empty problem with `num_groups` groups of the given budgets.
    pub fn new(budgets: Vec<f64>) -> Self {
        Self {
            linear: Vec::new(),
            group_of: Vec::new(),
            budgets,
            couplings: Vec::new(),
        }
    }

    /// Adds a variable with linear coefficient `a` to group `g`; returns its index.
    pub fn add_variable(&mut self, group: usize, a: f64) -> usize {
        assert!(group < self.budgets.len(), "unknown group {group}");
        assert!(a >= 0.0, "linear coefficients must be non-negative");
        self.linear.push(a);
        self.group_of.push(group);
        self.linear.len() - 1
    }

    /// Adds a coupling term `weight · min(x_i, x_j)`.
    pub fn add_coupling(&mut self, i: usize, j: usize, weight: f64) {
        assert!(
            i < self.linear.len() && j < self.linear.len(),
            "unknown variable"
        );
        assert!(weight >= 0.0, "coupling weights must be non-negative");
        if weight > 0.0 {
            self.couplings.push(CouplingTerm {
                first: i,
                second: j,
                weight,
            });
        }
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.linear.len()
    }

    /// Evaluates the objective for an assignment.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let mut total: f64 = self.linear.iter().zip(x).map(|(a, v)| a * v).sum();
        for t in &self.couplings {
            total += t.weight * x[t.first].min(x[t.second]);
        }
        total
    }

    /// Checks feasibility of an assignment within tolerance.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.linear.len() {
            return false;
        }
        if x.iter().any(|&v| v < -tol || v > 1.0 + tol) {
            return false;
        }
        let mut sums = vec![0.0; self.budgets.len()];
        for (i, &v) in x.iter().enumerate() {
            sums[self.group_of[i]] += v;
        }
        sums.iter()
            .zip(&self.budgets)
            .all(|(&s, &b)| (s - b).abs() <= tol * (1.0 + b.abs()))
    }
}

/// Options for the block-coordinate ascent.
#[derive(Clone, Debug)]
pub struct CoordinateAscentOptions {
    /// Maximum number of full passes over all groups.
    pub max_passes: usize,
    /// Stop when a full pass improves the objective by less than this
    /// (relative to the current objective magnitude).
    pub relative_tolerance: f64,
}

impl Default for CoordinateAscentOptions {
    fn default() -> Self {
        Self {
            max_passes: 60,
            relative_tolerance: 1e-7,
        }
    }
}

/// Result of the structured solve.
#[derive(Clone, Debug)]
pub struct StructuredSolution {
    /// Variable values.
    pub values: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Number of full block passes executed.
    pub passes: usize,
}

/// Solves the min-coupling problem by block-coordinate ascent.
///
/// # Panics
/// Panics if any group's budget exceeds the number of variables in the group
/// (the problem would be infeasible), or a budget is negative.
pub fn solve_min_coupling(
    problem: &MinCouplingProblem,
    options: &CoordinateAscentOptions,
) -> StructuredSolution {
    let n = problem.num_variables();
    let num_groups = problem.budgets.len();
    // Group membership lists.
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
    for (i, &g) in problem.group_of.iter().enumerate() {
        members[g].push(i);
    }
    for (g, m) in members.iter().enumerate() {
        let budget = problem.budgets[g];
        assert!(budget >= 0.0, "negative budget for group {g}");
        assert!(
            budget <= m.len() as f64 + 1e-9,
            "group {g} budget {budget} exceeds its {} variables",
            m.len()
        );
    }
    // Per-variable coupling adjacency: (partner variable, weight).
    let mut coupled: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for t in &problem.couplings {
        coupled[t.first].push((t.second, t.weight));
        coupled[t.second].push((t.first, t.weight));
    }

    // Block-coordinate ascent can stall on symmetric fractional points (the
    // classic issue with non-smooth concave objectives), so it is run from two
    // complementary starting points and the better outcome is kept:
    //   1. an "optimistically aligned" greedy vertex, where every variable is
    //      scored as if all its coupling partners were fully selected — this
    //      breaks the symmetry that traps the proportional start, and
    //   2. the proportional interior point x_i = budget / |group|, which is
    //      the LP optimum for indifference-style instances (Lemma 3).
    let mut best: Option<(Vec<f64>, f64, usize)> = None;
    for init in [
        InitStrategy::GreedyAligned(1.0),
        InitStrategy::GreedyAligned(0.4),
        InitStrategy::GreedyAligned(2.5),
        InitStrategy::GreedyAligned(0.0),
        InitStrategy::Proportional,
    ] {
        let mut x = initial_point(problem, &members, &coupled, init);
        let mut objective = problem.objective(&x);
        let mut passes = 0usize;
        for _ in 0..options.max_passes {
            passes += 1;
            for (g, m) in members.iter().enumerate() {
                if m.is_empty() {
                    continue;
                }
                optimize_group(problem, &coupled, &mut x, m, problem.budgets[g]);
            }
            let new_objective = problem.objective(&x);
            let improvement = new_objective - objective;
            objective = new_objective;
            if improvement <= options.relative_tolerance * (1.0 + objective.abs()) {
                break;
            }
        }
        if best.as_ref().is_none_or(|(_, obj, _)| objective > *obj) {
            best = Some((x, objective, passes));
        }
    }
    let (values, objective, passes) = best.expect("at least one initialisation runs");

    StructuredSolution {
        values,
        objective,
        passes,
    }
}

#[derive(Clone, Copy)]
enum InitStrategy {
    /// Greedy vertex where each variable is scored as
    /// `linear + multiplier · Σ partner weights`.
    GreedyAligned(f64),
    Proportional,
}

/// Builds a feasible starting point for the block-coordinate ascent.
fn initial_point(
    problem: &MinCouplingProblem,
    members: &[Vec<usize>],
    coupled: &[Vec<(usize, f64)>],
    strategy: InitStrategy,
) -> Vec<f64> {
    let n = problem.num_variables();
    let mut x = vec![0.0; n];
    match strategy {
        InitStrategy::Proportional => {
            for (g, m) in members.iter().enumerate() {
                if m.is_empty() {
                    continue;
                }
                let v = (problem.budgets[g] / m.len() as f64).clamp(0.0, 1.0);
                for &i in m {
                    x[i] = v;
                }
            }
        }
        InitStrategy::GreedyAligned(multiplier) => {
            for (g, m) in members.iter().enumerate() {
                if m.is_empty() {
                    continue;
                }
                // Score every variable as if all partners were fully selected,
                // weighting the optimistic social part by `multiplier`.
                let mut scored: Vec<(f64, usize)> = m
                    .iter()
                    .map(|&i| {
                        let social: f64 = coupled[i].iter().map(|&(_, w)| w).sum();
                        (problem.linear[i] + multiplier * social, i)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
                let mut budget = problem.budgets[g].min(m.len() as f64);
                for (_, i) in scored {
                    if budget <= 1e-12 {
                        break;
                    }
                    let take = budget.min(1.0);
                    x[i] = take;
                    budget -= take;
                }
            }
        }
    }
    x
}

/// Exactly maximises the group's separable concave piecewise-linear objective
/// under `Σ x_i = budget`, `0 ≤ x_i ≤ 1`, with all other variables fixed.
fn optimize_group(
    problem: &MinCouplingProblem,
    coupled: &[Vec<(usize, f64)>],
    x: &mut [f64],
    members: &[usize],
    budget: f64,
) {
    // Build the slope segments of every member's concave gain function
    //   f_i(z) = a_i z + Σ_j w_ij min(z, t_j),   t_j = x[partner_j] (fixed).
    // Breakpoints are the partner values; slopes are non-increasing in z.
    #[derive(Clone, Copy)]
    struct Segment {
        var_pos: usize, // index into `members`
        start: f64,
        length: f64,
        slope: f64,
    }
    let mut segments: Vec<Segment> = Vec::new();
    for (pos, &i) in members.iter().enumerate() {
        // Collect partner thresholds in (0, 1], ignoring partners inside the
        // same group only in the sense that their *current* value is used
        // (never happens in SVGIC where couplings connect different users).
        let mut thresholds: Vec<(f64, f64)> = coupled[i]
            .iter()
            .map(|&(j, w)| (x[j].clamp(0.0, 1.0), w))
            .filter(|&(t, w)| t > 0.0 && w > 0.0)
            .collect();
        thresholds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Sweep the breakpoints building segments with their slopes.
        let total_coupling: f64 = thresholds.iter().map(|&(_, w)| w).sum();
        let mut prev = 0.0;
        let mut remaining = total_coupling;
        let mut idx = 0usize;
        while prev < 1.0 - 1e-15 {
            // Advance over thresholds equal to `prev`.
            while idx < thresholds.len() && thresholds[idx].0 <= prev + 1e-15 {
                remaining -= thresholds[idx].1;
                idx += 1;
            }
            let next = if idx < thresholds.len() {
                thresholds[idx].0.min(1.0)
            } else {
                1.0
            };
            if next > prev + 1e-15 {
                segments.push(Segment {
                    var_pos: pos,
                    start: prev,
                    length: next - prev,
                    slope: problem.linear[i] + remaining.max(0.0),
                });
            }
            prev = next;
        }
        if segments.last().map(|s| s.var_pos) != Some(pos) && 1.0 > 0.0 {
            // Variable with no segments (shouldn't happen) — add a trivial one.
            segments.push(Segment {
                var_pos: pos,
                start: 0.0,
                length: 1.0,
                slope: problem.linear[i],
            });
        }
    }
    // Water-filling: allocate `budget` mass to segments in decreasing slope.
    // Because each variable's slopes are non-increasing, filling in global
    // slope order never fills a later segment of a variable before an earlier
    // one (ties are resolved by segment start, which preserves the invariant).
    segments.sort_by(|a, b| {
        b.slope
            .partial_cmp(&a.slope)
            .unwrap()
            .then(a.start.partial_cmp(&b.start).unwrap())
            .then(a.var_pos.cmp(&b.var_pos))
    });
    let mut alloc = vec![0.0f64; members.len()];
    let mut remaining_budget = budget.min(members.len() as f64);
    for seg in &segments {
        if remaining_budget <= 1e-12 {
            break;
        }
        // Only fill this segment once the variable has reached its start
        // (guaranteed by the ordering; guard anyway for numerical safety).
        let already = alloc[seg.var_pos];
        if already + 1e-12 < seg.start {
            continue;
        }
        let capacity = (seg.start + seg.length - already).max(0.0);
        let take = capacity.min(remaining_budget);
        alloc[seg.var_pos] += take;
        remaining_budget -= take;
    }
    // Any residual budget (numerical) is spread over variables with headroom.
    if remaining_budget > 1e-9 {
        for a in alloc.iter_mut() {
            if remaining_budget <= 1e-12 {
                break;
            }
            let take = (1.0 - *a).min(remaining_budget);
            *a += take;
            remaining_budget -= take;
        }
    }
    for (pos, &i) in members.iter().enumerate() {
        x[i] = alloc[pos].clamp(0.0, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinearProgram};
    use crate::simplex::{solve_lp, SimplexOptions};

    /// Builds the equivalent explicit LP (with y variables) for cross-checking.
    fn to_explicit_lp(p: &MinCouplingProblem) -> LinearProgram {
        let mut lp = LinearProgram::new();
        let xs: Vec<_> = p.linear.iter().map(|&a| lp.add_unit_var(a, None)).collect();
        for t in &p.couplings {
            let y = lp.add_unit_var(t.weight, None);
            lp.add_constraint(
                vec![(y, 1.0), (xs[t.first], -1.0)],
                ConstraintSense::LessEq,
                0.0,
                None,
            );
            lp.add_constraint(
                vec![(y, 1.0), (xs[t.second], -1.0)],
                ConstraintSense::LessEq,
                0.0,
                None,
            );
        }
        for (g, &b) in p.budgets.iter().enumerate() {
            let terms: Vec<_> = xs
                .iter()
                .enumerate()
                .filter(|&(i, _)| p.group_of[i] == g)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            lp.add_constraint(terms, ConstraintSense::Equal, b, None);
        }
        lp
    }

    #[test]
    fn pure_linear_problem_picks_top_items() {
        // One group (user), budget 2, four items with distinct preferences.
        let mut p = MinCouplingProblem::new(vec![2.0]);
        for &a in &[0.1, 0.9, 0.5, 0.7] {
            p.add_variable(0, a);
        }
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(p.is_feasible(&sol.values, 1e-6));
        assert!((sol.objective - 1.6).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
        assert!((sol.values[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn coupling_pulls_friends_to_common_item() {
        // Two users, two items, k = 1.  Preferences slightly favour different
        // items but a large social weight on item 0 makes sharing optimal.
        let mut p = MinCouplingProblem::new(vec![1.0, 1.0]);
        let a0 = p.add_variable(0, 0.3); // user A, item 0
        let a1 = p.add_variable(0, 0.4); // user A, item 1
        let b0 = p.add_variable(1, 0.3); // user B, item 0
        let b1 = p.add_variable(1, 0.4); // user B, item 1
        p.add_coupling(a0, b0, 1.0);
        p.add_coupling(a1, b1, 0.0); // dropped (zero weight)
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(p.is_feasible(&sol.values, 1e-6));
        // Optimal: both take item 0 => 0.3 + 0.3 + 1.0 = 1.6.
        assert!(
            (sol.objective - 1.6).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!(sol.values[a0] > 0.99 && sol.values[b0] > 0.99);
        assert_eq!(p.couplings.len(), 1);
        let _ = (a1, b1);
    }

    #[test]
    fn matches_exact_simplex_on_small_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..12 {
            let users = 3 + trial % 3; // 3..5 users
            let items = 3 + trial % 4; // 3..6 items
            let k = 1 + trial % 2; // budget 1..2
            let mut p = MinCouplingProblem::new(vec![k as f64; users]);
            let mut var = vec![vec![0usize; items]; users];
            for (u, row) in var.iter_mut().enumerate() {
                for (c, slot) in row.iter_mut().enumerate() {
                    let _ = c;
                    *slot = p.add_variable(u, rng.gen::<f64>());
                }
            }
            // Random friend pairs with random per-item social weights.
            for u in 0..users {
                for v in (u + 1)..users {
                    if rng.gen::<f64>() < 0.6 {
                        for (&xu, &xv) in var[u].iter().zip(var[v].iter()) {
                            p.add_coupling(xu, xv, rng.gen::<f64>());
                        }
                    }
                }
            }
            let approx = solve_min_coupling(&p, &CoordinateAscentOptions::default());
            assert!(
                p.is_feasible(&approx.values, 1e-6),
                "trial {trial} infeasible"
            );
            let exact = solve_lp(&to_explicit_lp(&p), &SimplexOptions::default()).unwrap();
            assert!(
                approx.objective >= 0.85 * exact.objective - 1e-9,
                "trial {trial}: coordinate ascent {} vs exact {}",
                approx.objective,
                exact.objective
            );
            assert!(approx.objective <= exact.objective + 1e-6);
        }
    }

    #[test]
    fn uniform_indifference_keeps_fractional_spread() {
        // The Lemma 3 instance: every user indifferent among all items, strong
        // symmetric coupling.  Any budget-respecting solution with aligned mass
        // is optimal; x_i = k/m must be feasible and the solver must not break
        // feasibility.
        let users = 4;
        let items = 5;
        let k = 2.0;
        let mut p = MinCouplingProblem::new(vec![k; users]);
        let mut var = vec![vec![0usize; items]; users];
        for (u, row) in var.iter_mut().enumerate() {
            for slot in row.iter_mut() {
                *slot = p.add_variable(u, 0.0);
            }
        }
        for u in 0..users {
            for v in (u + 1)..users {
                for (&xu, &xv) in var[u].iter().zip(var[v].iter()) {
                    p.add_coupling(xu, xv, 1.0);
                }
            }
        }
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(p.is_feasible(&sol.values, 1e-6));
        // Upper bound: every pair shares k full items => C(4,2) * k = 12.
        assert!(sol.objective <= 12.0 + 1e-6);
        assert!(sol.objective >= 11.0, "objective {}", sol.objective);
    }

    #[test]
    fn budget_equal_to_group_size_saturates() {
        let mut p = MinCouplingProblem::new(vec![3.0]);
        for _ in 0..3 {
            p.add_variable(0, 0.2);
        }
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(sol.values.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn over_budget_group_panics() {
        let mut p = MinCouplingProblem::new(vec![4.0]);
        p.add_variable(0, 0.2);
        p.add_variable(0, 0.2);
        let _ = solve_min_coupling(&p, &CoordinateAscentOptions::default());
    }

    #[test]
    fn objective_evaluation() {
        let mut p = MinCouplingProblem::new(vec![1.0, 1.0]);
        let a = p.add_variable(0, 2.0);
        let b = p.add_variable(1, 3.0);
        p.add_coupling(a, b, 4.0);
        assert!((p.objective(&[1.0, 0.5]) - (2.0 + 1.5 + 2.0)).abs() < 1e-12);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 1.0], 1e-9));
    }
}
