//! Special-purpose solver for the condensed LP_SIMP relaxation (§4.4).
//!
//! After the paper's advanced LP transformation, the SVGIC relaxation becomes
//!
//! ```text
//! maximise   Σ_i a_i · x_i  +  Σ_t b_t · min(x_{p_t}, x_{q_t})
//! subject to Σ_{i ∈ group g} x_i = budget_g          for every group g,
//!            0 ≤ x_i ≤ 1,
//! ```
//!
//! where a group is one user (its variables are `x_u^c` over all items `c`),
//! the linear part carries the scaled preference utilities, and each coupling
//! term carries the pairwise social utility `w_e^c = τ(u,v,c) + τ(v,u,c)` of a
//! friend pair on a common item (at optimum the auxiliary variable `y_e^c`
//! equals `min(x_u^c, x_v^c)`, so it is eliminated).
//!
//! With all coefficients non-negative, each per-group subproblem (all other
//! groups fixed) is the maximisation of a *separable concave piecewise-linear*
//! function over a capped simplex, which is solved exactly by water-filling on
//! slope-sorted segments.  Repeating block-coordinate passes yields a feasible
//! fractional solution whose objective monotonically improves; in practice it
//! lands within a fraction of a percent of the true LP optimum (validated in
//! tests against the exact simplex), and Corollary 4.2 of the paper shows that
//! running AVG on a β-approximate fractional solution retains a `4β`
//! approximation guarantee.
//!
//! Passes are driven by an **active-group worklist**: a group is re-optimised
//! only while its coupling neighbourhood keeps moving (beyond
//! [`CoordinateAscentOptions::activation_epsilon`]), and the whole ascent
//! stops on a convergence tolerance instead of a fixed pass count. On top of
//! the from-scratch [`solve_min_coupling`], the [`solve_min_coupling_warm`]
//! entry point accepts a prior fractional solution ([`WarmStart`]): surviving
//! variables are mapped onto it, [`project_onto_budgets`] restores
//! feasibility after membership/catalogue deltas, and only the changed
//! neighbourhood starts active — re-solves after small deltas touch a
//! handful of groups instead of the whole problem.

/// One coupling term `weight · min(x_first, x_second)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CouplingTerm {
    /// First variable index.
    pub first: usize,
    /// Second variable index.
    pub second: usize,
    /// Non-negative weight.
    pub weight: f64,
}

/// A "min-coupling" problem instance (see the module documentation).
#[derive(Clone, Debug, Default)]
pub struct MinCouplingProblem {
    /// Linear objective coefficient per variable (non-negative).
    pub linear: Vec<f64>,
    /// Group index of each variable.
    pub group_of: Vec<usize>,
    /// Budget (`k` in SVGIC) per group; each group's variables must sum to it.
    pub budgets: Vec<f64>,
    /// Coupling terms.
    pub couplings: Vec<CouplingTerm>,
}

impl MinCouplingProblem {
    /// Creates an empty problem with `num_groups` groups of the given budgets.
    pub fn new(budgets: Vec<f64>) -> Self {
        Self {
            linear: Vec::new(),
            group_of: Vec::new(),
            budgets,
            couplings: Vec::new(),
        }
    }

    /// Adds a variable with linear coefficient `a` to group `g`; returns its index.
    pub fn add_variable(&mut self, group: usize, a: f64) -> usize {
        assert!(group < self.budgets.len(), "unknown group {group}");
        assert!(a >= 0.0, "linear coefficients must be non-negative");
        self.linear.push(a);
        self.group_of.push(group);
        self.linear.len() - 1
    }

    /// Adds a coupling term `weight · min(x_i, x_j)`.
    pub fn add_coupling(&mut self, i: usize, j: usize, weight: f64) {
        assert!(
            i < self.linear.len() && j < self.linear.len(),
            "unknown variable"
        );
        assert!(weight >= 0.0, "coupling weights must be non-negative");
        if weight > 0.0 {
            self.couplings.push(CouplingTerm {
                first: i,
                second: j,
                weight,
            });
        }
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.linear.len()
    }

    /// Evaluates the objective for an assignment.
    pub fn objective(&self, x: &[f64]) -> f64 {
        let mut total: f64 = self.linear.iter().zip(x).map(|(a, v)| a * v).sum();
        for t in &self.couplings {
            total += t.weight * x[t.first].min(x[t.second]);
        }
        total
    }

    /// Checks feasibility of an assignment within tolerance.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.linear.len() {
            return false;
        }
        if x.iter().any(|&v| v < -tol || v > 1.0 + tol) {
            return false;
        }
        let mut sums = vec![0.0; self.budgets.len()];
        for (i, &v) in x.iter().enumerate() {
            sums[self.group_of[i]] += v;
        }
        sums.iter()
            .zip(&self.budgets)
            .all(|(&s, &b)| (s - b).abs() <= tol * (1.0 + b.abs()))
    }
}

/// Options for the block-coordinate ascent.
#[derive(Clone, Debug)]
pub struct CoordinateAscentOptions {
    /// Hard cap on the number of coordinate passes (a safety valve; the
    /// ascent normally stops on [`Self::relative_tolerance`] or when the
    /// active-group worklist drains).
    pub max_passes: usize,
    /// Stop when a pass improves the objective by less than this
    /// (relative to the current objective magnitude).
    pub relative_tolerance: f64,
    /// Active-group tracking threshold: after a group's block is re-optimised,
    /// its coupling neighbours are re-activated for another pass only when one
    /// of the group's variables moved by more than this amount. Groups whose
    /// neighbourhood never moves are skipped entirely.
    pub activation_epsilon: f64,
}

impl Default for CoordinateAscentOptions {
    fn default() -> Self {
        Self {
            max_passes: 60,
            relative_tolerance: 1e-7,
            activation_epsilon: 1e-10,
        }
    }
}

/// Result of the structured solve.
#[derive(Clone, Debug)]
pub struct StructuredSolution {
    /// Variable values.
    pub values: Vec<f64>,
    /// Objective value.
    pub objective: f64,
    /// Number of coordinate passes executed (0 when a warm start was already
    /// at a fixed point).
    pub passes: usize,
}

/// A prior fractional solution to warm-start from.
///
/// The caller maps every variable of the *new* problem onto the prior
/// solution (`var_map[i] = Some(j)` means new variable `i` was prior variable
/// `j`; `None` marks a variable that did not exist before). Prior values of
/// surviving variables are projected onto the per-group capped-simplex
/// budgets to restore feasibility after membership/catalogue deltas, and the
/// worklist ascent then touches only groups whose neighbourhood actually
/// changed.
#[derive(Clone, Copy, Debug)]
pub struct WarmStart<'a> {
    /// The prior problem's fractional values.
    pub prior: &'a [f64],
    /// For each new variable, its index in the prior solution (if any).
    pub var_map: &'a [Option<usize>],
    /// Groups whose subproblem inputs changed in ways the mapping cannot
    /// express — e.g. groups that were coupled to since-removed variables, or
    /// whose budgets/coefficients changed. They start active.
    pub dirty_groups: &'a [usize],
}

/// Shared per-solve adjacency: group membership lists and per-variable
/// coupling neighbourhoods.
struct Workspace {
    members: Vec<Vec<usize>>,
    coupled: Vec<Vec<(usize, f64)>>,
}

/// Builds the workspace, validating budgets.
///
/// # Panics
/// Panics if any group's budget exceeds the number of variables in the group
/// (the problem would be infeasible), or a budget is negative.
fn build_workspace(problem: &MinCouplingProblem) -> Workspace {
    let n = problem.num_variables();
    let num_groups = problem.budgets.len();
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_groups];
    for (i, &g) in problem.group_of.iter().enumerate() {
        members[g].push(i);
    }
    for (g, m) in members.iter().enumerate() {
        let budget = problem.budgets[g];
        assert!(budget >= 0.0, "negative budget for group {g}");
        assert!(
            budget <= m.len() as f64 + 1e-9,
            "group {g} budget {budget} exceeds its {} variables",
            m.len()
        );
    }
    let mut coupled: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for t in &problem.couplings {
        coupled[t.first].push((t.second, t.weight));
        coupled[t.second].push((t.first, t.weight));
    }
    Workspace { members, coupled }
}

/// Runs the worklist block-coordinate ascent from `x`, mutating it in place.
///
/// `active` marks the groups whose block subproblem may have changed; a
/// group's re-optimisation re-activates its coupling neighbours only when one
/// of its variables moved by more than `activation_epsilon`, so converged
/// regions of the problem are never revisited. Returns the final objective
/// and the number of passes executed.
fn ascend(
    problem: &MinCouplingProblem,
    workspace: &Workspace,
    x: &mut [f64],
    options: &CoordinateAscentOptions,
    active: &mut [bool],
) -> (f64, usize) {
    let mut objective = problem.objective(x);
    let mut passes = 0usize;
    for _ in 0..options.max_passes {
        if !active.iter().any(|&a| a) {
            break;
        }
        passes += 1;
        for g in 0..workspace.members.len() {
            if !active[g] {
                continue;
            }
            active[g] = false;
            let members = &workspace.members[g];
            if members.is_empty() {
                continue;
            }
            let moved = optimize_group(problem, &workspace.coupled, x, members, problem.budgets[g]);
            if moved > options.activation_epsilon {
                for &i in members {
                    for &(j, _) in &workspace.coupled[i] {
                        active[problem.group_of[j]] = true;
                    }
                }
            }
        }
        let new_objective = problem.objective(x);
        let improvement = new_objective - objective;
        objective = new_objective;
        if improvement <= options.relative_tolerance * (1.0 + objective.abs()) {
            break;
        }
    }
    (objective, passes)
}

/// Solves the min-coupling problem by block-coordinate ascent from scratch.
///
/// # Panics
/// Panics if any group's budget exceeds the number of variables in the group
/// (the problem would be infeasible), or a budget is negative.
pub fn solve_min_coupling(
    problem: &MinCouplingProblem,
    options: &CoordinateAscentOptions,
) -> StructuredSolution {
    let workspace = build_workspace(problem);

    // Block-coordinate ascent can stall on symmetric fractional points (the
    // classic issue with non-smooth concave objectives), so it is run from
    // complementary starting points and the better outcome is kept:
    //   1. "optimistically aligned" greedy vertices, where every variable is
    //      scored as if all its coupling partners were fully selected — this
    //      breaks the symmetry that traps the proportional start, and
    //   2. the proportional interior point x_i = budget / |group|, which is
    //      the LP optimum for indifference-style instances (Lemma 3).
    let mut best: Option<(Vec<f64>, f64, usize)> = None;
    for init in [
        InitStrategy::GreedyAligned(1.0),
        InitStrategy::GreedyAligned(0.4),
        InitStrategy::GreedyAligned(2.5),
        InitStrategy::GreedyAligned(0.0),
        InitStrategy::Proportional,
    ] {
        let mut x = initial_point(problem, &workspace.members, &workspace.coupled, init);
        let mut active = vec![true; problem.budgets.len()];
        let (objective, passes) = ascend(problem, &workspace, &mut x, options, &mut active);
        if best.as_ref().is_none_or(|(_, obj, _)| objective > *obj) {
            best = Some((x, objective, passes));
        }
    }
    let (values, objective, passes) = best.expect("at least one initialisation runs");

    StructuredSolution {
        values,
        objective,
        passes,
    }
}

/// Solves the min-coupling problem warm-started from a prior solution.
///
/// Surviving variables take their prior values, the point is projected onto
/// the per-group capped-simplex budgets, and the worklist ascent starts with
/// only the changed neighbourhood active: `warm.dirty_groups`, groups with
/// new (unmapped) variables, and groups the projection had to move. When the
/// prior solution is still feasible and nothing is dirty, the solve returns
/// it verbatim in zero passes.
///
/// The warm solve is a *single-start* ascent from the prior point — much
/// cheaper than the multi-start cold solve, and in practice equally good when
/// the delta is small — but it is not guaranteed to land on the same local
/// optimum as [`solve_min_coupling`]. Callers that need bit-identical
/// warm/cold results must instead reuse solutions of *unchanged* subproblems
/// verbatim (as `svgic-engine` does with its component cache) and cold-solve
/// the changed ones.
///
/// # Panics
/// Panics on the same infeasibilities as [`solve_min_coupling`], or when
/// `warm.var_map` has the wrong length or maps outside `warm.prior`.
pub fn solve_min_coupling_warm(
    problem: &MinCouplingProblem,
    options: &CoordinateAscentOptions,
    warm: &WarmStart<'_>,
) -> StructuredSolution {
    let n = problem.num_variables();
    assert_eq!(warm.var_map.len(), n, "var_map must cover every variable");
    let workspace = build_workspace(problem);
    let num_groups = problem.budgets.len();

    let mut x = vec![0.0; n];
    let mut active = vec![false; num_groups];
    for (i, mapped) in warm.var_map.iter().enumerate() {
        match mapped {
            Some(old) => {
                assert!(*old < warm.prior.len(), "var_map outside prior solution");
                x[i] = warm.prior[*old].clamp(0.0, 1.0);
            }
            None => active[problem.group_of[i]] = true,
        }
    }
    for &g in warm.dirty_groups {
        assert!(g < num_groups, "dirty group {g} out of range");
        active[g] = true;
    }
    // Restore feasibility; any group the projection had to move is active.
    for (g, members) in workspace.members.iter().enumerate() {
        let moved = project_group(&mut x, members, problem.budgets[g]);
        if moved > options.activation_epsilon {
            active[g] = true;
        }
    }

    let (objective, passes) = ascend(problem, &workspace, &mut x, options, &mut active);
    StructuredSolution {
        values: x,
        objective,
        passes,
    }
}

/// Projects `values` onto the feasible region (per-group capped simplices):
/// every coordinate clamped to `[0, 1]` and every group's coordinates summing
/// to its budget, moving the point as little as possible (per-group Euclidean
/// projection). Already-feasible points are returned unchanged.
///
/// # Panics
/// Panics if `values` has the wrong length or the problem itself is
/// infeasible (a group budget exceeding its variable count).
pub fn project_onto_budgets(problem: &MinCouplingProblem, values: &mut [f64]) {
    assert_eq!(values.len(), problem.num_variables());
    let workspace = build_workspace(problem);
    for (g, members) in workspace.members.iter().enumerate() {
        project_group(values, members, problem.budgets[g]);
    }
}

/// Euclidean projection of one group onto `{0 ≤ x ≤ 1, Σ x = budget}`: the
/// projection is `x_i ↦ clamp(x_i + t)` for the shift `t` making the sum hit
/// the budget (found by bisection — `Σ clamp(x_i + t)` is monotone in `t`).
/// Returns the largest per-coordinate move.
fn project_group(x: &mut [f64], members: &[usize], budget: f64) -> f64 {
    if members.is_empty() {
        return 0.0;
    }
    let mut moved = 0.0f64;
    for &i in members {
        let clamped = x[i].clamp(0.0, 1.0);
        moved = moved.max((clamped - x[i]).abs());
        x[i] = clamped;
    }
    let sum: f64 = members.iter().map(|&i| x[i]).sum();
    if (sum - budget).abs() <= 1e-12 * (1.0 + budget) {
        return moved;
    }
    let (mut lo, mut hi) = (-1.0f64, 1.0f64);
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        let shifted: f64 = members.iter().map(|&i| (x[i] + mid).clamp(0.0, 1.0)).sum();
        if shifted < budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let t = 0.5 * (lo + hi);
    for &i in members {
        let shifted = (x[i] + t).clamp(0.0, 1.0);
        moved = moved.max((shifted - x[i]).abs());
        x[i] = shifted;
    }
    moved
}

#[derive(Clone, Copy)]
enum InitStrategy {
    /// Greedy vertex where each variable is scored as
    /// `linear + multiplier · Σ partner weights`.
    GreedyAligned(f64),
    Proportional,
}

/// Builds a feasible starting point for the block-coordinate ascent.
fn initial_point(
    problem: &MinCouplingProblem,
    members: &[Vec<usize>],
    coupled: &[Vec<(usize, f64)>],
    strategy: InitStrategy,
) -> Vec<f64> {
    let n = problem.num_variables();
    let mut x = vec![0.0; n];
    match strategy {
        InitStrategy::Proportional => {
            for (g, m) in members.iter().enumerate() {
                if m.is_empty() {
                    continue;
                }
                let v = (problem.budgets[g] / m.len() as f64).clamp(0.0, 1.0);
                for &i in m {
                    x[i] = v;
                }
            }
        }
        InitStrategy::GreedyAligned(multiplier) => {
            for (g, m) in members.iter().enumerate() {
                if m.is_empty() {
                    continue;
                }
                // Score every variable as if all partners were fully selected,
                // weighting the optimistic social part by `multiplier`.
                let mut scored: Vec<(f64, usize)> = m
                    .iter()
                    .map(|&i| {
                        let social: f64 = coupled[i].iter().map(|&(_, w)| w).sum();
                        (problem.linear[i] + multiplier * social, i)
                    })
                    .collect();
                scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
                let mut budget = problem.budgets[g].min(m.len() as f64);
                for (_, i) in scored {
                    if budget <= 1e-12 {
                        break;
                    }
                    let take = budget.min(1.0);
                    x[i] = take;
                    budget -= take;
                }
            }
        }
    }
    x
}

/// Exactly maximises the group's separable concave piecewise-linear objective
/// under `Σ x_i = budget`, `0 ≤ x_i ≤ 1`, with all other variables fixed.
/// Returns the largest per-variable move, which drives active-group tracking.
fn optimize_group(
    problem: &MinCouplingProblem,
    coupled: &[Vec<(usize, f64)>],
    x: &mut [f64],
    members: &[usize],
    budget: f64,
) -> f64 {
    // Build the slope segments of every member's concave gain function
    //   f_i(z) = a_i z + Σ_j w_ij min(z, t_j),   t_j = x[partner_j] (fixed).
    // Breakpoints are the partner values; slopes are non-increasing in z.
    #[derive(Clone, Copy)]
    struct Segment {
        var_pos: usize, // index into `members`
        start: f64,
        length: f64,
        slope: f64,
    }
    let mut segments: Vec<Segment> = Vec::new();
    for (pos, &i) in members.iter().enumerate() {
        // Collect partner thresholds in (0, 1], ignoring partners inside the
        // same group only in the sense that their *current* value is used
        // (never happens in SVGIC where couplings connect different users).
        let mut thresholds: Vec<(f64, f64)> = coupled[i]
            .iter()
            .map(|&(j, w)| (x[j].clamp(0.0, 1.0), w))
            .filter(|&(t, w)| t > 0.0 && w > 0.0)
            .collect();
        thresholds.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Sweep the breakpoints building segments with their slopes.
        let total_coupling: f64 = thresholds.iter().map(|&(_, w)| w).sum();
        let mut prev = 0.0;
        let mut remaining = total_coupling;
        let mut idx = 0usize;
        while prev < 1.0 - 1e-15 {
            // Advance over thresholds equal to `prev`.
            while idx < thresholds.len() && thresholds[idx].0 <= prev + 1e-15 {
                remaining -= thresholds[idx].1;
                idx += 1;
            }
            let next = if idx < thresholds.len() {
                thresholds[idx].0.min(1.0)
            } else {
                1.0
            };
            if next > prev + 1e-15 {
                segments.push(Segment {
                    var_pos: pos,
                    start: prev,
                    length: next - prev,
                    slope: problem.linear[i] + remaining.max(0.0),
                });
            }
            prev = next;
        }
        if segments.last().map(|s| s.var_pos) != Some(pos) && 1.0 > 0.0 {
            // Variable with no segments (shouldn't happen) — add a trivial one.
            segments.push(Segment {
                var_pos: pos,
                start: 0.0,
                length: 1.0,
                slope: problem.linear[i],
            });
        }
    }
    // Water-filling: allocate `budget` mass to segments in decreasing slope.
    // Because each variable's slopes are non-increasing, filling in global
    // slope order never fills a later segment of a variable before an earlier
    // one (ties are resolved by segment start, which preserves the invariant).
    segments.sort_by(|a, b| {
        b.slope
            .partial_cmp(&a.slope)
            .unwrap()
            .then(a.start.partial_cmp(&b.start).unwrap())
            .then(a.var_pos.cmp(&b.var_pos))
    });
    let mut alloc = vec![0.0f64; members.len()];
    let mut remaining_budget = budget.min(members.len() as f64);
    for seg in &segments {
        if remaining_budget <= 1e-12 {
            break;
        }
        // Only fill this segment once the variable has reached its start
        // (guaranteed by the ordering; guard anyway for numerical safety).
        let already = alloc[seg.var_pos];
        if already + 1e-12 < seg.start {
            continue;
        }
        let capacity = (seg.start + seg.length - already).max(0.0);
        let take = capacity.min(remaining_budget);
        alloc[seg.var_pos] += take;
        remaining_budget -= take;
    }
    // Any residual budget (numerical) is spread over variables with headroom.
    if remaining_budget > 1e-9 {
        for a in alloc.iter_mut() {
            if remaining_budget <= 1e-12 {
                break;
            }
            let take = (1.0 - *a).min(remaining_budget);
            *a += take;
            remaining_budget -= take;
        }
    }
    let mut moved = 0.0f64;
    for (pos, &i) in members.iter().enumerate() {
        let new = alloc[pos].clamp(0.0, 1.0);
        moved = moved.max((new - x[i]).abs());
        x[i] = new;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinearProgram};
    use crate::simplex::{solve_lp, SimplexOptions};

    /// Builds the equivalent explicit LP (with y variables) for cross-checking.
    fn to_explicit_lp(p: &MinCouplingProblem) -> LinearProgram {
        let mut lp = LinearProgram::new();
        let xs: Vec<_> = p.linear.iter().map(|&a| lp.add_unit_var(a, None)).collect();
        for t in &p.couplings {
            let y = lp.add_unit_var(t.weight, None);
            lp.add_constraint(
                vec![(y, 1.0), (xs[t.first], -1.0)],
                ConstraintSense::LessEq,
                0.0,
                None,
            );
            lp.add_constraint(
                vec![(y, 1.0), (xs[t.second], -1.0)],
                ConstraintSense::LessEq,
                0.0,
                None,
            );
        }
        for (g, &b) in p.budgets.iter().enumerate() {
            let terms: Vec<_> = xs
                .iter()
                .enumerate()
                .filter(|&(i, _)| p.group_of[i] == g)
                .map(|(_, &v)| (v, 1.0))
                .collect();
            lp.add_constraint(terms, ConstraintSense::Equal, b, None);
        }
        lp
    }

    #[test]
    fn pure_linear_problem_picks_top_items() {
        // One group (user), budget 2, four items with distinct preferences.
        let mut p = MinCouplingProblem::new(vec![2.0]);
        for &a in &[0.1, 0.9, 0.5, 0.7] {
            p.add_variable(0, a);
        }
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(p.is_feasible(&sol.values, 1e-6));
        assert!((sol.objective - 1.6).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
        assert!((sol.values[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn coupling_pulls_friends_to_common_item() {
        // Two users, two items, k = 1.  Preferences slightly favour different
        // items but a large social weight on item 0 makes sharing optimal.
        let mut p = MinCouplingProblem::new(vec![1.0, 1.0]);
        let a0 = p.add_variable(0, 0.3); // user A, item 0
        let a1 = p.add_variable(0, 0.4); // user A, item 1
        let b0 = p.add_variable(1, 0.3); // user B, item 0
        let b1 = p.add_variable(1, 0.4); // user B, item 1
        p.add_coupling(a0, b0, 1.0);
        p.add_coupling(a1, b1, 0.0); // dropped (zero weight)
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(p.is_feasible(&sol.values, 1e-6));
        // Optimal: both take item 0 => 0.3 + 0.3 + 1.0 = 1.6.
        assert!(
            (sol.objective - 1.6).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!(sol.values[a0] > 0.99 && sol.values[b0] > 0.99);
        assert_eq!(p.couplings.len(), 1);
        let _ = (a1, b1);
    }

    #[test]
    fn matches_exact_simplex_on_small_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for trial in 0..12 {
            let users = 3 + trial % 3; // 3..5 users
            let items = 3 + trial % 4; // 3..6 items
            let k = 1 + trial % 2; // budget 1..2
            let mut p = MinCouplingProblem::new(vec![k as f64; users]);
            let mut var = vec![vec![0usize; items]; users];
            for (u, row) in var.iter_mut().enumerate() {
                for (c, slot) in row.iter_mut().enumerate() {
                    let _ = c;
                    *slot = p.add_variable(u, rng.gen::<f64>());
                }
            }
            // Random friend pairs with random per-item social weights.
            for u in 0..users {
                for v in (u + 1)..users {
                    if rng.gen::<f64>() < 0.6 {
                        for (&xu, &xv) in var[u].iter().zip(var[v].iter()) {
                            p.add_coupling(xu, xv, rng.gen::<f64>());
                        }
                    }
                }
            }
            let approx = solve_min_coupling(&p, &CoordinateAscentOptions::default());
            assert!(
                p.is_feasible(&approx.values, 1e-6),
                "trial {trial} infeasible"
            );
            let exact = solve_lp(&to_explicit_lp(&p), &SimplexOptions::default()).unwrap();
            assert!(
                approx.objective >= 0.85 * exact.objective - 1e-9,
                "trial {trial}: coordinate ascent {} vs exact {}",
                approx.objective,
                exact.objective
            );
            assert!(approx.objective <= exact.objective + 1e-6);
        }
    }

    #[test]
    fn uniform_indifference_keeps_fractional_spread() {
        // The Lemma 3 instance: every user indifferent among all items, strong
        // symmetric coupling.  Any budget-respecting solution with aligned mass
        // is optimal; x_i = k/m must be feasible and the solver must not break
        // feasibility.
        let users = 4;
        let items = 5;
        let k = 2.0;
        let mut p = MinCouplingProblem::new(vec![k; users]);
        let mut var = vec![vec![0usize; items]; users];
        for (u, row) in var.iter_mut().enumerate() {
            for slot in row.iter_mut() {
                *slot = p.add_variable(u, 0.0);
            }
        }
        for u in 0..users {
            for v in (u + 1)..users {
                for (&xu, &xv) in var[u].iter().zip(var[v].iter()) {
                    p.add_coupling(xu, xv, 1.0);
                }
            }
        }
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(p.is_feasible(&sol.values, 1e-6));
        // Upper bound: every pair shares k full items => C(4,2) * k = 12.
        assert!(sol.objective <= 12.0 + 1e-6);
        assert!(sol.objective >= 11.0, "objective {}", sol.objective);
    }

    #[test]
    fn budget_equal_to_group_size_saturates() {
        let mut p = MinCouplingProblem::new(vec![3.0]);
        for _ in 0..3 {
            p.add_variable(0, 0.2);
        }
        let sol = solve_min_coupling(&p, &CoordinateAscentOptions::default());
        assert!(sol.values.iter().all(|&v| (v - 1.0).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn over_budget_group_panics() {
        let mut p = MinCouplingProblem::new(vec![4.0]);
        p.add_variable(0, 0.2);
        p.add_variable(0, 0.2);
        let _ = solve_min_coupling(&p, &CoordinateAscentOptions::default());
    }

    /// Builds a random multi-user instance for the warm-start tests.
    fn random_problem(seed: u64, users: usize, items: usize, k: usize) -> MinCouplingProblem {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut p = MinCouplingProblem::new(vec![k as f64; users]);
        let mut var = vec![vec![0usize; items]; users];
        for (u, row) in var.iter_mut().enumerate() {
            for slot in row.iter_mut() {
                *slot = p.add_variable(u, rng.gen::<f64>());
            }
        }
        for u in 0..users {
            for v in (u + 1)..users {
                if rng.gen::<f64>() < 0.5 {
                    for (&xu, &xv) in var[u].iter().zip(var[v].iter()) {
                        p.add_coupling(xu, xv, rng.gen::<f64>());
                    }
                }
            }
        }
        p
    }

    #[test]
    fn warm_start_of_unchanged_problem_is_a_zero_pass_reuse() {
        let p = random_problem(3, 5, 4, 2);
        let options = CoordinateAscentOptions::default();
        let cold = solve_min_coupling(&p, &options);
        let var_map: Vec<Option<usize>> = (0..p.num_variables()).map(Some).collect();
        let warm = solve_min_coupling_warm(
            &p,
            &options,
            &WarmStart {
                prior: &cold.values,
                var_map: &var_map,
                dirty_groups: &[],
            },
        );
        // Nothing changed: the prior is feasible, nothing is dirty, so the
        // worklist never fills and the prior comes back verbatim.
        assert_eq!(warm.passes, 0);
        assert_eq!(warm.values, cold.values);
        assert!((warm.objective - cold.objective).abs() < 1e-12);
    }

    #[test]
    fn warm_start_after_user_removal_is_feasible_and_good() {
        let options = CoordinateAscentOptions::default();
        for seed in 0..8u64 {
            let users = 4 + (seed as usize) % 3;
            let items = 4;
            let k = 2;
            let full = random_problem(seed, users, items, k);
            let cold_full = solve_min_coupling(&full, &options);

            // Remove the last user: rebuild the problem without their
            // variables and remap the survivors.
            let removed = users - 1;
            let mut reduced = MinCouplingProblem::new(vec![k as f64; users - 1]);
            let mut var_map = Vec::new();
            let mut old_to_new = vec![None; full.num_variables()];
            for (i, &g) in full.group_of.iter().enumerate() {
                if g == removed {
                    continue;
                }
                let new = reduced.add_variable(g, full.linear[i]);
                var_map.push(Some(i));
                old_to_new[i] = Some(new);
            }
            let mut dirty = std::collections::BTreeSet::new();
            for t in &full.couplings {
                match (old_to_new[t.first], old_to_new[t.second]) {
                    (Some(a), Some(b)) => reduced.add_coupling(a, b, t.weight),
                    // A coupling lost its partner: the surviving side's group
                    // must re-optimise.
                    (Some(a), None) => {
                        dirty.insert(reduced.group_of[a]);
                    }
                    (None, Some(b)) => {
                        dirty.insert(reduced.group_of[b]);
                    }
                    (None, None) => {}
                }
            }
            let dirty: Vec<usize> = dirty.into_iter().collect();

            let warm = solve_min_coupling_warm(
                &reduced,
                &options,
                &WarmStart {
                    prior: &cold_full.values,
                    var_map: &var_map,
                    dirty_groups: &dirty,
                },
            );
            let cold = solve_min_coupling(&reduced, &options);
            assert!(
                reduced.is_feasible(&warm.values, 1e-6),
                "seed {seed}: warm solution infeasible"
            );
            // The warm path is a single-start ascent, so it can settle in a
            // slightly different local optimum than the multi-start cold
            // solve; hold it to the same β-approximation band the cold
            // solver itself is held to against the exact simplex.
            assert!(
                warm.objective >= 0.85 * cold.objective - 1e-9,
                "seed {seed}: warm {} vs cold {}",
                warm.objective,
                cold.objective
            );
        }
    }

    #[test]
    fn projection_restores_budgets_and_leaves_feasible_points_alone() {
        let mut p = MinCouplingProblem::new(vec![2.0, 1.0]);
        for _ in 0..3 {
            p.add_variable(0, 0.5);
        }
        for _ in 0..2 {
            p.add_variable(1, 0.5);
        }
        // Infeasible: group 0 sums to 2.9 (and has an out-of-box value),
        // group 1 sums to 0.2.
        let mut values = vec![1.4, 0.9, 0.6, 0.1, 0.1];
        project_onto_budgets(&p, &mut values);
        assert!(p.is_feasible(&values, 1e-9), "projected point {values:?}");
        // Already feasible: untouched.
        let feasible = vec![1.0, 0.5, 0.5, 0.6, 0.4];
        let mut copy = feasible.clone();
        project_onto_budgets(&p, &mut copy);
        for (a, b) in copy.iter().zip(&feasible) {
            assert!((a - b).abs() < 1e-9);
        }
        // Degenerate budgets project to the corners.
        let mut q = MinCouplingProblem::new(vec![0.0, 2.0]);
        q.add_variable(0, 0.1);
        q.add_variable(1, 0.1);
        q.add_variable(1, 0.1);
        let mut values = vec![0.7, 0.2, 0.3];
        project_onto_budgets(&q, &mut values);
        assert!(values[0].abs() < 1e-9);
        assert!((values[1] - 1.0).abs() < 1e-9 && (values[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn worklist_skips_converged_groups() {
        // Two independent components; warm-start with only one marked dirty.
        // The ascent must converge without ever touching the clean component.
        let mut p = MinCouplingProblem::new(vec![1.0, 1.0, 1.0, 1.0]);
        let a0 = p.add_variable(0, 0.9);
        let _a1 = p.add_variable(0, 0.1);
        let b0 = p.add_variable(1, 0.8);
        let _b1 = p.add_variable(1, 0.2);
        p.add_coupling(a0, b0, 1.0);
        let c0 = p.add_variable(2, 0.3);
        let _c1 = p.add_variable(2, 0.7);
        let d0 = p.add_variable(3, 0.4);
        let _d1 = p.add_variable(3, 0.6);
        p.add_coupling(c0, d0, 2.0);
        let options = CoordinateAscentOptions::default();
        let cold = solve_min_coupling(&p, &options);
        // Perturb the clean component's values in a budget-preserving way that
        // is *not* a best response (group 2 facing d0 = 0 strictly prefers
        // c1): if the worklist ever visited group 2 it would move. Since its
        // groups are not dirty and its neighbours never change, the ascent
        // must leave it exactly as given.
        let mut prior = cold.values.clone();
        prior[4] = 1.0; // c0
        prior[5] = 0.0; // c1
        prior[6] = 0.0; // d0
        prior[7] = 1.0; // d1
        let var_map: Vec<Option<usize>> = (0..p.num_variables()).map(Some).collect();
        let warm = solve_min_coupling_warm(
            &p,
            &options,
            &WarmStart {
                prior: &prior,
                var_map: &var_map,
                dirty_groups: &[0],
            },
        );
        assert_eq!(
            &warm.values[4..8],
            &prior[4..8],
            "clean component must not be revisited"
        );
        assert!(p.is_feasible(&warm.values, 1e-9));
    }

    #[test]
    fn objective_evaluation() {
        let mut p = MinCouplingProblem::new(vec![1.0, 1.0]);
        let a = p.add_variable(0, 2.0);
        let b = p.add_variable(1, 3.0);
        p.add_coupling(a, b, 4.0);
        assert!((p.objective(&[1.0, 0.5]) - (2.0 + 1.5 + 2.0)).abs() < 1e-12);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 1.0], 1e-9));
    }
}
