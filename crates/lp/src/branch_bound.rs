//! Branch & bound MILP solver on top of the simplex.
//!
//! Serves two purposes in the reproduction:
//!
//! * it is the "IP" baseline that the paper obtains from Gurobi on small
//!   instances (Fig. 3, Fig. 5), and
//! * its pluggable [`NodeSelection`] strategies stand in for the different
//!   commercial MIP strategies compared in Fig. 9(a) (primal-first,
//!   dual-first, concurrent, deterministic-concurrent, barrier) — the figure's
//!   point being that *no* time-boxed exact strategy matches AVG-D, which is
//!   reproduced by time-boxing these strategies.

use crate::model::{LinearProgram, Solution, VarId};
use crate::simplex::{solve_lp, SimplexError, SimplexOptions};
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

/// Node-selection / exploration strategy for branch & bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeSelection {
    /// Depth-first search: dives to integral solutions quickly
    /// (stand-in for "primal-first" MIP strategies).
    DepthFirst,
    /// Best-bound first: always expands the node with the best LP bound
    /// (stand-in for "dual-first" strategies).
    BestBound,
    /// Alternates between depth-first dives and best-bound expansions
    /// (stand-in for "concurrent" strategies).
    Hybrid,
    /// Hybrid with a fixed alternation period (stand-in for the
    /// "deterministic concurrent" strategy).
    DeterministicHybrid,
    /// Best-bound with periodic restarts from the incumbent
    /// (stand-in for barrier/interior-point warm-started strategies).
    RestartBestBound,
}

/// Configuration of the branch & bound search.
#[derive(Clone, Debug)]
pub struct BranchBoundConfig {
    /// Node-selection strategy.
    pub node_selection: NodeSelection,
    /// Wall-clock budget; the best incumbent found so far is returned when it
    /// is exhausted.
    pub time_limit: Option<Duration>,
    /// Maximum number of explored nodes.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub integrality_tol: f64,
    /// Simplex options used for node relaxations.
    pub simplex: SimplexOptions,
}

impl Default for BranchBoundConfig {
    fn default() -> Self {
        Self {
            node_selection: NodeSelection::Hybrid,
            time_limit: None,
            max_nodes: 100_000,
            integrality_tol: 1e-6,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Termination status of a MILP solve.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MilpStatus {
    /// The returned solution is optimal.
    Optimal,
    /// The search was cut short (time or node limit); the returned solution is
    /// the best incumbent found, `best_bound` bounds the optimum from above.
    Feasible,
    /// No feasible integer solution exists.
    Infeasible,
    /// The search was cut short before any incumbent was found.
    Unknown,
}

/// Result of a MILP solve.
#[derive(Clone, Debug)]
pub struct MilpResult {
    /// Best integer-feasible solution found (if any).
    pub solution: Option<Solution>,
    /// Upper bound on the optimal objective (maximisation).
    pub best_bound: f64,
    /// Termination status.
    pub status: MilpStatus,
    /// Number of explored branch & bound nodes.
    pub nodes_explored: usize,
}

impl MilpResult {
    /// Objective of the incumbent, or negative infinity if none exists.
    pub fn objective(&self) -> f64 {
        self.solution
            .as_ref()
            .map(|s| s.objective)
            .unwrap_or(f64::NEG_INFINITY)
    }
}

#[derive(Clone)]
struct Node {
    /// Per-variable bound overrides `(var, lower, upper)`.
    fixings: Vec<(VarId, f64, f64)>,
    /// LP bound of the parent (used as priority before the node is solved).
    parent_bound: f64,
    depth: usize,
}

struct HeapEntry {
    bound: f64,
    order: usize,
    node: Node,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.order == other.order
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on bound, ties broken towards older nodes for determinism.
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.order.cmp(&self.order))
    }
}

/// Solves the mixed-integer program `lp` (maximisation) by branch & bound.
pub fn solve_milp(lp: &LinearProgram, config: &BranchBoundConfig) -> MilpResult {
    // lint: allow(wall-clock, drives the opt-in time_limit cutoff only; None by default and never set on serving paths)
    let start = Instant::now();
    let int_vars = lp.integer_variables();
    // Pure LP: a single simplex call suffices.
    if int_vars.is_empty() {
        return match solve_lp(lp, &config.simplex) {
            Ok(sol) => MilpResult {
                best_bound: sol.objective,
                solution: Some(sol),
                status: MilpStatus::Optimal,
                nodes_explored: 1,
            },
            Err(SimplexError::Infeasible) => MilpResult {
                solution: None,
                best_bound: f64::NEG_INFINITY,
                status: MilpStatus::Infeasible,
                nodes_explored: 1,
            },
            Err(_) => MilpResult {
                solution: None,
                best_bound: f64::INFINITY,
                status: MilpStatus::Unknown,
                nodes_explored: 1,
            },
        };
    }

    let mut incumbent: Option<Solution> = None;
    let mut nodes_explored = 0usize;
    let mut stack: Vec<Node> = Vec::new(); // DFS pool
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new(); // best-bound pool
    let mut order = 0usize;
    let root = Node {
        fixings: Vec::new(),
        parent_bound: f64::INFINITY,
        depth: 0,
    };
    stack.push(root.clone());
    heap.push(HeapEntry {
        bound: f64::INFINITY,
        order,
        node: root,
    });
    order += 1;
    let mut root_bound = f64::INFINITY;
    let mut exhausted = false;

    let use_heap = |sel: NodeSelection, step: usize| -> bool {
        match sel {
            NodeSelection::DepthFirst => false,
            NodeSelection::BestBound | NodeSelection::RestartBestBound => true,
            NodeSelection::Hybrid => step.is_multiple_of(2),
            NodeSelection::DeterministicHybrid => step % 4 < 2,
        }
    };

    loop {
        if let Some(limit) = config.time_limit {
            if start.elapsed() >= limit {
                break;
            }
        }
        if nodes_explored >= config.max_nodes {
            break;
        }
        // Pick the next node; both pools hold every pending node conceptually,
        // but to keep things simple each node lives in exactly one pool chosen
        // at push time, and we exhaust the other when one runs dry.
        let node = if use_heap(config.node_selection, nodes_explored) {
            heap.pop().map(|e| e.node).or_else(|| stack.pop())
        } else {
            stack.pop().or_else(|| heap.pop().map(|e| e.node))
        };
        let Some(node) = node else {
            exhausted = true;
            break;
        };
        // Prune by parent bound.
        if let Some(inc) = &incumbent {
            if node.parent_bound <= inc.objective + 1e-9 {
                continue;
            }
        }
        nodes_explored += 1;

        // Solve the node relaxation.
        let mut relaxed = lp.relaxed();
        for &(v, lo, hi) in &node.fixings {
            relaxed.set_bounds(v, lo, hi);
        }
        let sol = match solve_lp(&relaxed, &config.simplex) {
            Ok(s) => s,
            Err(SimplexError::Infeasible) => continue,
            Err(_) => continue,
        };
        if node.depth == 0 {
            root_bound = sol.objective;
        }
        if let Some(inc) = &incumbent {
            if sol.objective <= inc.objective + 1e-9 {
                continue; // prune
            }
        }
        // Find the most fractional integer variable.
        let mut branch_var: Option<(VarId, f64)> = None;
        let mut best_frac_dist = config.integrality_tol;
        for &v in &int_vars {
            let x = sol.values[v];
            let dist = (x - x.round()).abs();
            if dist > best_frac_dist {
                let score = (x - x.floor() - 0.5).abs();
                match branch_var {
                    Some((_, best_score)) if score >= best_score => {}
                    _ => branch_var = Some((v, score)),
                }
                best_frac_dist = best_frac_dist.max(config.integrality_tol);
            }
        }
        match branch_var {
            None => {
                // Integral solution: round the integer entries exactly and keep
                // as incumbent if it improves.
                let mut values = sol.values.clone();
                for &v in &int_vars {
                    values[v] = values[v].round();
                }
                let objective = lp.objective_value(&values);
                if lp.is_feasible(&values, 1e-5)
                    && incumbent
                        .as_ref()
                        .is_none_or(|inc| objective > inc.objective + 1e-12)
                {
                    incumbent = Some(Solution { values, objective });
                }
            }
            Some((v, _)) => {
                let x = sol.values[v];
                let floor = x.floor();
                let ceil = x.ceil();
                let var = lp.variable(v);
                // Child 1: x_v <= floor.
                if floor >= var.lower - 1e-12 {
                    let mut fixings = node.fixings.clone();
                    fixings.push((v, var.lower, floor));
                    let child = Node {
                        fixings,
                        parent_bound: sol.objective,
                        depth: node.depth + 1,
                    };
                    if use_heap(config.node_selection, nodes_explored) {
                        heap.push(HeapEntry {
                            bound: sol.objective,
                            order,
                            node: child,
                        });
                    } else {
                        stack.push(child);
                    }
                    order += 1;
                }
                // Child 2: x_v >= ceil.
                if ceil <= var.upper + 1e-12 {
                    let mut fixings = node.fixings.clone();
                    fixings.push((v, ceil, var.upper));
                    let child = Node {
                        fixings,
                        parent_bound: sol.objective,
                        depth: node.depth + 1,
                    };
                    if use_heap(config.node_selection, nodes_explored + 1) {
                        heap.push(HeapEntry {
                            bound: sol.objective,
                            order,
                            node: child,
                        });
                    } else {
                        stack.push(child);
                    }
                    order += 1;
                }
            }
        }
    }

    let best_bound = if exhausted {
        incumbent
            .as_ref()
            .map(|s| s.objective)
            .unwrap_or(f64::NEG_INFINITY)
    } else {
        root_bound
    };
    let status = match (&incumbent, exhausted) {
        (Some(_), true) => MilpStatus::Optimal,
        (Some(_), false) => MilpStatus::Feasible,
        // Whether any node's LP was feasible, integrality was never attained:
        // the MILP is infeasible either way once the tree is exhausted.
        (None, true) => MilpStatus::Infeasible,
        (None, false) => MilpStatus::Unknown,
    };
    MilpResult {
        solution: incumbent,
        best_bound,
        status,
        nodes_explored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ConstraintSense, LinearProgram};

    /// 0/1 knapsack: max 10a + 13b + 7c, 3a + 4b + 2c <= 6  => a + c = 17.
    fn knapsack() -> LinearProgram {
        let mut lp = LinearProgram::new();
        let a = lp.add_binary_var(10.0, Some("a".into()));
        let b = lp.add_binary_var(13.0, Some("b".into()));
        let c = lp.add_binary_var(7.0, Some("c".into()));
        lp.add_constraint(
            vec![(a, 3.0), (b, 4.0), (c, 2.0)],
            ConstraintSense::LessEq,
            6.0,
            None,
        );
        lp
    }

    #[test]
    fn knapsack_optimum_for_every_strategy() {
        for strategy in [
            NodeSelection::DepthFirst,
            NodeSelection::BestBound,
            NodeSelection::Hybrid,
            NodeSelection::DeterministicHybrid,
            NodeSelection::RestartBestBound,
        ] {
            let lp = knapsack();
            let res = solve_milp(
                &lp,
                &BranchBoundConfig {
                    node_selection: strategy,
                    ..Default::default()
                },
            );
            assert_eq!(res.status, MilpStatus::Optimal, "{strategy:?}");
            assert!(
                (res.objective() - 20.0).abs() < 1e-6,
                "{strategy:?}: {}",
                res.objective()
            );
            let sol = res.solution.unwrap();
            assert!((sol.values[1] - 1.0).abs() < 1e-6);
            assert!((sol.values[2] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn pure_lp_short_circuits() {
        let mut lp = LinearProgram::new();
        let x = lp.add_unit_var(2.0, None);
        lp.add_constraint(vec![(x, 1.0)], ConstraintSense::LessEq, 0.5, None);
        let res = solve_milp(&lp, &BranchBoundConfig::default());
        assert_eq!(res.status, MilpStatus::Optimal);
        assert!((res.objective() - 1.0).abs() < 1e-6);
        assert_eq!(res.nodes_explored, 1);
    }

    #[test]
    fn infeasible_milp() {
        let mut lp = LinearProgram::new();
        let x = lp.add_binary_var(1.0, None);
        let y = lp.add_binary_var(1.0, None);
        lp.add_constraint(
            vec![(x, 1.0), (y, 1.0)],
            ConstraintSense::GreaterEq,
            3.0,
            None,
        );
        let res = solve_milp(&lp, &BranchBoundConfig::default());
        assert!(res.solution.is_none());
        assert_eq!(res.status, MilpStatus::Infeasible);
    }

    #[test]
    fn assignment_problem_is_integral() {
        // 2x2 assignment: max 5 x00 + 1 x01 + 2 x10 + 4 x11 with row/col sums = 1.
        let mut lp = LinearProgram::new();
        let x00 = lp.add_binary_var(5.0, None);
        let x01 = lp.add_binary_var(1.0, None);
        let x10 = lp.add_binary_var(2.0, None);
        let x11 = lp.add_binary_var(4.0, None);
        lp.add_constraint(
            vec![(x00, 1.0), (x01, 1.0)],
            ConstraintSense::Equal,
            1.0,
            None,
        );
        lp.add_constraint(
            vec![(x10, 1.0), (x11, 1.0)],
            ConstraintSense::Equal,
            1.0,
            None,
        );
        lp.add_constraint(
            vec![(x00, 1.0), (x10, 1.0)],
            ConstraintSense::Equal,
            1.0,
            None,
        );
        lp.add_constraint(
            vec![(x01, 1.0), (x11, 1.0)],
            ConstraintSense::Equal,
            1.0,
            None,
        );
        let res = solve_milp(&lp, &BranchBoundConfig::default());
        assert_eq!(res.status, MilpStatus::Optimal);
        assert!((res.objective() - 9.0).abs() < 1e-6);
    }

    #[test]
    fn node_limit_returns_feasible_or_unknown() {
        let lp = knapsack();
        let res = solve_milp(
            &lp,
            &BranchBoundConfig {
                max_nodes: 1,
                ..Default::default()
            },
        );
        assert!(matches!(
            res.status,
            MilpStatus::Feasible | MilpStatus::Unknown
        ));
        // The bound must still be a valid upper bound on 20.
        assert!(res.best_bound >= 20.0 - 1e-6);
    }

    #[test]
    fn time_limit_is_respected() {
        let lp = knapsack();
        let res = solve_milp(
            &lp,
            &BranchBoundConfig {
                time_limit: Some(Duration::from_millis(0)),
                ..Default::default()
            },
        );
        assert!(res.nodes_explored <= 1);
    }

    #[test]
    fn larger_knapsack_matches_dp() {
        // 8-item knapsack cross-checked against a dynamic-programming answer.
        let values = [12.0, 7.0, 9.0, 15.0, 5.0, 11.0, 3.0, 8.0];
        let weights = [4.0, 2.0, 3.0, 5.0, 1.0, 4.0, 1.0, 3.0];
        let capacity = 10.0;
        let mut lp = LinearProgram::new();
        let vars: Vec<_> = values.iter().map(|&v| lp.add_binary_var(v, None)).collect();
        lp.add_constraint(
            vars.iter().zip(weights).map(|(&v, w)| (v, w)).collect(),
            ConstraintSense::LessEq,
            capacity,
            None,
        );
        let res = solve_milp(&lp, &BranchBoundConfig::default());
        // DP over integer weights.
        let mut dp = [0.0f64; 11];
        for i in 0..values.len() {
            let w = weights[i] as usize;
            for cap in (w..=10).rev() {
                dp[cap] = dp[cap].max(dp[cap - w] + values[i]);
            }
        }
        assert_eq!(res.status, MilpStatus::Optimal);
        assert!((res.objective() - dp[10]).abs() < 1e-6);
    }
}
