//! # svgic-lp
//!
//! Linear-programming and mixed-integer-programming substrate for the SVGIC
//! reproduction.
//!
//! The paper solves its LP relaxations with commercial solvers (Gurobi /
//! CPLEX).  Those are not available in this environment, so this crate
//! implements from scratch everything the AVG / AVG-D algorithms and the exact
//! IP baseline need:
//!
//! * [`model::LinearProgram`] — a small modelling layer: bounded continuous or
//!   integer variables, sparse linear constraints, maximisation objective.
//! * [`simplex`] — a dense two-phase primal simplex solving the LP relaxation
//!   exactly (used for small and medium instances, and inside branch & bound).
//! * [`branch_bound`] — a branch-and-bound MILP solver on top of the simplex,
//!   with pluggable node-selection strategies (used as the "IP" baseline and
//!   for the time-boxed MIP-strategy comparison of Fig. 9(a)).
//! * [`structured`] — a special-purpose solver for the condensed LP_SIMP
//!   relaxation of §4.4: a block-coordinate ascent over capped per-user
//!   simplices exploiting the fact that at optimum `y*_e^c = min(x*_u^c,
//!   x*_v^c)`.  This is the "β-approximate LP" path covered by Corollary 4.2
//!   of the paper and is what makes the large-scale experiments feasible
//!   without a commercial solver.
//!
//! ## Example: warm-started structured re-solves
//!
//! The serving engine's incremental path re-solves near-identical LPs as
//! sessions churn; [`solve_min_coupling_warm`] maps a prior fractional
//! solution onto the new problem and only re-ascends the dirty
//! neighbourhood — an unchanged problem converges in **zero** passes:
//!
//! ```rust
//! use svgic_lp::{
//!     solve_min_coupling, solve_min_coupling_warm, CoordinateAscentOptions,
//!     MinCouplingProblem, WarmStart,
//! };
//!
//! // Two groups with unit budgets, four variables, one cross-group coupling.
//! let mut problem = MinCouplingProblem::new(vec![1.0, 1.0]);
//! let a = problem.add_variable(0, 2.0);
//! let b = problem.add_variable(0, 1.0);
//! let c = problem.add_variable(1, 1.5);
//! let d = problem.add_variable(1, 0.5);
//! assert_eq!((a, b, c, d), (0, 1, 2, 3));
//! problem.add_coupling(a, c, 1.0);
//!
//! let options = CoordinateAscentOptions::default();
//! let cold = solve_min_coupling(&problem, &options);
//!
//! // Identity mapping, nothing dirty: the warm start is already optimal.
//! let var_map: Vec<Option<usize>> = (0..4).map(Some).collect();
//! let warm = solve_min_coupling_warm(
//!     &problem,
//!     &options,
//!     &WarmStart { prior: &cold.values, var_map: &var_map, dirty_groups: &[] },
//! );
//! assert_eq!(warm.passes, 0, "fixed point recognised without work");
//! assert!((warm.objective - cold.objective).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod model;
pub mod simplex;
pub mod structured;

pub use branch_bound::{BranchBoundConfig, MilpResult, MilpStatus, NodeSelection};
pub use model::{Constraint, ConstraintSense, LinearProgram, Solution, VarId, VarKind};
pub use simplex::{solve_lp, SimplexError, SimplexOptions};
pub use structured::{
    project_onto_budgets, solve_min_coupling, solve_min_coupling_warm, CoordinateAscentOptions,
    CouplingTerm, MinCouplingProblem, StructuredSolution, WarmStart,
};
