//! # svgic-lp
//!
//! Linear-programming and mixed-integer-programming substrate for the SVGIC
//! reproduction.
//!
//! The paper solves its LP relaxations with commercial solvers (Gurobi /
//! CPLEX).  Those are not available in this environment, so this crate
//! implements from scratch everything the AVG / AVG-D algorithms and the exact
//! IP baseline need:
//!
//! * [`model::LinearProgram`] — a small modelling layer: bounded continuous or
//!   integer variables, sparse linear constraints, maximisation objective.
//! * [`simplex`] — a dense two-phase primal simplex solving the LP relaxation
//!   exactly (used for small and medium instances, and inside branch & bound).
//! * [`branch_bound`] — a branch-and-bound MILP solver on top of the simplex,
//!   with pluggable node-selection strategies (used as the "IP" baseline and
//!   for the time-boxed MIP-strategy comparison of Fig. 9(a)).
//! * [`structured`] — a special-purpose solver for the condensed LP_SIMP
//!   relaxation of §4.4: a block-coordinate ascent over capped per-user
//!   simplices exploiting the fact that at optimum `y*_e^c = min(x*_u^c,
//!   x*_v^c)`.  This is the "β-approximate LP" path covered by Corollary 4.2
//!   of the paper and is what makes the large-scale experiments feasible
//!   without a commercial solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod branch_bound;
pub mod model;
pub mod simplex;
pub mod structured;

pub use branch_bound::{BranchBoundConfig, MilpResult, MilpStatus, NodeSelection};
pub use model::{Constraint, ConstraintSense, LinearProgram, Solution, VarId, VarKind};
pub use simplex::{solve_lp, SimplexError, SimplexOptions};
pub use structured::{
    project_onto_budgets, solve_min_coupling, solve_min_coupling_warm, CoordinateAscentOptions,
    CouplingTerm, MinCouplingProblem, StructuredSolution, WarmStart,
};
