//! Property tests for the consistent-hash ring.
//!
//! Two contracts matter for the fabric:
//!
//! 1. **Balance** — with ≥ 64 virtual nodes, the share of a large keyspace
//!    any node receives stays within 2x of ideal (so a node join/kill never
//!    creates a hotspot by construction);
//! 2. **Minimal disruption** — removing a node remaps *only* the keys that
//!    routed to it; every other key keeps its placement. This is what makes
//!    node churn cheap: migrations and recoveries touch exactly the dead
//!    node's sessions.

use std::collections::BTreeMap;

use proptest::prelude::*;
use svgic_cluster::ring::{HashRing, NodeId};

/// A ring over node ids derived from a seed: node ids are arbitrary (not
/// dense), mirroring a cluster that has seen joins and kills.
fn ring_from(node_seed: u64, nodes: usize, vnodes: usize) -> (HashRing, Vec<NodeId>) {
    let mut ring = HashRing::new(vnodes);
    let mut ids = Vec::with_capacity(nodes);
    for index in 0..nodes as u64 {
        // Spread ids out so they are not consecutive integers.
        let id = node_seed
            .wrapping_mul(2654435761)
            .wrapping_add(index * 7919)
            % 10_000;
        let id = NodeId(id);
        if !ring.contains(id) {
            ring.add_node(id);
            ids.push(id);
        }
    }
    (ring, ids)
}

const KEYS: u64 = 4096;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn distribution_stays_within_2x_of_ideal(
        node_seed in 0u64..100_000,
        nodes in 2usize..9,
        vnodes in 64usize..193,
    ) {
        let (ring, ids) = ring_from(node_seed, nodes, vnodes);
        prop_assume!(ids.len() >= 2);
        let mut counts: BTreeMap<u64, u64> = ids.iter().map(|id| (id.0, 0)).collect();
        for key in 0..KEYS {
            let node = ring.route(key).expect("non-empty ring routes");
            *counts.get_mut(&node.0).expect("routes to a member") += 1;
        }
        let ideal = KEYS as f64 / ids.len() as f64;
        for (&node, &count) in &counts {
            let share = count as f64 / ideal;
            prop_assert!(
                share <= 2.0,
                "node {node} owns {count} of {KEYS} keys ({share:.2}x ideal) \
                 with {} nodes x {vnodes} vnodes",
                ids.len(),
            );
        }
    }

    #[test]
    fn removing_a_node_remaps_only_its_keys(
        node_seed in 0u64..100_000,
        nodes in 2usize..9,
        vnodes in 64usize..193,
        victim_index in 0usize..8,
    ) {
        let (mut ring, ids) = ring_from(node_seed, nodes, vnodes);
        prop_assume!(ids.len() >= 2);
        let victim = ids[victim_index % ids.len()];
        let before: Vec<NodeId> = (0..KEYS)
            .map(|key| ring.route(key).expect("routes"))
            .collect();
        ring.remove_node(victim);
        let mut remapped = 0u64;
        for (key, &was) in before.iter().enumerate() {
            let now = ring.route(key as u64).expect("still non-empty");
            if was == victim {
                remapped += 1;
                prop_assert_ne!(now, victim);
            } else {
                prop_assert!(
                    now == was,
                    "key {} moved from {} to {} though {} was removed",
                    key,
                    was,
                    now,
                    victim
                );
            }
        }
        // The victim owned a non-trivial share (sanity on the test itself:
        // the property above would hold vacuously for an unused node).
        prop_assert!(remapped > 0, "victim owned no keys at all");

        // Re-adding the victim restores the original routing exactly: the
        // ring is a pure function of the node set.
        ring.add_node(victim);
        for (key, &was) in before.iter().enumerate() {
            prop_assert_eq!(ring.route(key as u64).expect("routes"), was);
        }
    }

    #[test]
    fn routing_is_total_and_stable(
        node_seed in 0u64..100_000,
        nodes in 1usize..9,
        key in 0u64..u64::MAX,
    ) {
        let (ring, ids) = ring_from(node_seed, nodes, 64);
        let routed = ring.route(key).expect("non-empty ring always routes");
        prop_assert!(ids.contains(&routed));
        prop_assert_eq!(ring.route(key), Some(routed));
    }
}
