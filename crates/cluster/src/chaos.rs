//! Deterministic fault injection at the transport seam.
//!
//! The chaos engine attacks the one place every cluster interaction passes
//! through — the [`EngineTransport`] between the router and a node — so the
//! *same* seeded plan runs identically against in-process engines and
//! `svgic_net::NetClient` connections to real server processes. A
//! [`ChaosPlan`] is a list of [`FaultWindow`]s over driver ticks; a
//! [`ChaosTransport`] consults the shared [`ChaosControl`] before forwarding
//! each request and injects whatever the active windows prescribe:
//!
//! * [`ChaosFault::Partition`] — the request is *absorbed* (never reaches
//!   the node) up to the window's failure budget; the transport retries
//!   until the budget is spent and then delivers. This models a transient
//!   router↔node partition healed by retries: every request is eventually
//!   delivered **exactly once, in order**, which is the whole determinism
//!   argument — the node sees the same request sequence a fault-free run
//!   produces, so served configurations (and the config digest) are
//!   byte-identical, chaos or no chaos.
//! * [`ChaosFault::Delay`] — a slow node: each request in the window sleeps
//!   a fixed few hundred microseconds before it is forwarded. Latency
//!   changes, request order does not; digests are unaffected because no
//!   solve path reads the wall clock.
//!
//! Time is the *driver's* tick clock ([`ChaosControl::advance_to`] is called
//! at each trace tick), never wall time, so a replayed run walks the exact
//! same window schedule. Kill-during-flush (`ChaosPlan::kill_mid_flush`) is
//! driver-side: the workload driver kills the planned victim *before*
//! flushing it, pinning the pending-event conservation the staleness
//! generation guards.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use svgic_engine::transport::EngineTransport;
use svgic_engine::{EngineError, EngineRequest, EngineResponse};

/// One fault kind, active while its [`FaultWindow`] covers the current tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaosFault {
    /// Router↔node partition: absorb up to `failures` requests (each is
    /// retried by the transport, so delivery is delayed, never lost).
    Partition {
        /// Requests the window may absorb before it is spent.
        failures: u32,
    },
    /// Slow node: every request in the window sleeps `micros` before it is
    /// forwarded.
    Delay {
        /// Injected latency per request, in microseconds.
        micros: u64,
    },
}

/// A fault applied to one node slot over a half-open tick range
/// `[from_tick, until_tick)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultWindow {
    /// The target, as the node's *spawn slot*: the 0-based order in which
    /// the cluster created its backends (= ascending node id for the
    /// initial fleet). Slot identity survives kill/re-join because a
    /// resurrected backend keeps its wrapper.
    pub node_slot: usize,
    /// First tick (inclusive) the window is active.
    pub from_tick: usize,
    /// First tick (exclusive) the window is no longer active.
    pub until_tick: usize,
    /// What the window injects.
    pub fault: ChaosFault,
}

impl FaultWindow {
    fn covers(&self, slot: usize, tick: usize) -> bool {
        self.node_slot == slot && (self.from_tick..self.until_tick).contains(&tick)
    }
}

/// A seeded, replayable fault schedule. `ChaosPlan::default()` is inactive
/// (no faults, no kill-during-flush) — the zero-cost configuration every
/// existing run keeps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed the plan was generated from (0 for hand-built plans;
    /// carried for reports and replay bookkeeping).
    pub seed: u64,
    /// The fault windows, in no particular order.
    pub faults: Vec<FaultWindow>,
    /// Kill the planned kill-victim *before* flushing it, so its tick's
    /// pending events die unflushed and recovery must replay them from
    /// shadow intent exactly once.
    pub kill_mid_flush: bool,
}

impl ChaosPlan {
    /// The inactive plan (same as `default()`, spelled out for call sites).
    pub fn inactive() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// Whether the plan injects anything at all.
    pub fn is_active(&self) -> bool {
        !self.faults.is_empty() || self.kill_mid_flush
    }

    /// Generates a plan for a `nodes`-node, `ticks`-tick run from a seed —
    /// a pure function of its arguments (ChaCha8, like the engine's
    /// rounding), so the same seed replays the same schedule anywhere.
    ///
    /// The first window is always a partition (the interesting fault class:
    /// CI's kill+partition smoke relies on one being present); one or two
    /// more windows of either kind follow. Partition budgets stay small
    /// (≤ 3 absorbed requests) so the transport's bounded retry always
    /// out-lasts them.
    pub fn generate(seed: u64, nodes: usize, ticks: usize) -> ChaosPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC4A0_5CA0_5E1E_C7ED);
        let nodes = nodes.max(1);
        let ticks = ticks.max(2);
        let windows = rng.gen_range(1..=3usize);
        let mut faults = Vec::with_capacity(windows);
        for index in 0..windows {
            let node_slot = rng.gen_range(0..nodes);
            let from_tick = rng.gen_range(0..ticks - 1);
            let until_tick = rng.gen_range(from_tick + 1..=ticks);
            let fault = if index == 0 || rng.gen_bool(0.5) {
                ChaosFault::Partition {
                    failures: rng.gen_range(1..=3),
                }
            } else {
                ChaosFault::Delay {
                    micros: rng.gen_range(50..=500),
                }
            };
            faults.push(FaultWindow {
                node_slot,
                from_tick,
                until_tick,
                fault,
            });
        }
        ChaosPlan {
            seed,
            faults,
            kill_mid_flush: rng.gen_bool(0.5),
        }
    }
}

/// What injection actually happened over a run (for reports).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaosInjection {
    /// Requests absorbed by partition windows (each was retried and
    /// eventually delivered).
    pub failures: u64,
    /// Requests delayed by slow-node windows.
    pub delays: u64,
}

#[derive(Debug)]
struct ChaosState {
    tick: usize,
    /// Absorbed-failure count per plan window (indexed like `plan.faults`).
    consumed: Vec<u32>,
    injected: ChaosInjection,
    next_slot: usize,
}

/// The shared clock and budget ledger every [`ChaosTransport`] of one run
/// consults. The driver owns the tick clock ([`ChaosControl::advance_to`]);
/// the transports own nothing — which is what makes the schedule a pure
/// function of the plan and the request order.
#[derive(Debug)]
pub struct ChaosControl {
    plan: ChaosPlan,
    state: Mutex<ChaosState>,
}

/// One injection decision (internal to the transport loop).
enum Injection {
    Absorb,
    Delay(u64),
    Pass,
}

impl ChaosControl {
    /// Builds the control for a plan.
    pub fn new(plan: ChaosPlan) -> Arc<ChaosControl> {
        let consumed = vec![0; plan.faults.len()];
        Arc::new(ChaosControl {
            plan,
            state: Mutex::new(ChaosState {
                tick: 0,
                consumed,
                injected: ChaosInjection::default(),
                next_slot: 0,
            }),
        })
    }

    /// The plan this control schedules.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Moves the chaos clock to `tick` (the driver calls this at each trace
    /// tick boundary).
    pub fn advance_to(&self, tick: usize) {
        self.lock().tick = tick;
    }

    /// What was actually injected so far.
    pub fn injected(&self) -> ChaosInjection {
        self.lock().injected
    }

    /// Wraps a backend as the next node slot (call in spawn order).
    pub fn wrap<B: EngineTransport>(self: &Arc<Self>, inner: B) -> ChaosTransport<B> {
        let slot = {
            let mut state = self.lock();
            let slot = state.next_slot;
            state.next_slot += 1;
            slot
        };
        ChaosTransport {
            inner,
            slot,
            control: Arc::clone(self),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.state.lock().expect("chaos state poisoned")
    }

    /// One pre-forward decision for `slot`: absorb (a partition window with
    /// budget left), delay (the summed latency of active delay windows), or
    /// pass through.
    fn decide(&self, slot: usize) -> Injection {
        let mut state = self.lock();
        let tick = state.tick;
        for (index, window) in self.plan.faults.iter().enumerate() {
            if let ChaosFault::Partition { failures } = window.fault {
                if window.covers(slot, tick) && state.consumed[index] < failures {
                    state.consumed[index] += 1;
                    state.injected.failures += 1;
                    return Injection::Absorb;
                }
            }
        }
        let micros: u64 = self
            .plan
            .faults
            .iter()
            .filter(|window| window.covers(slot, tick))
            .map(|window| match window.fault {
                ChaosFault::Delay { micros } => micros,
                ChaosFault::Partition { .. } => 0,
            })
            .sum();
        if micros > 0 {
            state.injected.delays += 1;
            Injection::Delay(micros)
        } else {
            Injection::Pass
        }
    }
}

/// A fault-injecting [`EngineTransport`] wrapper. Transparent when no
/// window covers its slot at the current tick; otherwise absorbs or delays
/// per the plan, then forwards — every request reaches the inner transport
/// exactly once, in submission order, so the wrapped node's behaviour is
/// request-for-request identical to an unwrapped one.
pub struct ChaosTransport<B> {
    inner: B,
    slot: usize,
    control: Arc<ChaosControl>,
}

impl<B> ChaosTransport<B> {
    /// The node slot this transport injects for.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl<B: EngineTransport> EngineTransport for ChaosTransport<B> {
    fn request(&mut self, request: EngineRequest) -> Result<EngineResponse, EngineError> {
        // Absorb-and-retry until the active partition budgets are spent.
        // Budgets are capped well below this bound, so the loop always
        // falls through to delivery — faults delay requests, never drop
        // them.
        const MAX_ABSORBED: u32 = 16;
        for _ in 0..MAX_ABSORBED {
            match self.control.decide(self.slot) {
                Injection::Absorb => continue,
                Injection::Delay(micros) => {
                    std::thread::sleep(Duration::from_micros(micros));
                    break;
                }
                Injection::Pass => break,
            }
        }
        self.inner.request(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svgic_core::example::running_example;
    use svgic_engine::{CreateSession, Engine, EngineConfig};

    fn engine() -> Engine {
        Engine::new(EngineConfig {
            workers: 1,
            shards: 1,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn generated_plans_are_seed_deterministic_and_partition_first() {
        for seed in 0..20u64 {
            let a = ChaosPlan::generate(seed, 3, 8);
            let b = ChaosPlan::generate(seed, 3, 8);
            assert_eq!(a, b, "seed {seed}: generation must be pure");
            assert!(a.is_active());
            assert!((1..=3).contains(&a.faults.len()));
            assert!(
                matches!(a.faults[0].fault, ChaosFault::Partition { .. }),
                "seed {seed}: the first window is always a partition"
            );
            for window in &a.faults {
                assert!(window.from_tick < window.until_tick);
                assert!(window.node_slot < 3);
                if let ChaosFault::Partition { failures } = window.fault {
                    assert!((1..=3).contains(&failures));
                }
            }
        }
        assert_ne!(
            ChaosPlan::generate(1, 3, 8),
            ChaosPlan::generate(2, 3, 8),
            "different seeds diverge"
        );
        assert!(!ChaosPlan::inactive().is_active());
    }

    #[test]
    fn partition_windows_absorb_then_deliver_every_request() {
        let plan = ChaosPlan {
            seed: 0,
            faults: vec![FaultWindow {
                node_slot: 0,
                from_tick: 0,
                until_tick: 10,
                fault: ChaosFault::Partition { failures: 3 },
            }],
            kill_mid_flush: false,
        };
        let control = ChaosControl::new(plan);
        let mut chaotic = control.wrap(engine());
        let mut calm = engine();
        // The same request sequence through both: the chaotic transport's
        // responses (and therefore the engine state) must be identical.
        let view = chaotic
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: vec![],
                seed: 7,
            })
            .expect("faults delay, never fail");
        let calm_view = calm
            .create_session(CreateSession {
                instance: running_example(),
                initial_present: vec![],
                seed: 7,
            })
            .expect("creates");
        assert_eq!(view.configuration, calm_view.configuration);
        assert_eq!(view.utility.to_bits(), calm_view.utility.to_bits());
        assert_eq!(control.injected().failures, 3, "budget fully consumed");
        let before = control.injected().failures;
        chaotic.flush().expect("spent window passes through");
        assert_eq!(control.injected().failures, before, "budget is spent");
    }

    #[test]
    fn windows_respect_tick_and_slot_boundaries() {
        let plan = ChaosPlan {
            seed: 0,
            faults: vec![
                FaultWindow {
                    node_slot: 1,
                    from_tick: 2,
                    until_tick: 3,
                    fault: ChaosFault::Partition { failures: 2 },
                },
                FaultWindow {
                    node_slot: 0,
                    from_tick: 5,
                    until_tick: 6,
                    fault: ChaosFault::Delay { micros: 1 },
                },
            ],
            kill_mid_flush: false,
        };
        let control = ChaosControl::new(plan);
        let mut slot0 = control.wrap(engine());
        let mut slot1 = control.wrap(engine());
        assert_eq!(slot0.slot(), 0);
        assert_eq!(slot1.slot(), 1);
        // Tick 0: no window active anywhere.
        slot0.flush().expect("flushes");
        slot1.flush().expect("flushes");
        assert_eq!(control.injected(), ChaosInjection::default());
        // Tick 2: the partition hits slot 1 only.
        control.advance_to(2);
        slot0.flush().expect("flushes");
        assert_eq!(control.injected().failures, 0);
        slot1.flush().expect("flushes");
        assert_eq!(control.injected().failures, 2);
        // Tick 5: the delay hits slot 0 only.
        control.advance_to(5);
        slot1.flush().expect("flushes");
        assert_eq!(control.injected().delays, 0);
        slot0.flush().expect("flushes");
        assert_eq!(
            control.injected(),
            ChaosInjection {
                failures: 2,
                delays: 1
            }
        );
    }
}
