//! The fabric: nodes, the router, live migration, failure and recovery.
//!
//! A [`Cluster`] owns a set of nodes (each wrapping one
//! [`svgic_engine::Engine`]), a consistent-hash [`HashRing`] for initial
//! placement, and a **placement table** mapping cluster-level session keys to
//! `(node, local id)` — the ring decides where a session *starts*, the table
//! records where it *is* (rebalancing may move it off-ring). All cluster
//! traffic is keyed by the caller's `u64` session key, never by engine-local
//! ids.
//!
//! Three fabric operations beyond plain routing:
//!
//! * **Live migration** ([`Cluster::migrate_session`]) — drain the session
//!   from its node via [`svgic_engine::Engine::export_session`] and hand the
//!   export (pending events, served solution, solve generation, and the warm
//!   capital: last LP factors + fingerprint) to the destination's
//!   `import_session`. Because solve seeds derive from `(seed, generation)`
//!   and factors are byte-identical wherever computed, served configurations
//!   are **independent of topology and migration history**.
//! * **Failure + recovery** ([`Cluster::kill_node`]) — the node's engine is
//!   dropped wholesale (crash semantics: no export happens). The router
//!   rebuilds each lost session on its new ring home from **shadow state**
//!   (the intent the router itself observed: instance, seed, membership,
//!   catalogue, λ). Recovered sessions restart at generation zero with cold
//!   factors — that is the *warm capital lost* a kill costs, counted in
//!   [`ClusterStats`], versus migration which preserves it.
//! * **Rebalancing** ([`Cluster::rebalance`]) — a [`RebalancePolicy`] plans
//!   migrations against per-node loads (live sessions + queue depths from
//!   the engines' per-shard gauges); the cluster executes them.
//!
//! The fabric is deterministic end to end: BTree orderings everywhere, node
//! engines run with auto-flush disabled (the cluster owns the flush clock),
//! and every operation is a pure function of the request sequence.
//!
//! ## Node backends
//!
//! The cluster is generic over its node backend: any
//! [`svgic_engine::transport::EngineTransport`] works. [`Cluster::new`]
//! spawns in-process [`Engine`]s (the default type parameter);
//! [`Cluster::with_backends`] takes a spawner closure, which is how
//! `loadgen --connect host:port,host:port` builds a **multi-process**
//! cluster whose nodes are `svgic_net::NetClient` connections to real
//! server processes. Live migration works identically either way — the
//! export travels through the backend (over the wire, for remote nodes) and
//! is imported on the destination. Because served configurations are
//! topology- and placement-independent, the in-process and multi-process
//! fabrics produce identical configuration digests for the same trace.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use svgic_core::{ItemIdx, SvgicInstance, UserIdx};
use svgic_engine::prelude::*;
use svgic_engine::CreateSession;

use crate::policy::{ClusterView, Migration, NodeLoad, RebalancePolicy, SessionPlacement};
use crate::ring::{HashRing, NodeId};
use crate::stats::{ClusterSnapshot, ClusterStats, NodeSnapshot};

/// How new (and recovered) sessions are placed on nodes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum PlacementMode {
    /// Pure consistent hashing: a session lives wherever the ring routes its
    /// key, regardless of load.
    Ring,
    /// Consistent hashing with bounded loads: a session is placed on the
    /// first node clockwise from its ring position whose **weighted load**
    /// (the sum of hosted sessions' calibrated LP-cost proxies — see
    /// `session_weight`) stays within `capacity_factor` times the fleet
    /// mean after admission. Keys whose
    /// home is under capacity route exactly like [`PlacementMode::Ring`];
    /// overloaded homes spill deterministically to the next node. Placement
    /// never changes *what* is served (solves are per-session), only *where*
    /// — so digests are placement-independent.
    BoundedLoad {
        /// Allowed overshoot over the fleet-mean weighted load (≥ 1.0;
        /// values near 1 balance tightly, large values degrade to `Ring`).
        capacity_factor: f64,
    },
}

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Initial node count.
    pub nodes: usize,
    /// Virtual nodes per physical node on the routing ring.
    pub vnodes: usize,
    /// Session placement strategy (default: bounded-load consistent hashing
    /// at 1.25x — ring affinity with a hard cap on birth imbalance).
    pub placement: PlacementMode,
    /// Engine configuration every node runs with. `auto_flush_pending` is
    /// forced to `0`: the cluster owns the flush clock, and per-node
    /// auto-flush thresholds would make served configurations depend on the
    /// topology (each node sees only its own share of the pending total).
    pub engine: EngineConfig,
    /// Warm standby replication (default off). When enabled, every
    /// [`Cluster::flush_node`] piggybacks a standby copy of each session
    /// whose replica is missing or stale onto the session's **ring
    /// successor** (the first other alive node clockwise from its key), and
    /// [`Cluster::kill_node`] fails over *warm* from the replica whenever it
    /// is current — preserving the solve generation and the LP factors a
    /// cold shadow rebuild would lose. Replication never touches live
    /// sessions (snapshots are non-draining, standbys are passive payload),
    /// so served configurations — and therefore config digests — are
    /// identical with replication on or off.
    pub replicate: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 1,
            vnodes: 64,
            placement: PlacementMode::BoundedLoad {
                capacity_factor: 1.25,
            },
            engine: EngineConfig::default(),
            replicate: false,
        }
    }
}

/// Why a cluster request failed.
#[derive(Clone, Debug, PartialEq)]
pub enum ClusterError {
    /// The cluster has no alive nodes.
    NoNodes,
    /// The node id is not alive.
    UnknownNode(NodeId),
    /// No session with this cluster key is live.
    UnknownSession(u64),
    /// A session with this cluster key already exists.
    DuplicateKey(u64),
    /// Refusing to kill the last alive node (its sessions would be
    /// unrecoverable).
    LastNode(NodeId),
    /// The node's engine rejected the request.
    Engine(EngineError),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::NoNodes => write!(f, "cluster has no alive nodes"),
            ClusterError::UnknownNode(node) => write!(f, "unknown {node}"),
            ClusterError::UnknownSession(key) => write!(f, "unknown cluster session {key}"),
            ClusterError::DuplicateKey(key) => write!(f, "cluster session {key} already exists"),
            ClusterError::LastNode(node) => {
                write!(f, "refusing to kill {node}: it is the last alive node")
            }
            ClusterError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<EngineError> for ClusterError {
    fn from(e: EngineError) -> Self {
        ClusterError::Engine(e)
    }
}

/// Where a session currently lives, and how much weighted load it carries.
#[derive(Clone, Copy, Debug)]
struct Placement {
    node: u64,
    local: SessionId,
    /// Load weight (the session LP's size — see `session_weight`), used by
    /// bounded-load placement.
    weight: u64,
}

/// The router's own record of a session's intent, kept for crash recovery.
/// Mirrors what the caller asked for (not engine internals): membership
/// events applied eagerly, the last catalogue/λ override, the instance and
/// rounding seed from the open call.
#[derive(Clone, Debug)]
struct Shadow {
    instance: Arc<SvgicInstance>,
    seed: u64,
    present: BTreeSet<UserIdx>,
    catalog: Option<Vec<ItemIdx>>,
    lambda: Option<f64>,
}

/// What a node kill did.
#[derive(Clone, Debug)]
pub struct KillReport {
    /// The killed node.
    pub node: NodeId,
    /// Sessions that lived on it.
    pub sessions_lost: usize,
    /// Where each lost session was rebuilt, ascending by key.
    pub recovered: Vec<(u64, NodeId)>,
}

/// A multi-node serving fabric over engine backends — in-process
/// [`svgic_engine::Engine`]s by default, any
/// [`EngineTransport`] (e.g. `svgic_net::NetClient` connections to real
/// server processes) via [`Cluster::with_backends`].
pub struct Cluster<B = Engine> {
    config: ClusterConfig,
    engines: BTreeMap<u64, B>,
    /// Provisions the backend for each node the cluster adds (initial fleet
    /// and later joins alike).
    spawner: Box<dyn FnMut(&EngineConfig) -> B>,
    ring: HashRing,
    placements: BTreeMap<u64, Placement>,
    shadows: BTreeMap<u64, Shadow>,
    /// Interned shadow instances, fingerprint-keyed: shadows of sessions
    /// stamped from one template share a single resident copy.
    instances: BTreeMap<u64, Arc<SvgicInstance>>,
    /// Weighted load per node (sum of hosted sessions' weights), maintained
    /// incrementally for bounded-load placement.
    node_weight: BTreeMap<u64, u64>,
    /// Per-session mutation generation: bumped on every state-changing
    /// request (open, submit, force-resolve). A standby replica carries the
    /// generation it was snapshotted at; a kill promotes it only when the
    /// generations match — the staleness gate that keeps failover honest.
    mutation_seq: BTreeMap<u64, u64>,
    /// Where each session's standby replica lives: key → (host node,
    /// mutation generation at snapshot time). Only populated when
    /// [`ClusterConfig::replicate`] is on.
    replicas: BTreeMap<u64, (u64, u64)>,
    /// Crashed node backends, reused (pristine — [`EngineTransport::crash`]
    /// wiped them) by the next [`Cluster::add_node`] before the spawner is
    /// consulted. This is what lets kill/join churn run against *remote*
    /// server processes the driver cannot actually fork: a killed
    /// connection's server is wiped and handed back out as the next joiner.
    graveyard: Vec<B>,
    next_node: u64,
    stats: ClusterStats,
}

impl Cluster {
    /// Builds an in-process cluster with `config.nodes` initial nodes (at
    /// least one), each wrapping a fresh [`Engine`].
    pub fn new(config: ClusterConfig) -> Self {
        Cluster::with_backends(config, |engine: &EngineConfig| Engine::new(engine.clone()))
    }
}

impl<B: EngineTransport> Cluster<B> {
    /// Builds a cluster whose node backends come from `spawner` — called
    /// once per node with the configured [`EngineConfig`] (which remote
    /// spawners are free to ignore: a `loadgen serve` process owns its own
    /// engine configuration).
    pub fn with_backends(
        mut config: ClusterConfig,
        spawner: impl FnMut(&EngineConfig) -> B + 'static,
    ) -> Self {
        config.engine.auto_flush_pending = 0;
        let mut cluster = Cluster {
            ring: HashRing::new(config.vnodes),
            config,
            engines: BTreeMap::new(),
            spawner: Box::new(spawner),
            placements: BTreeMap::new(),
            shadows: BTreeMap::new(),
            instances: BTreeMap::new(),
            node_weight: BTreeMap::new(),
            mutation_seq: BTreeMap::new(),
            replicas: BTreeMap::new(),
            graveyard: Vec::new(),
            next_node: 0,
            stats: ClusterStats::default(),
        };
        for _ in 0..cluster.config.nodes.max(1) {
            cluster.add_node();
        }
        cluster
    }

    /// Alive node ids, ascending.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.engines.keys().copied().map(NodeId).collect()
    }

    /// Number of alive nodes.
    pub fn node_count(&self) -> usize {
        self.engines.len()
    }

    /// Live sessions across the fleet.
    pub fn session_count(&self) -> usize {
        self.placements.len()
    }

    /// The node a session currently lives on.
    pub fn placement_of(&self, key: u64) -> Option<NodeId> {
        self.placements.get(&key).map(|p| NodeId(p.node))
    }

    /// Every live session's cluster key, ascending.
    pub fn session_keys(&self) -> Vec<u64> {
        self.placements.keys().copied().collect()
    }

    /// Live sessions per alive node, ascending by node id. Cheap (no
    /// counter snapshots, one `Describe` probe per node) — the right call
    /// for hot-path load peeks.
    pub fn node_sessions(&mut self) -> Vec<(NodeId, u64)> {
        self.engines
            .iter_mut()
            .map(|(&id, engine)| {
                let info = engine.describe().expect("node answers Describe");
                (NodeId(id), info.sessions as u64)
            })
            .collect()
    }

    /// Fabric counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// Spawns a fresh node and adds it to the ring. Existing sessions stay
    /// where they are — run a [`RebalancePolicy`] to hand the newcomer work.
    /// A crashed backend waiting in the graveyard is reused (it was wiped to
    /// pristine state by the crash) before the spawner is asked for a new
    /// one — in-process and multi-process fleets churn identically.
    pub fn add_node(&mut self) -> NodeId {
        let id = self.next_node;
        self.next_node += 1;
        let backend = match self.graveyard.pop() {
            Some(backend) => backend,
            None => (self.spawner)(&self.config.engine),
        };
        self.engines.insert(id, backend);
        self.ring.add_node(NodeId(id));
        self.node_weight.insert(id, 0);
        self.stats.nodes_added += 1;
        NodeId(id)
    }

    /// Decides where a session of load `weight` is placed, per the
    /// configured [`PlacementMode`]. Deterministic: a pure function of the
    /// ring, the placement mode, and the current weighted loads.
    fn place(&mut self, key: u64, weight: u64) -> Result<NodeId, ClusterError> {
        match self.config.placement {
            PlacementMode::Ring => self.ring.route(key).ok_or(ClusterError::NoNodes),
            PlacementMode::BoundedLoad { capacity_factor } => {
                if self.engines.is_empty() {
                    return Err(ClusterError::NoNodes);
                }
                let total: u64 = self.node_weight.values().sum::<u64>() + weight;
                let mean = total as f64 / self.engines.len() as f64;
                let capacity = (capacity_factor.max(1.0) * mean).ceil() as u64;
                let weights = &self.node_weight;
                let placed = self
                    .ring
                    .route_where(key, &|node| {
                        weights.get(&node.0).copied().unwrap_or(0) + weight <= capacity
                    })
                    .or_else(|| {
                        // No node admits the session (a single group heavier
                        // than the capacity bound): least-loaded wins,
                        // ties toward the lower id.
                        self.node_weight
                            .iter()
                            .min_by_key(|&(&id, &w)| (w, id))
                            .map(|(&id, _)| NodeId(id))
                    })
                    .ok_or(ClusterError::NoNodes)?;
                if Some(placed) != self.ring.route(key) {
                    self.stats.spill_placements += 1;
                }
                Ok(placed)
            }
        }
    }

    fn charge_weight(&mut self, node: u64, weight: i64) {
        let entry = self.node_weight.entry(node).or_insert(0);
        *entry = (*entry as i64 + weight).max(0) as u64;
    }

    fn engine_mut(&mut self, node: NodeId) -> Result<&mut B, ClusterError> {
        self.engines
            .get_mut(&node.0)
            .ok_or(ClusterError::UnknownNode(node))
    }

    /// Shares one `Arc<SvgicInstance>` across every shadow whose instance is
    /// structurally identical (fingerprint-keyed). Sessions stamped from a
    /// shared template pay zero deep copies on the open path and the router
    /// holds one resident instance per *template*, not per session. Entries
    /// are pruned in [`Cluster::release_shadow`] once no shadow uses them.
    fn intern_instance(&mut self, instance: &SvgicInstance) -> Arc<SvgicInstance> {
        let fingerprint = svgic_engine::fingerprint::instance_fingerprint(instance);
        if let Some(interned) = self.instances.get(&fingerprint) {
            return Arc::clone(interned);
        }
        let interned = Arc::new(instance.clone());
        self.instances.insert(fingerprint, Arc::clone(&interned));
        interned
    }

    /// Drops a session's shadow and prunes its interned instance when this
    /// was the last shadow sharing it.
    fn release_shadow(&mut self, key: u64) {
        let Some(shadow) = self.shadows.remove(&key) else {
            return;
        };
        let fingerprint = svgic_engine::fingerprint::instance_fingerprint(&shadow.instance);
        drop(shadow);
        if let Some(interned) = self.instances.get(&fingerprint) {
            // Only the intern map itself still holds it.
            if Arc::strong_count(interned) == 1 {
                self.instances.remove(&fingerprint);
            }
        }
    }

    fn placement(&self, key: u64) -> Result<Placement, ClusterError> {
        self.placements
            .get(&key)
            .copied()
            .ok_or(ClusterError::UnknownSession(key))
    }

    /// Opens a session under the caller's cluster key on its ring home.
    pub fn open_session(
        &mut self,
        key: u64,
        spec: CreateSession,
    ) -> Result<(NodeId, ConfigurationView), ClusterError> {
        if self.placements.contains_key(&key) {
            return Err(ClusterError::DuplicateKey(key));
        }
        let weight = session_weight(&spec.instance);
        let node = self.place(key, weight)?;
        let shadow = Shadow {
            instance: self.intern_instance(&spec.instance),
            seed: spec.seed,
            present: normalized_present(&spec.initial_present, spec.instance.num_users()),
            catalog: None,
            lambda: None,
        };
        let view = self.engine_mut(node)?.create_session(spec)?;
        self.placements.insert(
            key,
            Placement {
                node: node.0,
                local: view.session,
                weight,
            },
        );
        self.charge_weight(node.0, weight as i64);
        self.shadows.insert(key, shadow);
        self.mutation_seq.insert(key, 1);
        Ok((node, view))
    }

    /// Queues an event against a session; returns the serving node and the
    /// session's pending count. The router's shadow state tracks the event so
    /// a later node kill can rebuild the session's intent.
    pub fn submit_event(
        &mut self,
        key: u64,
        event: SessionEvent,
    ) -> Result<(NodeId, usize), ClusterError> {
        let placement = self.placement(key)?;
        let node = NodeId(placement.node);
        let pending = self
            .engine_mut(node)?
            .submit_event(placement.local, event.clone())?;
        // The engine accepted it: fold into the shadow.
        if let Some(shadow) = self.shadows.get_mut(&key) {
            use svgic_core::extensions::DynamicEvent;
            match event {
                SessionEvent::Membership(DynamicEvent::Join(user)) => {
                    shadow.present.insert(user);
                }
                SessionEvent::Membership(DynamicEvent::Leave(user)) => {
                    shadow.present.remove(&user);
                }
                SessionEvent::SetCatalog(mut items) => {
                    items.sort_unstable();
                    items.dedup();
                    shadow.catalog = Some(items);
                }
                SessionEvent::RetuneLambda(lambda) => shadow.lambda = Some(lambda),
            }
        }
        *self.mutation_seq.entry(key).or_insert(0) += 1;
        Ok((node, pending))
    }

    /// Reads the session's served configuration.
    pub fn query_configuration(
        &mut self,
        key: u64,
    ) -> Result<(NodeId, ConfigurationView), ClusterError> {
        let placement = self.placement(key)?;
        let node = NodeId(placement.node);
        let view = self
            .engine_mut(node)?
            .query_configuration(placement.local)?;
        Ok((node, view))
    }

    /// Applies the session's pending events now and forces a full re-solve.
    pub fn force_resolve(&mut self, key: u64) -> Result<(NodeId, ConfigurationView), ClusterError> {
        let placement = self.placement(key)?;
        let node = NodeId(placement.node);
        let view = self.engine_mut(node)?.force_resolve(placement.local)?;
        // The solve advanced the session's generation: any standby replica
        // is stale until the next flush re-replicates.
        *self.mutation_seq.entry(key).or_insert(0) += 1;
        Ok((node, view))
    }

    /// Closes a session; returns its serving node and lifetime event count.
    pub fn close_session(&mut self, key: u64) -> Result<(NodeId, u64), ClusterError> {
        let placement = self.placement(key)?;
        let node = NodeId(placement.node);
        let lifetime = self.engine_mut(node)?.close_session(placement.local)?;
        self.placements.remove(&key);
        self.charge_weight(node.0, -(placement.weight as i64));
        self.release_shadow(key);
        self.mutation_seq.remove(&key);
        self.discard_replica(key)?;
        Ok((node, lifetime))
    }

    /// Drops a session's standby replica (if one exists and its host is
    /// still alive) — take-and-discard, so closed sessions leave no orphaned
    /// payload behind.
    fn discard_replica(&mut self, key: u64) -> Result<(), ClusterError> {
        if let Some((host, _)) = self.replicas.remove(&key) {
            if self.engines.contains_key(&host) {
                let _ = self.engine_mut(NodeId(host))?.take_standby(key)?;
            }
        }
        Ok(())
    }

    /// Flushes one node's pending events, then (with
    /// [`ClusterConfig::replicate`] on) refreshes the standby replicas of
    /// every session it hosts — the flush boundary is exactly when sessions
    /// are quiescent, so a replica snapshotted here is *current* until the
    /// next mutation.
    pub fn flush_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        self.engine_mut(node)?.flush()?;
        self.replicate_node(node)?;
        Ok(())
    }

    /// Flushes every alive node, in ascending node order (replicating each
    /// node's sessions afterwards when replication is on).
    pub fn flush_all(&mut self) {
        for node in self.node_ids() {
            self.flush_node(node).expect("node flushes");
        }
    }

    /// Refreshes the standby replicas of every session hosted on `node`:
    /// a session is (re-)shipped when its replica is missing, stale (the
    /// mutation generation moved), or mis-hosted (not on the session's
    /// current ring successor — e.g. after the primary migrated onto its
    /// own standby's host). Current replicas cost nothing. No-op when
    /// replication is off or the fleet has a single node.
    fn replicate_node(&mut self, node: NodeId) -> Result<(), ClusterError> {
        if !self.config.replicate || self.engines.len() < 2 {
            return Ok(());
        }
        let keys: Vec<u64> = self
            .placements
            .iter()
            .filter(|(_, p)| p.node == node.0)
            .map(|(&key, _)| key)
            .collect();
        for key in keys {
            let seq = self.mutation_seq.get(&key).copied().unwrap_or(0);
            // The ring holds exactly the alive nodes, so the first
            // non-primary node clockwise from the key is the standby home.
            let Some(standby) = self.ring.route_where(key, &|n| n.0 != node.0) else {
                continue;
            };
            if let Some(&(host, replica_seq)) = self.replicas.get(&key) {
                if host == standby.0 && replica_seq == seq && self.engines.contains_key(&host) {
                    continue; // current and correctly hosted
                }
                if host != standby.0 && self.engines.contains_key(&host) {
                    // Mis-hosted: pull the old copy before shipping the new
                    // one (a put under the same key overwrites, so a
                    // same-host stale replica needs no explicit take).
                    let _ = self.engine_mut(NodeId(host))?.take_standby(key)?;
                }
            }
            let local = self.placement(key)?.local;
            let export = self.engine_mut(node)?.snapshot_session(local)?;
            self.stats.replication_bytes += svgic_engine::codec::session_export_bytes(&export);
            self.engine_mut(standby)?.put_standby(key, export)?;
            self.replicas.insert(key, (standby.0, seq));
        }
        Ok(())
    }

    /// Live-migrates a session to `to`, carrying its full state including
    /// warm capital. Returns whether warm capital travelled (`false` also
    /// when the session already lives on `to` — a no-op that counts no
    /// migration).
    pub fn migrate_session(&mut self, key: u64, to: NodeId) -> Result<bool, ClusterError> {
        if !self.engines.contains_key(&to.0) {
            return Err(ClusterError::UnknownNode(to));
        }
        let placement = self.placement(key)?;
        if placement.node == to.0 {
            return Ok(false);
        }
        let export = self
            .engine_mut(NodeId(placement.node))?
            .export_session(placement.local)?;
        let warm = export.has_warm_capital();
        let local = self.engine_mut(to)?.import_session(export)?;
        self.placements.insert(
            key,
            Placement {
                node: to.0,
                local,
                weight: placement.weight,
            },
        );
        self.charge_weight(placement.node, -(placement.weight as i64));
        self.charge_weight(to.0, placement.weight as i64);
        self.stats.migrations += 1;
        if warm {
            self.stats.warm_capital_preserved += 1;
        }
        Ok(warm)
    }

    /// Runs one rebalance pass under `policy`, executing every planned
    /// migration. Returns the executed moves.
    pub fn rebalance(&mut self, policy: &dyn RebalancePolicy) -> Vec<Migration> {
        let moves = {
            let view = ClusterView {
                nodes: self.node_loads(),
                sessions: self
                    .placements
                    .iter()
                    .map(|(&key, placement)| SessionPlacement {
                        key,
                        node: NodeId(placement.node),
                        weight: placement.weight,
                    })
                    .collect(),
                ring: &self.ring,
            };
            policy.plan(&view)
        };
        self.stats.rebalances += 1;
        for migration in &moves {
            self.migrate_session(migration.key, migration.to)
                .expect("policy planned against live view");
        }
        moves
    }

    /// Kills a node crash-style: its engine is wiped wholesale (sessions,
    /// caches, factors, standbys — [`EngineTransport::crash`]), it leaves
    /// the ring, and every lost session is rebuilt on its new ring home.
    ///
    /// With replication on, a lost session whose standby replica is
    /// **current** (same mutation generation, host alive, host not the
    /// victim) is *promoted*: the replica is imported on the target node,
    /// preserving the solve generation and the LP warm capital — the session
    /// serves exactly what it served before the kill, like a migration. A
    /// missing/stale/co-located replica falls back to the cold shadow-state
    /// rebuild (generation restarts, warm capital gone — counted in
    /// [`ClusterStats::warm_capital_lost`]). Each kill is classified whole:
    /// [`ClusterStats::failover_warm`] when *zero* sessions rebuilt cold,
    /// [`ClusterStats::failover_cold`] otherwise, so
    /// `failover_warm + failover_cold == nodes_killed` always holds.
    /// Receiving nodes are flushed so recovered sessions converge before the
    /// next tick.
    pub fn kill_node(&mut self, node: NodeId) -> Result<KillReport, ClusterError> {
        if !self.engines.contains_key(&node.0) {
            return Err(ClusterError::UnknownNode(node));
        }
        if self.engines.len() == 1 {
            return Err(ClusterError::LastNode(node));
        }
        let mut backend = self
            .engines
            .remove(&node.0)
            .expect("presence checked above");
        // Wipe the backend (remote servers forget everything, exactly like a
        // dropped in-process engine) and keep the husk for the next join.
        backend.crash()?;
        self.graveyard.push(backend);
        self.ring.remove_node(node);
        self.node_weight.remove(&node.0);
        self.stats.nodes_killed += 1;
        // Replicas hosted on the victim died with it.
        self.replicas.retain(|_, &mut (host, _)| host != node.0);

        let lost: Vec<u64> = self
            .placements
            .iter()
            .filter(|(_, p)| p.node == node.0)
            .map(|(&key, _)| key)
            .collect();
        let mut recovered = Vec::with_capacity(lost.len());
        let mut touched: BTreeSet<u64> = BTreeSet::new();
        let mut rebuilt_cold = 0u64;
        for &key in &lost {
            let weight = self.placements[&key].weight;
            let target = self.place(key, weight)?;

            // Warm path: promote the standby replica when it is current.
            let replica = self.replicas.get(&key).copied();
            if let Some((host, replica_seq)) = replica {
                let current = replica_seq == self.mutation_seq.get(&key).copied().unwrap_or(0);
                if current && self.engines.contains_key(&host) {
                    if let Some(export) = self.engine_mut(NodeId(host))?.take_standby(key)? {
                        let local = self.engine_mut(target)?.import_session(export)?;
                        self.placements.insert(
                            key,
                            Placement {
                                node: target.0,
                                local,
                                weight,
                            },
                        );
                        self.charge_weight(target.0, weight as i64);
                        touched.insert(target.0);
                        // Consumed: the next flush re-replicates from the
                        // new primary.
                        self.replicas.remove(&key);
                        self.stats.sessions_recovered += 1;
                        self.stats.standby_promotions += 1;
                        recovered.push((key, target));
                        continue;
                    }
                }
                // Stale or unusable: discard so it cannot resurrect a
                // dead generation later (the cold rebuild below restarts
                // the generation, which would otherwise collide with the
                // replica's).
                self.discard_replica(key)?;
            }

            let shadow = self
                .shadows
                .get(&key)
                .expect("placed sessions have shadows");
            let (instance, seed) = (Arc::clone(&shadow.instance), shadow.seed);
            let present: Vec<UserIdx> = shadow.present.iter().copied().collect();
            let dormant = present.is_empty();
            let catalog = shadow.catalog.clone();
            let lambda = shadow.lambda;

            let engine = self.engine_mut(target)?;
            let view = engine.create_session(CreateSession {
                instance: (*instance).clone(),
                // A dormant shadow (everyone left) re-opens with the full
                // group and immediately leaves again below — `create_session`
                // needs at least one shopper to solve for.
                initial_present: if dormant { Vec::new() } else { present },
                seed,
            })?;
            let local = view.session;
            if dormant {
                for user in 0..instance.num_users() {
                    use svgic_core::extensions::DynamicEvent;
                    engine
                        .submit_event(local, SessionEvent::Membership(DynamicEvent::Leave(user)))?;
                }
            }
            if let Some(items) = catalog {
                engine.submit_event(local, SessionEvent::SetCatalog(items))?;
            }
            if let Some(value) = lambda {
                engine.submit_event(local, SessionEvent::RetuneLambda(value))?;
            }
            self.placements.insert(
                key,
                Placement {
                    node: target.0,
                    local,
                    weight,
                },
            );
            self.charge_weight(target.0, weight as i64);
            touched.insert(target.0);
            self.stats.sessions_recovered += 1;
            self.stats.warm_capital_lost += 1;
            rebuilt_cold += 1;
            // The rebuild restarted the session's generation: bump the
            // mutation clock so nothing snapshotted before the kill can
            // ever look current again.
            *self.mutation_seq.entry(key).or_insert(0) += 1;
            recovered.push((key, target));
        }
        if rebuilt_cold == 0 {
            self.stats.failover_warm += 1;
        } else {
            self.stats.failover_cold += 1;
        }
        for target in touched {
            self.engine_mut(NodeId(target))?.flush()?;
        }
        Ok(KillReport {
            node,
            sessions_lost: lost.len(),
            recovered,
        })
    }

    /// Per-node loads (live sessions + queued events), ascending by node id.
    fn node_loads(&mut self) -> Vec<NodeLoad> {
        let node_weight = &self.node_weight;
        self.engines
            .iter_mut()
            .map(|(&id, engine)| {
                let info = engine.describe().expect("node answers Describe");
                NodeLoad {
                    node: NodeId(id),
                    sessions: info.sessions as u64,
                    queue_depth: info.pending_events as u64,
                    weight: node_weight.get(&id).copied().unwrap_or(0),
                }
            })
            .collect()
    }

    /// A full fleet snapshot: per-node engine counters, the merged totals,
    /// and the fabric counters.
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        let nodes: Vec<NodeSnapshot> = self
            .engines
            .iter_mut()
            .map(|(&id, engine)| {
                let info = engine.describe().expect("node answers Describe");
                let snapshot = engine.stats().expect("node answers QueryStats");
                let telemetry = engine
                    .query_telemetry()
                    .expect("node answers QueryTelemetry");
                NodeSnapshot {
                    node: NodeId(id),
                    sessions: info.sessions as u64,
                    queue_depth: info.pending_events as u64,
                    engine: snapshot,
                    telemetry,
                }
            })
            .collect();
        let mut merged: Option<StatsSnapshot> = None;
        for node in &nodes {
            match &mut merged {
                None => merged = Some(node.engine.clone()),
                Some(all) => all.merge(&node.engine),
            }
        }
        ClusterSnapshot {
            merged: merged.unwrap_or_else(|| svgic_engine::EngineStats::default().snapshot()),
            nodes,
            stats: self.stats.clone(),
        }
    }

    /// Bytes the router itself holds for crash recovery: the interned
    /// shadow instances (one resident copy per template, however many
    /// sessions share it) plus each session shadow's membership and
    /// catalogue-override state. Computed arithmetically, like the engines'
    /// `mem_*` gauges (see `svgic_engine::mem`).
    pub fn shadow_footprint_bytes(&self) -> u64 {
        let interned: u64 = self
            .instances
            .values()
            .map(|instance| svgic_engine::instance_bytes(instance))
            .sum();
        let shadows: u64 = self
            .shadows
            .values()
            .map(|shadow| {
                let present =
                    shadow.present.len() as u64 * svgic_obs::mem::MAP_ENTRY_OVERHEAD_BYTES;
                let catalog = shadow
                    .catalog
                    .as_ref()
                    .map(|items| svgic_obs::mem::vec_footprint::<ItemIdx>(items.len()))
                    .unwrap_or(0);
                present + catalog
            })
            .sum();
        interned + shadows
    }

    /// A single node's engine snapshot.
    pub fn node_stats(&mut self, node: NodeId) -> Result<StatsSnapshot, ClusterError> {
        self.engines
            .get_mut(&node.0)
            .ok_or(ClusterError::UnknownNode(node))?
            .stats()
            .map_err(ClusterError::Engine)
    }

    /// Resets every node's engine counters and the fabric *traffic*
    /// counters (caches and sessions stay) — the warmup boundary. The
    /// topology counters `nodes_added`/`nodes_killed` are facts about the
    /// fleet's composition, not about measured traffic, and survive the
    /// reset (like the engines' live queue-depth gauges) — as do the
    /// per-kill failover classifications paired with `nodes_killed`
    /// (`failover_warm + failover_cold == nodes_killed` must keep holding
    /// across the boundary).
    pub fn reset_stats(&mut self) {
        for engine in self.engines.values_mut() {
            engine.reset_stats().expect("node resets stats");
        }
        self.stats = ClusterStats {
            nodes_added: self.stats.nodes_added,
            nodes_killed: self.stats.nodes_killed,
            failover_warm: self.stats.failover_warm,
            failover_cold: self.stats.failover_cold,
            ..ClusterStats::default()
        };
    }
}

/// Load weight of a session for bounded-load placement:
/// `m · (n + |E|·(n + |E|))`. The LP's block-coordinate ascent revisits a
/// group's `m`-wide blocks once per coupling-neighbourhood change, so solve
/// time is driven by *pairs of coupled blocks* — roughly `|E|·(n + |E|)` —
/// not by matrix size alone. Calibrated against measured relaxation times
/// across dataset profiles this proxy stays within ~1.7x of true cost,
/// where linear proxies (session counts, `m·(n+|E|)`) are off by 9x.
fn session_weight(instance: &SvgicInstance) -> u64 {
    let n = instance.num_users() as u64;
    let m = instance.num_items() as u64;
    let edges = instance.graph().edges().len() as u64;
    (m * (n + edges * (n + edges))).max(1)
}

fn normalized_present(initial: &[UserIdx], population: usize) -> BTreeSet<UserIdx> {
    if initial.is_empty() {
        (0..population).collect()
    } else {
        initial.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{QueueDepthPolicy, RingPolicy};
    use svgic_core::example::running_example;
    use svgic_core::extensions::DynamicEvent;

    fn config(nodes: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            vnodes: 64,
            engine: EngineConfig {
                workers: 2,
                shards: 2,
                ..EngineConfig::default()
            },
            ..ClusterConfig::default()
        }
    }

    fn open(cluster: &mut Cluster, key: u64) -> NodeId {
        let (node, view) = cluster
            .open_session(
                key,
                CreateSession {
                    instance: running_example(),
                    initial_present: Vec::new(),
                    seed: 0xBEEF ^ key,
                },
            )
            .expect("opens");
        assert!(view.configuration.is_valid(view.catalog.len()));
        node
    }

    #[test]
    fn routes_sessions_across_nodes_and_serves() {
        let mut cluster = Cluster::new(config(3));
        assert_eq!(cluster.node_count(), 3);
        for key in 0..12 {
            open(&mut cluster, key);
        }
        assert_eq!(cluster.session_count(), 12);
        // Consistent hashing spread the sessions over more than one node.
        let nodes: BTreeSet<NodeId> = (0..12).map(|k| cluster.placement_of(k).unwrap()).collect();
        assert!(nodes.len() > 1, "12 keys all hashed to one node");
        cluster
            .submit_event(3, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        cluster.flush_all();
        let (_, view) = cluster.query_configuration(3).unwrap();
        assert_eq!(view.present, vec![1, 2, 3]);
        let (_, lifetime) = cluster.close_session(3).unwrap();
        assert_eq!(lifetime, 1);
        assert_eq!(cluster.session_count(), 11);
        assert!(matches!(
            cluster.query_configuration(3),
            Err(ClusterError::UnknownSession(3))
        ));
        assert!(matches!(
            cluster.open_session(
                5,
                CreateSession {
                    instance: running_example(),
                    initial_present: Vec::new(),
                    seed: 0,
                }
            ),
            Err(ClusterError::DuplicateKey(5))
        ));
    }

    #[test]
    fn bounded_load_placement_caps_birth_imbalance() {
        // Pick keys that pure ring routing would all stack on one node.
        let mut probe = HashRing::new(64);
        probe.add_node(NodeId(0));
        probe.add_node(NodeId(1));
        let stacked: Vec<u64> = (0..200)
            .filter(|&key| probe.route(key) == Some(NodeId(0)))
            .take(8)
            .collect();
        assert_eq!(stacked.len(), 8);

        // Ring mode: the stack happens.
        let mut ring_cluster = Cluster::new(ClusterConfig {
            placement: PlacementMode::Ring,
            ..config(2)
        });
        for &key in &stacked {
            open(&mut ring_cluster, key);
        }
        assert!(stacked
            .iter()
            .all(|&key| ring_cluster.placement_of(key) == Some(NodeId(0))));
        assert_eq!(ring_cluster.stats().spill_placements, 0);

        // Bounded-load mode: the overloaded home spills clockwise and the
        // split stays within one session of even (identical weights).
        let mut bounded = Cluster::new(ClusterConfig {
            placement: PlacementMode::BoundedLoad {
                capacity_factor: 1.1,
            },
            ..config(2)
        });
        for &key in &stacked {
            open(&mut bounded, key);
        }
        let counts: Vec<usize> = [NodeId(0), NodeId(1)]
            .iter()
            .map(|&node| {
                stacked
                    .iter()
                    .filter(|&&key| bounded.placement_of(key) == Some(node))
                    .count()
            })
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 8);
        assert!(
            counts[0].abs_diff(counts[1]) <= 1,
            "bounded-load placement must even out a stacked keyspace: {counts:?}"
        );
        assert!(
            bounded.stats().spill_placements > 0,
            "spills must be counted"
        );
    }

    #[test]
    fn migration_moves_state_and_preserves_warm_capital() {
        let mut cluster = Cluster::new(config(2));
        let from = open(&mut cluster, 1);
        let to = cluster.node_ids().into_iter().find(|&n| n != from).unwrap();
        let (_, before) = cluster.query_configuration(1).unwrap();
        let warm = cluster.migrate_session(1, to).unwrap();
        assert!(warm, "solved session carries factors");
        assert_eq!(cluster.placement_of(1), Some(to));
        let (node, after) = cluster.query_configuration(1).unwrap();
        assert_eq!(node, to);
        assert_eq!(after.configuration, before.configuration);
        assert_eq!(after.generation, before.generation);
        assert_eq!(cluster.stats().migrations, 1);
        assert_eq!(cluster.stats().warm_capital_preserved, 1);
        // Moving to the current home is a counted-nowhere no-op.
        assert!(!cluster.migrate_session(1, to).unwrap());
        assert_eq!(cluster.stats().migrations, 1);
    }

    #[test]
    fn rebalance_with_queue_depth_policy_evens_the_fleet() {
        let mut cluster = Cluster::new(config(2));
        // Stack every session on one node by migrating them there first.
        for key in 0..6 {
            open(&mut cluster, key);
        }
        let target = cluster.node_ids()[0];
        for key in 0..6 {
            let _ = cluster.migrate_session(key, target);
        }
        let before = cluster.stats().migrations;
        let moves = cluster.rebalance(&QueueDepthPolicy { tolerance: 1 });
        assert!(!moves.is_empty(), "stacked fleet must rebalance");
        assert_eq!(cluster.stats().migrations, before + moves.len() as u64);
        let sessions: Vec<usize> = cluster
            .node_ids()
            .iter()
            .map(|&n| {
                (0..6)
                    .filter(|&k| cluster.placement_of(k) == Some(n))
                    .count()
            })
            .collect();
        let max = *sessions.iter().max().unwrap() as i64;
        let min = *sessions.iter().min().unwrap() as i64;
        assert!(max - min <= 1, "unbalanced after rebalance: {sessions:?}");
        assert_eq!(cluster.stats().rebalances, 1);
    }

    #[test]
    fn kill_node_recovers_sessions_cold() {
        let mut cluster = Cluster::new(config(3));
        for key in 0..9 {
            open(&mut cluster, key);
        }
        // Mutate one session's catalogue + λ so recovery must restore them.
        cluster
            .submit_event(0, SessionEvent::SetCatalog(vec![0, 1, 2, 3]))
            .unwrap();
        cluster
            .submit_event(0, SessionEvent::RetuneLambda(0.25))
            .unwrap();
        cluster.flush_all();

        let victim = cluster.placement_of(0).unwrap();
        let report = cluster.kill_node(victim).unwrap();
        assert_eq!(report.node, victim);
        assert!(report.sessions_lost >= 1);
        assert_eq!(report.recovered.len(), report.sessions_lost);
        assert_eq!(cluster.node_count(), 2);
        assert!(!cluster.node_ids().contains(&victim));
        assert_eq!(cluster.session_count(), 9, "no session may be lost");
        assert_eq!(
            cluster.stats().sessions_recovered,
            report.sessions_lost as u64
        );
        assert_eq!(
            cluster.stats().warm_capital_lost,
            report.sessions_lost as u64
        );
        // The recovered session serves, with its catalogue/λ intent restored.
        let (node, view) = cluster.query_configuration(0).unwrap();
        assert_ne!(node, victim);
        assert_eq!(view.catalog, vec![0, 1, 2, 3]);
        assert!(view.configuration.is_valid(view.catalog.len()));
        // Killing down to one node is allowed; killing the last is not.
        let next = cluster.node_ids()[0];
        cluster.kill_node(next).unwrap();
        let last = cluster.node_ids()[0];
        assert!(matches!(
            cluster.kill_node(last),
            Err(ClusterError::LastNode(_))
        ));
        assert_eq!(cluster.session_count(), 9);
    }

    #[test]
    fn replicated_kill_fails_over_warm() {
        let mut cluster = Cluster::new(ClusterConfig {
            replicate: true,
            ..config(3)
        });
        for key in 0..6 {
            open(&mut cluster, key);
        }
        // The flush boundary ships every session's standby replica.
        cluster.flush_all();
        assert!(
            cluster.stats().replication_bytes > 0,
            "replication must account shipped bytes"
        );
        let before: BTreeMap<u64, _> = (0..6)
            .map(|key| (key, cluster.query_configuration(key).unwrap().1))
            .collect();

        let victim = cluster.placement_of(0).unwrap();
        let report = cluster.kill_node(victim).unwrap();
        assert!(report.sessions_lost >= 1);
        assert_eq!(cluster.session_count(), 6, "no session may be lost");
        assert_eq!(
            cluster.stats().warm_capital_lost,
            0,
            "current replicas must promote, not rebuild cold"
        );
        assert_eq!(
            cluster.stats().standby_promotions,
            report.sessions_lost as u64
        );
        assert_eq!(cluster.stats().failover_warm, 1);
        assert_eq!(cluster.stats().failover_cold, 0);
        // Promoted sessions serve exactly what they served before the kill:
        // same configuration, same solve generation — a warm kill is
        // digest-invisible, like a migration.
        for key in 0..6 {
            let (node, after) = cluster.query_configuration(key).unwrap();
            assert_ne!(node, victim);
            assert_eq!(after.configuration, before[&key].configuration);
            assert_eq!(after.generation, before[&key].generation);
        }
        // The promoted warm capital is live: the next incremental re-solve
        // on the adopting node starts warm (session-affine factor reuse)
        // even though that node never computed the factors itself.
        let (key, node) = report.recovered[0];
        cluster.reset_stats();
        cluster
            .submit_event(key, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        cluster.flush_node(node).unwrap();
        let stats = cluster.node_stats(node).unwrap();
        assert!(stats.solves() >= 1, "the promoted session re-solved");
        assert!(
            stats.warm_start_rate() > 0.0,
            "promoted session must re-solve warm: {stats}"
        );
    }

    #[test]
    fn stale_replica_rebuilds_cold_and_counts_a_cold_failover() {
        let mut cluster = Cluster::new(ClusterConfig {
            replicate: true,
            ..config(2)
        });
        open(&mut cluster, 11);
        cluster.flush_all();
        // Mutate after the replica shipped: the standby is now one mutation
        // generation behind, and the pending event has not been flushed.
        cluster
            .submit_event(11, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        let victim = cluster.placement_of(11).unwrap();
        let report = cluster.kill_node(victim).unwrap();
        assert_eq!(report.sessions_lost, 1);
        assert_eq!(
            cluster.stats().standby_promotions,
            0,
            "a stale replica must never promote"
        );
        assert_eq!(cluster.stats().warm_capital_lost, 1);
        assert_eq!(cluster.stats().failover_warm, 0);
        assert_eq!(cluster.stats().failover_cold, 1);
        // The cold rebuild replayed the shadow intent exactly once: the
        // unflushed leave is neither dropped nor double-applied.
        let (_, view) = cluster.query_configuration(11).unwrap();
        assert_eq!(view.present, vec![1, 2, 3]);
        assert_eq!(view.staleness, 0, "recovery flush applied the intent");
        // The failover classification is paired with the kill counter and
        // survives a stats reset alongside it.
        cluster.reset_stats();
        assert_eq!(
            cluster.stats().failover_warm + cluster.stats().failover_cold,
            cluster.stats().nodes_killed
        );
        assert_eq!(cluster.stats().warm_capital_lost, 0);
    }

    #[test]
    fn graveyard_reuses_crashed_backends_for_joins() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let spawns = std::sync::Arc::new(AtomicUsize::new(0));
        let counter = std::sync::Arc::clone(&spawns);
        let mut cluster = Cluster::with_backends(config(2), move |engine: &EngineConfig| {
            counter.fetch_add(1, Ordering::Relaxed);
            Engine::new(engine.clone())
        });
        assert_eq!(spawns.load(Ordering::Relaxed), 2);
        for key in 0..4 {
            open(&mut cluster, key);
        }
        let victim = cluster.node_ids()[0];
        cluster.kill_node(victim).unwrap();
        // The join reuses the crashed husk instead of spawning: kill/join
        // churn works even when backends are processes we cannot fork.
        let joined = cluster.add_node();
        assert_eq!(
            spawns.load(Ordering::Relaxed),
            2,
            "graveyard must be reused"
        );
        assert_eq!(cluster.node_count(), 2);
        assert_ne!(joined, victim, "a join is a fresh identity");
        // The reused backend is pristine and serves.
        let mut probe = cluster.node_stats(joined).unwrap();
        assert_eq!(probe.requests, 0);
        cluster.migrate_session(0, joined).unwrap();
        let (node, view) = cluster.query_configuration(0).unwrap();
        assert_eq!(node, joined);
        assert!(view.configuration.is_valid(view.catalog.len()));
        probe = cluster.node_stats(joined).unwrap();
        assert!(probe.requests > 0);
    }

    #[test]
    fn kill_recovers_dormant_sessions() {
        let mut cluster = Cluster::new(config(2));
        open(&mut cluster, 4);
        for user in 0..4 {
            cluster
                .submit_event(4, SessionEvent::Membership(DynamicEvent::Leave(user)))
                .unwrap();
        }
        cluster.flush_all();
        let victim = cluster.placement_of(4).unwrap();
        cluster.kill_node(victim).unwrap();
        let (_, view) = cluster.query_configuration(4).unwrap();
        assert!(view.present.is_empty(), "recovered session stays dormant");
        // And it revives like any dormant session.
        cluster
            .submit_event(4, SessionEvent::Membership(DynamicEvent::Join(1)))
            .unwrap();
        cluster.flush_all();
        let (_, view) = cluster.query_configuration(4).unwrap();
        assert_eq!(view.present, vec![1]);
    }

    #[test]
    fn ring_rebalance_after_join_hands_the_newcomer_its_share() {
        let mut cluster = Cluster::new(config(2));
        for key in 0..24 {
            open(&mut cluster, key);
        }
        let newcomer = cluster.add_node();
        let moves = cluster.rebalance(&RingPolicy);
        assert!(
            moves.iter().any(|m| m.to == newcomer),
            "ring policy must route part of the keyspace to the new node"
        );
        // Every moved session now lives on its ring home; untouched sessions
        // did not move (consistent hashing's minimal-disruption property).
        for m in &moves {
            assert_eq!(cluster.placement_of(m.key), Some(m.to));
        }
    }

    #[test]
    fn snapshot_merges_node_counters() {
        let mut cluster = Cluster::new(config(2));
        for key in 0..6 {
            open(&mut cluster, key);
        }
        cluster
            .submit_event(2, SessionEvent::Membership(DynamicEvent::Leave(1)))
            .unwrap();
        let snapshot = cluster.snapshot();
        assert_eq!(snapshot.nodes.len(), 2);
        assert_eq!(snapshot.total_sessions(), 6);
        let created: u64 = snapshot
            .nodes
            .iter()
            .map(|n| n.engine.sessions_created)
            .sum();
        assert_eq!(snapshot.merged.sessions_created, created);
        assert_eq!(created, 6);
        assert_eq!(
            snapshot.merged.total_queue_depth(),
            1,
            "one event pending fleet-wide"
        );
        cluster.reset_stats();
        let snapshot = cluster.snapshot();
        assert_eq!(snapshot.merged.sessions_created, 0);
        // Traffic counters reset; topology counters are fleet facts and
        // survive (a post-warmup report must still know the initial fleet
        // size to tell joins from initial nodes).
        assert_eq!(
            snapshot.stats,
            ClusterStats {
                nodes_added: 2,
                ..ClusterStats::default()
            }
        );
        assert_eq!(
            snapshot.merged.total_queue_depth(),
            1,
            "reset must not consume live pending events"
        );
    }

    #[test]
    fn snapshot_carries_per_node_telemetry_health_and_memory() {
        let mut cluster = Cluster::new(config(2));
        for key in 0..4 {
            open(&mut cluster, key);
        }
        cluster
            .submit_event(1, SessionEvent::Membership(DynamicEvent::Leave(0)))
            .unwrap();
        cluster.flush_all();
        cluster.flush_all();
        let snapshot = cluster.snapshot();
        for node in &snapshot.nodes {
            assert!(
                !node.telemetry.is_empty(),
                "{}: each flush ticks the node's sampler",
                node.node
            );
            let ticks: Vec<u64> = node.telemetry.iter().map(|s| s.tick).collect();
            let mut sorted = ticks.clone();
            sorted.sort_unstable();
            assert_eq!(ticks, sorted, "ticks are monotone");
            assert_eq!(
                node.health(),
                svgic_engine::Health::Ok,
                "an unloaded fleet is healthy"
            );
            assert!(node.mem_bytes() > 0, "hosted sessions are accounted");
        }
        // The router's own recovery state is accounted too.
        assert!(cluster.shadow_footprint_bytes() > 0);
        let before = cluster.shadow_footprint_bytes();
        for key in 0..4 {
            cluster.close_session(key).unwrap();
        }
        assert!(
            cluster.shadow_footprint_bytes() < before,
            "closing sessions releases shadow bytes"
        );
        assert_eq!(cluster.shadow_footprint_bytes(), 0);
    }

    #[test]
    fn shadow_instances_are_interned_per_template() {
        let mut cluster = Cluster::new(config(2));
        for key in 0..5 {
            open(&mut cluster, key); // all from the same running example
        }
        assert_eq!(
            cluster.instances.len(),
            1,
            "identical instances share one resident copy"
        );
        for key in 0..4 {
            cluster.close_session(key).unwrap();
        }
        assert_eq!(cluster.instances.len(), 1, "still one shadow alive");
        cluster.close_session(4).unwrap();
        assert!(
            cluster.instances.is_empty(),
            "last close prunes the interned instance"
        );
    }
}
