//! Cluster-level counters and aggregated snapshots.

use svgic_engine::{Health, StatsSnapshot, TelemetrySample};

use crate::ring::NodeId;

/// Fabric-level counters (single-threaded plain integers — the cluster
/// router runs on one thread; parallelism lives inside the node engines).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Nodes added over the cluster's lifetime (including the initial
    /// set). A topology fact, not a traffic counter: survives
    /// `Cluster::reset_stats`.
    pub nodes_added: u64,
    /// Nodes killed (crash-style: their engine state is dropped). Survives
    /// `Cluster::reset_stats` like `nodes_added`.
    pub nodes_killed: u64,
    /// Live migrations executed (export → import).
    pub migrations: u64,
    /// Migrations whose export carried reusable LP factors — warm capital
    /// that arrived intact on the receiving node.
    pub warm_capital_preserved: u64,
    /// Sessions whose warm capital was destroyed by a node kill (they had
    /// been solved at least once, and were rebuilt cold).
    pub warm_capital_lost: u64,
    /// Sessions rebuilt from router shadow state after a node kill.
    pub sessions_recovered: u64,
    /// Rebalance passes executed (even when the policy planned no moves).
    pub rebalances: u64,
    /// Sessions placed off their ring home by bounded-load placement (the
    /// home node was over capacity and the key spilled clockwise).
    pub spill_placements: u64,
    /// Canonical payload bytes shipped to standby replicas (each replica
    /// shipment accounts its export's wire size, whether the transport is
    /// in-process or TCP).
    pub replication_bytes: u64,
    /// Standby replicas promoted to live sessions by `Cluster::kill_node` —
    /// warm failovers at session granularity.
    pub standby_promotions: u64,
    /// Kills that lost *zero* warm capital: every lost session was promoted
    /// from a current standby (or the victim hosted none). Paired with
    /// `nodes_killed` — a topology fact that survives `reset_stats`;
    /// `failover_warm + failover_cold == nodes_killed` always holds.
    pub failover_warm: u64,
    /// Kills where at least one session had to be rebuilt cold from shadow
    /// state (no replica, or a stale one). Survives `reset_stats` like
    /// `failover_warm`.
    pub failover_cold: u64,
}

/// One node's contribution to a cluster snapshot.
#[derive(Clone, Debug)]
pub struct NodeSnapshot {
    /// The node.
    pub node: NodeId,
    /// Live sessions currently placed on the node.
    pub sessions: u64,
    /// Pending events queued on the node right now.
    pub queue_depth: u64,
    /// The node engine's full counter snapshot.
    pub engine: StatsSnapshot,
    /// The node's per-tick time series, oldest sample first (empty when the
    /// node runs with sampling disabled).
    pub telemetry: Vec<TelemetrySample>,
}

impl NodeSnapshot {
    /// The node's derived health (SLO burn + memory budget, default
    /// policy).
    pub fn health(&self) -> Health {
        self.engine.health()
    }

    /// Total accounted bytes on the node right now.
    pub fn mem_bytes(&self) -> u64 {
        self.engine.mem_total_bytes()
    }
}

/// A point-in-time view of the whole fabric: per-node snapshots plus the
/// merged fleet totals (via [`StatsSnapshot::merge`]) and the fabric
/// counters.
#[derive(Clone, Debug)]
pub struct ClusterSnapshot {
    /// Per-node snapshots, ascending by node id (alive nodes only).
    pub nodes: Vec<NodeSnapshot>,
    /// Every node's engine counters merged into one fleet snapshot.
    pub merged: StatsSnapshot,
    /// Fabric counters.
    pub stats: ClusterStats,
}

impl ClusterSnapshot {
    /// Live sessions across the fleet.
    pub fn total_sessions(&self) -> u64 {
        self.nodes.iter().map(|n| n.sessions).sum()
    }
}
