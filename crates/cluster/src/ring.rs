//! Consistent-hash ring with virtual nodes.
//!
//! Session keys are placed on a 64-bit ring; each node owns `vnodes` points
//! on it (hashes of `(node, replica)`), and a key routes to the owner of the
//! first point at or after the key's own hash, wrapping around. Virtual
//! nodes smooth the arc lengths: with ≥ 64 of them per node the share of
//! keys any node receives stays within a small constant factor of ideal (the
//! property tests pin 2x), and removing a node only remaps the keys that
//! node owned — every other key keeps its placement, which is what makes
//! node churn cheap.
//!
//! Ring points are keyed by `(position, node)` pairs, so two nodes hashing
//! onto the same position coexist deterministically (the smaller node id
//! wins the arc) and removal is exact rather than last-writer-wins. All
//! hashing is the workspace's FNV-1a ([`svgic_engine::fingerprint::Fnv`]);
//! the ring is a pure function of the node set, independent of
//! insertion order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use svgic_engine::fingerprint::Fnv;

/// Identifier of a cluster node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Domain-separation tags so node points and session keys never collide
/// structurally.
const TAG_POINT: u64 = 0x5256_4E4F_4445_0001; // "RVNODE"-ish
const TAG_KEY: u64 = 0x5256_4B45_5900_0002; // "RVKEY"-ish

/// Murmur3-style avalanche finalizer. Plain FNV-1a gives the *last* input
/// byte only one multiply, so positions of `(node, replica)` and
/// `(node, replica+1)` correlate in their high bits — exactly the bits ring
/// ordering compares — and arc lengths come out badly skewed for small
/// consecutive ids. The finalizer diffuses every input bit across the word.
fn finalize(mut hash: u64) -> u64 {
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    hash ^= hash >> 33;
    hash = hash.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    hash ^= hash >> 33;
    hash
}

fn point_hash(node: NodeId, replica: u64) -> u64 {
    let mut hasher = Fnv::new();
    hasher.write_u64(TAG_POINT);
    hasher.write_u64(node.0);
    hasher.write_u64(replica);
    finalize(hasher.finish())
}

fn key_hash(key: u64) -> u64 {
    let mut hasher = Fnv::new();
    hasher.write_u64(TAG_KEY);
    hasher.write_u64(key);
    finalize(hasher.finish())
}

/// A consistent-hash ring mapping 64-bit session keys to nodes.
#[derive(Clone, Debug)]
pub struct HashRing {
    vnodes: usize,
    /// Ring points: `(position, node)` → the node owning the arc that ends
    /// at `position`. The composite key makes same-position points from
    /// different nodes coexist (ties break toward the smaller node id).
    points: BTreeMap<(u64, u64), ()>,
    nodes: BTreeSet<u64>,
}

impl HashRing {
    /// An empty ring with `vnodes` virtual nodes per physical node
    /// (clamped to at least 1).
    pub fn new(vnodes: usize) -> Self {
        HashRing {
            vnodes: vnodes.max(1),
            points: BTreeMap::new(),
            nodes: BTreeSet::new(),
        }
    }

    /// Virtual nodes per physical node.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Number of physical nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `node` is on the ring.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(&node.0)
    }

    /// The node ids on the ring, ascending.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.nodes.iter().copied().map(NodeId).collect()
    }

    /// Adds a node (idempotent).
    pub fn add_node(&mut self, node: NodeId) {
        if !self.nodes.insert(node.0) {
            return;
        }
        for replica in 0..self.vnodes as u64 {
            self.points.insert((point_hash(node, replica), node.0), ());
        }
    }

    /// Removes a node (idempotent). Only keys that routed to `node` change
    /// their placement.
    pub fn remove_node(&mut self, node: NodeId) {
        if !self.nodes.remove(&node.0) {
            return;
        }
        for replica in 0..self.vnodes as u64 {
            self.points.remove(&(point_hash(node, replica), node.0));
        }
    }

    /// Routes a session key to its owning node (`None` on an empty ring).
    pub fn route(&self, key: u64) -> Option<NodeId> {
        let position = key_hash(key);
        self.points
            .range((position, 0)..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(&(_, node), ())| NodeId(node))
    }

    /// Bounded-load routing (the "consistent hashing with bounded loads"
    /// walk): starting at the key's ring position, returns the first node
    /// clockwise for which `admissible` holds, wrapping once around the
    /// whole ring. Keys whose home node is admissible route exactly like
    /// [`HashRing::route`]; overloaded homes spill forward to the next
    /// under-capacity node, still deterministically. `None` when no node is
    /// admissible (the caller picks its own fallback).
    pub fn route_where(&self, key: u64, admissible: &dyn Fn(NodeId) -> bool) -> Option<NodeId> {
        let position = key_hash(key);
        self.points
            .range((position, 0)..)
            .chain(self.points.range(..(position, 0)))
            .map(|(&(_, node), ())| NodeId(node))
            .find(|&node| admissible(node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn ring_of(nodes: &[u64], vnodes: usize) -> HashRing {
        let mut ring = HashRing::new(vnodes);
        for &node in nodes {
            ring.add_node(NodeId(node));
        }
        ring
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = HashRing::new(64);
        assert!(ring.is_empty());
        assert_eq!(ring.route(7), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let ring = ring_of(&[3], 64);
        for key in 0..100 {
            assert_eq!(ring.route(key), Some(NodeId(3)));
        }
    }

    #[test]
    fn ring_is_independent_of_insertion_order() {
        let forward = ring_of(&[1, 2, 3, 4], 64);
        let backward = ring_of(&[4, 3, 2, 1], 64);
        for key in 0..500 {
            assert_eq!(forward.route(key), backward.route(key));
        }
    }

    #[test]
    fn add_then_remove_is_identity() {
        let reference = ring_of(&[1, 2, 3], 128);
        let mut churned = ring_of(&[1, 2, 3], 128);
        churned.add_node(NodeId(9));
        churned.remove_node(NodeId(9));
        for key in 0..500 {
            assert_eq!(reference.route(key), churned.route(key));
        }
        // Idempotence both ways.
        churned.remove_node(NodeId(9));
        churned.add_node(NodeId(2));
        assert_eq!(churned.len(), 3);
    }

    #[test]
    fn distribution_is_roughly_even() {
        let ring = ring_of(&[0, 1, 2, 3], 64);
        let keys = 4000u64;
        let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
        for key in 0..keys {
            *counts.entry(ring.route(key).unwrap().0).or_default() += 1;
        }
        let ideal = keys as f64 / 4.0;
        for (&node, &count) in &counts {
            let share = count as f64 / ideal;
            assert!(
                (0.5..=2.0).contains(&share),
                "node {node} got {count} keys ({share:.2}x ideal)"
            );
        }
    }
}
