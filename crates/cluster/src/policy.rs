//! Rebalancing policies: who moves where when the fabric rebalances.
//!
//! A [`RebalancePolicy`] inspects a read-only [`ClusterView`] (per-node load,
//! session placements, the ring) and plans a list of [`Migration`]s; the
//! cluster executes them via live export/import (warm capital travels with
//! the session, see [`svgic_engine::SessionExport`]). Two policies ship:
//!
//! * [`RingPolicy`] — the consistent-hash ring is the placement authority:
//!   any session not living where the ring routes its key moves there. After
//!   node joins this is what hands the new node its ring share; it ignores
//!   load entirely.
//! * [`QueueDepthPolicy`] — load-aware: nodes are ranked by
//!   `weight + queue_depth` (hosted LP sizes plus the engines' per-shard
//!   pending-event gauges) and sessions move from the most- to the
//!   least-loaded node until the spread is within `tolerance`. Placement may
//!   drift off-ring, which the router's placement table is there to absorb.
//!
//! Policies are pure planning: deterministic (BTree orderings, explicit tie
//! breaks on node id and session key) and side-effect free.

use crate::ring::{HashRing, NodeId};

/// One node's load as the policies see it.
#[derive(Clone, Copy, Debug)]
pub struct NodeLoad {
    /// The node.
    pub node: NodeId,
    /// Live sessions placed on the node.
    pub sessions: u64,
    /// Pending events queued on the node (sum of per-shard gauges).
    pub queue_depth: u64,
    /// Weighted load: the sum of hosted sessions' LP sizes (the cluster's
    /// solve-cost proxy, see bounded-load placement).
    pub weight: u64,
}

impl NodeLoad {
    /// Scalar load: hosted LP weight plus queued events (weight is standing
    /// solve cost — sessions re-solve on flushes — and queued events are
    /// imminent work).
    pub fn load(&self) -> u64 {
        self.weight + self.queue_depth
    }
}

/// One session's current placement.
#[derive(Clone, Copy, Debug)]
pub struct SessionPlacement {
    /// Cluster-level session key.
    pub key: u64,
    /// Node the session currently lives on.
    pub node: NodeId,
    /// The session's load weight (its LP size).
    pub weight: u64,
}

/// Read-only cluster state handed to a policy.
#[derive(Debug)]
pub struct ClusterView<'a> {
    /// Per-node load, ascending by node id.
    pub nodes: Vec<NodeLoad>,
    /// Every live session's placement, ascending by key.
    pub sessions: Vec<SessionPlacement>,
    /// The routing ring.
    pub ring: &'a HashRing,
}

/// A planned session move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    /// Session to move.
    pub key: u64,
    /// Destination node.
    pub to: NodeId,
}

/// Plans which sessions migrate where during a rebalance.
pub trait RebalancePolicy {
    /// Stable policy name (reports, CLI).
    fn name(&self) -> &'static str;
    /// Plans migrations against the view. Must be deterministic.
    fn plan(&self, view: &ClusterView<'_>) -> Vec<Migration>;
}

/// Ring-authority rebalancing: every session moves to wherever the ring
/// routes its key right now.
#[derive(Clone, Copy, Debug, Default)]
pub struct RingPolicy;

impl RebalancePolicy for RingPolicy {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn plan(&self, view: &ClusterView<'_>) -> Vec<Migration> {
        view.sessions
            .iter()
            .filter_map(|placement| {
                let home = view.ring.route(placement.key)?;
                (home != placement.node).then_some(Migration {
                    key: placement.key,
                    to: home,
                })
            })
            .collect()
    }
}

/// Load-aware rebalancing driven by hosted LP weight plus queue depth.
///
/// Plans greedy moves from the most- to the least-loaded node: each step
/// migrates the donor's heaviest session that still *strictly narrows* the
/// spread (a session heavier than the gap would just flip the imbalance).
/// Each move strictly decreases the spread, so planning always terminates.
#[derive(Clone, Copy, Debug)]
pub struct QueueDepthPolicy {
    /// Largest tolerated load spread (`max - min`, in weight units) before
    /// sessions move. `0` balances as evenly as whole sessions allow.
    pub tolerance: u64,
}

impl Default for QueueDepthPolicy {
    fn default() -> Self {
        QueueDepthPolicy { tolerance: 1 }
    }
}

impl RebalancePolicy for QueueDepthPolicy {
    fn name(&self) -> &'static str {
        "queue-depth"
    }

    fn plan(&self, view: &ClusterView<'_>) -> Vec<Migration> {
        if view.nodes.len() < 2 {
            return Vec::new();
        }
        // Mutable model: per-node load plus the (key-ascending) sessions the
        // node still holds; moving a session transfers its weight.
        let mut loads: Vec<(NodeId, u64)> = view
            .nodes
            .iter()
            .map(|node| (node.node, node.load()))
            .collect();
        let mut held: Vec<Vec<(u64, u64)>> = vec![Vec::new(); loads.len()]; // (key, weight)
        let index_of =
            |loads: &[(NodeId, u64)], node: NodeId| loads.iter().position(|(id, _)| *id == node);
        for placement in &view.sessions {
            if let Some(index) = index_of(&loads, placement.node) {
                held[index].push((placement.key, placement.weight.max(1)));
            }
        }

        let mut moves = Vec::new();
        loop {
            // Most-loaded donor (ties: lower node id) and least-loaded
            // receiver.
            let donor = (0..loads.len())
                .filter(|&i| !held[i].is_empty())
                .max_by_key(|&i| (loads[i].1, std::cmp::Reverse(loads[i].0)))
                .map(|i| (i, loads[i].1));
            let Some((donor, donor_load)) = donor else {
                break;
            };
            let (receiver, receiver_load) = (0..loads.len())
                .map(|i| (i, loads[i].1))
                .min_by_key(|&(i, load)| (load, loads[i].0))
                .expect("at least two nodes");
            let spread = donor_load.saturating_sub(receiver_load);
            if donor == receiver || spread <= self.tolerance.max(1) {
                break;
            }
            // The heaviest donor session that still narrows the spread
            // (weight strictly below the gap); ties break toward the lowest
            // key. None fitting ⇒ every remaining move would overshoot.
            let Some(candidate) = held[donor]
                .iter()
                .enumerate()
                .filter(|(_, &(_, weight))| weight < spread)
                .max_by_key(|&(_, &(key, weight))| (weight, std::cmp::Reverse(key)))
                .map(|(index, _)| index)
            else {
                break;
            };
            let (key, weight) = held[donor].remove(candidate);
            moves.push(Migration {
                key,
                to: loads[receiver].0,
            });
            loads[donor].1 -= weight;
            loads[receiver].1 += weight;
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view_with(
        loads: Vec<NodeLoad>,
        sessions: Vec<SessionPlacement>,
        ring: &HashRing,
    ) -> Vec<Migration> {
        QueueDepthPolicy::default().plan(&ClusterView {
            nodes: loads,
            sessions,
            ring,
        })
    }

    #[test]
    fn queue_depth_policy_moves_from_hot_to_cold() {
        let mut ring = HashRing::new(8);
        ring.add_node(NodeId(0));
        ring.add_node(NodeId(1));
        let loads = vec![
            NodeLoad {
                node: NodeId(0),
                sessions: 4,
                queue_depth: 2,
                weight: 4,
            },
            NodeLoad {
                node: NodeId(1),
                sessions: 0,
                queue_depth: 0,
                weight: 0,
            },
        ];
        let sessions = (0..4)
            .map(|key| SessionPlacement {
                key,
                node: NodeId(0),
                weight: 1,
            })
            .collect();
        let moves = view_with(loads, sessions, &ring);
        assert!(!moves.is_empty(), "imbalance must trigger moves");
        assert!(moves.iter().all(|m| m.to == NodeId(1)));
        // Lowest keys move first.
        assert_eq!(moves[0].key, 0);
        // Load 6 vs 0 equalizes to 3 vs 3: three sessions move.
        assert_eq!(moves.len(), 3);
    }

    #[test]
    fn queue_depth_policy_is_quiet_when_balanced() {
        let mut ring = HashRing::new(8);
        ring.add_node(NodeId(0));
        ring.add_node(NodeId(1));
        let loads = vec![
            NodeLoad {
                node: NodeId(0),
                sessions: 2,
                queue_depth: 0,
                weight: 2,
            },
            NodeLoad {
                node: NodeId(1),
                sessions: 2,
                queue_depth: 1,
                weight: 2,
            },
        ];
        let sessions = vec![
            SessionPlacement {
                key: 0,
                node: NodeId(0),
                weight: 1,
            },
            SessionPlacement {
                key: 1,
                node: NodeId(0),
                weight: 1,
            },
            SessionPlacement {
                key: 2,
                node: NodeId(1),
                weight: 1,
            },
            SessionPlacement {
                key: 3,
                node: NodeId(1),
                weight: 1,
            },
        ];
        assert!(view_with(loads, sessions, &ring).is_empty());
    }

    #[test]
    fn ring_policy_sends_sessions_home() {
        let mut ring = HashRing::new(64);
        ring.add_node(NodeId(0));
        ring.add_node(NodeId(1));
        // Place every session on node 0; the ring will want some on node 1.
        let sessions: Vec<SessionPlacement> = (0..50)
            .map(|key| SessionPlacement {
                key,
                node: NodeId(0),
                weight: 1,
            })
            .collect();
        let view = ClusterView {
            nodes: vec![
                NodeLoad {
                    node: NodeId(0),
                    sessions: 50,
                    queue_depth: 0,
                    weight: 50,
                },
                NodeLoad {
                    node: NodeId(1),
                    sessions: 0,
                    queue_depth: 0,
                    weight: 0,
                },
            ],
            sessions,
            ring: &ring,
        };
        let moves = RingPolicy.plan(&view);
        assert!(!moves.is_empty());
        for m in &moves {
            assert_eq!(m.to, NodeId(1), "only off-home sessions move");
            assert_eq!(ring.route(m.key), Some(NodeId(1)));
        }
        // Planning twice is identical (determinism).
        assert_eq!(moves, RingPolicy.plan(&view));
    }
}
