//! # svgic-cluster — a multi-node serving fabric for the SVGIC engine
//!
//! The SVGIC problem is solved per shopping group, which makes serving
//! embarrassingly partitionable across sessions. PR 1–3 built a single-node
//! engine that shards sessions *within* a process; this crate adds the layer
//! above it: a deterministic, in-process **cluster** of nodes — each wrapping
//! one [`svgic_engine::Engine`] — with consistent-hash routing, live session
//! migration, failure recovery and load-aware rebalancing. It is the scale
//! story the paper's social-VR setting (millions of concurrent shoppers)
//! requires and the single-process engine cannot provide alone.
//!
//! Architecture (one module each):
//!
//! * [`ring`] — the consistent-hash [`HashRing`]: each node owns `vnodes`
//!   points on a 64-bit FNV-1a ring; a key routes to the next point
//!   clockwise. ≥ 64 virtual nodes keep every node's share within a small
//!   factor of ideal, and removing a node remaps only that node's keys;
//! * [`cluster`] — the [`Cluster`] fabric: nodes, the placement table
//!   (session key → node + local id), **live migration** via the engine's
//!   `export_session`/`import_session` (pending events, served solution,
//!   solve generation and warm capital — the last LP factors — all travel),
//!   and **crash recovery** (a killed node's sessions are rebuilt from the
//!   router's shadow state on their new ring homes, cold);
//! * [`policy`] — the [`RebalancePolicy`] trait with two implementations:
//!   ring-authority ([`RingPolicy`]) and load-aware ([`QueueDepthPolicy`],
//!   driven by live session counts plus the engines' per-shard queue-depth
//!   gauges);
//! * [`stats`] — fabric counters (migrations, warm capital preserved/lost,
//!   recoveries) and the [`ClusterSnapshot`] aggregation: per-node engine
//!   snapshots plus the merged fleet totals.
//!
//! ## Topology independence
//!
//! Served configurations are **independent of topology and migration
//! history**: solve seeds derive from `(session seed, generation)`, LP
//! factors are byte-identical wherever they are computed, and node engines
//! run with auto-flush disabled (the cluster owns the flush clock). Serving a
//! trace on 1 node or on 4 — with live migrations in between — yields
//! identical configuration digests; only node *kills* change behaviour
//! (recovered sessions restart their solve generation), and even those are
//! deterministic run-to-run.
//!
//! ```rust
//! use svgic_cluster::prelude::*;
//! use svgic_engine::{CreateSession, EngineConfig};
//!
//! let mut cluster = Cluster::new(ClusterConfig {
//!     nodes: 2,
//!     engine: EngineConfig { workers: 2, ..EngineConfig::default() },
//!     ..ClusterConfig::default()
//! });
//! let (node, view) = cluster
//!     .open_session(
//!         7,
//!         CreateSession {
//!             instance: svgic_core::example::running_example(),
//!             initial_present: vec![],
//!             seed: 42,
//!         },
//!     )
//!     .unwrap();
//! assert!(view.configuration.is_valid(view.catalog.len()));
//! // Live-migrate the session to the other node: state and warm capital move.
//! let other = cluster.node_ids().into_iter().find(|&n| n != node).unwrap();
//! assert!(cluster.migrate_session(7, other).unwrap());
//! assert_eq!(cluster.placement_of(7), Some(other));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod cluster;
pub mod policy;
pub mod ring;
pub mod stats;

pub use chaos::{ChaosControl, ChaosFault, ChaosInjection, ChaosPlan, ChaosTransport, FaultWindow};
pub use cluster::{Cluster, ClusterConfig, ClusterError, KillReport, PlacementMode};
pub use policy::{
    ClusterView, Migration, NodeLoad, QueueDepthPolicy, RebalancePolicy, RingPolicy,
    SessionPlacement,
};
pub use ring::{HashRing, NodeId};
pub use stats::{ClusterSnapshot, ClusterStats, NodeSnapshot};

/// The most common cluster imports in one place.
pub mod prelude {
    pub use crate::chaos::{
        ChaosControl, ChaosFault, ChaosInjection, ChaosPlan, ChaosTransport, FaultWindow,
    };
    pub use crate::cluster::{Cluster, ClusterConfig, ClusterError, KillReport, PlacementMode};
    pub use crate::policy::{Migration, QueueDepthPolicy, RebalancePolicy, RingPolicy};
    pub use crate::ring::{HashRing, NodeId};
    pub use crate::stats::{ClusterSnapshot, ClusterStats, NodeSnapshot};
}
