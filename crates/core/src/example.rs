//! The paper's running example (Figure 1, Example 1/2, Tables 1 and 6–9).
//!
//! Four shoppers — Alice, Bob, Charlie and Dave — browse a VR store of digital
//! photography with five items (tripod, DSLR camera, portable storage device,
//! memory card, self-portrait camera) and three display slots.  The preference
//! and social utility values of Table 1 are encoded verbatim, and the
//! configurations of Tables 7–9 plus the optimal configuration of Figure 1(b)
//! are provided as golden fixtures: with `λ = ½` and the paper's
//! "scaled up by 2" convention their total utilities are
//! `10.35 / 9.75 / 9.85 / 8.25 / 8.35 / 8.4 / 8.7`.

use crate::config::Configuration;
use crate::instance::{SvgicInstance, SvgicInstanceBuilder};
use svgic_graph::SocialGraph;

/// User indices of the running example.
pub mod users {
    /// Alice.
    pub const ALICE: usize = 0;
    /// Bob.
    pub const BOB: usize = 1;
    /// Charlie.
    pub const CHARLIE: usize = 2;
    /// Dave.
    pub const DAVE: usize = 3;
}

/// Item indices of the running example (`c1 … c5` of the paper).
pub mod items {
    /// `c1`: tripod.
    pub const TRIPOD: usize = 0;
    /// `c2`: DSLR camera.
    pub const DSLR: usize = 1;
    /// `c3`: portable storage device.
    pub const PSD: usize = 2;
    /// `c4`: memory card.
    pub const MEMORY_CARD: usize = 3;
    /// `c5`: self-portrait camera.
    pub const SP_CAMERA: usize = 4;
}

/// Builds the running-example instance with `λ = ½` (the value used by the
/// worked AVG/AVG-D examples; Example 2 uses `λ = 0.4`, which callers can get
/// via [`SvgicInstance::with_lambda`]).
pub fn running_example() -> SvgicInstance {
    use items::*;
    use users::*;
    // Directed friendships implied by the τ columns of Table 1:
    // A↔B, A↔C, A↔D, B↔C (D is only friends with A).
    let graph = SocialGraph::from_edges(
        4,
        [
            (ALICE, BOB),
            (ALICE, CHARLIE),
            (ALICE, DAVE),
            (BOB, ALICE),
            (BOB, CHARLIE),
            (CHARLIE, ALICE),
            (CHARLIE, BOB),
            (DAVE, ALICE),
        ],
    );
    let mut b = SvgicInstanceBuilder::new(graph, 5, 3, 0.5);

    // Preference utilities p(u, c) — Table 1, first four columns.
    let prefs: [(usize, [f64; 4]); 5] = [
        (TRIPOD, [0.8, 0.7, 0.0, 0.1]),
        (DSLR, [0.85, 1.0, 0.15, 0.0]),
        (PSD, [0.1, 0.15, 0.7, 0.3]),
        (MEMORY_CARD, [0.05, 0.2, 0.6, 1.0]),
        (SP_CAMERA, [1.0, 0.1, 0.1, 0.95]),
    ];
    for (c, row) in prefs {
        for (u, &p) in row.iter().enumerate() {
            b.set_preference(u, c, p);
        }
    }

    // Social utilities τ(u, v, c) — Table 1, remaining columns.
    // Column order: (A,B), (A,C), (A,D), (B,A), (B,C), (C,A), (C,B), (D,A).
    let edges = [
        (ALICE, BOB),
        (ALICE, CHARLIE),
        (ALICE, DAVE),
        (BOB, ALICE),
        (BOB, CHARLIE),
        (CHARLIE, ALICE),
        (CHARLIE, BOB),
        (DAVE, ALICE),
    ];
    let taus: [(usize, [f64; 8]); 5] = [
        (TRIPOD, [0.2, 0.0, 0.2, 0.2, 0.0, 0.0, 0.1, 0.3]),
        (DSLR, [0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05, 0.05]),
        (PSD, [0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.05]),
        (MEMORY_CARD, [0.0, 0.0, 0.05, 0.05, 0.2, 0.05, 0.2, 0.0]),
        (SP_CAMERA, [0.05, 0.3, 0.2, 0.05, 0.0, 0.3, 0.05, 0.25]),
    ];
    for (c, row) in taus {
        for (idx, &(u, v)) in edges.iter().enumerate() {
            assert!(b.set_social(u, v, c, row[idx]));
        }
    }

    b.with_item_labels(vec![
        "tripod".into(),
        "DSLR camera".into(),
        "PSD".into(),
        "memory card".into(),
        "SP camera".into(),
    ])
    .build()
    .expect("running example is a valid instance")
}

/// The configurations the paper reports for the running example.
#[derive(Clone, Debug)]
pub struct PaperConfigurations {
    /// The optimal SAVG 3-Configuration of Figure 1(b) (utility 10.35).
    pub optimal: Configuration,
    /// The configuration returned by randomized AVG in Example 4 / Table 7
    /// (utility 9.75).
    pub avg: Configuration,
    /// The configuration returned by AVG-D in Example 5 / Table 8 (9.85).
    pub avg_d: Configuration,
    /// The personalized (top-k) baseline of Table 9 (8.25).
    pub personalized: Configuration,
    /// The group baseline of Table 9 (8.35).
    pub group: Configuration,
    /// The subgroup-by-friendship baseline of Table 9 (8.4).
    pub by_friendship: Configuration,
    /// The subgroup-by-preference baseline of Table 9 (8.7).
    pub by_preference: Configuration,
}

/// Builds all paper-reported configurations for the running example.
pub fn paper_configurations() -> PaperConfigurations {
    use items::*;
    // Rows ordered Alice, Bob, Charlie, Dave; columns are slots 1..3.
    PaperConfigurations {
        optimal: Configuration::from_rows(&[
            vec![SP_CAMERA, TRIPOD, DSLR],
            vec![DSLR, TRIPOD, MEMORY_CARD],
            vec![SP_CAMERA, PSD, MEMORY_CARD],
            vec![SP_CAMERA, TRIPOD, MEMORY_CARD],
        ]),
        avg: Configuration::from_rows(&[
            vec![SP_CAMERA, DSLR, TRIPOD],
            vec![DSLR, MEMORY_CARD, TRIPOD],
            vec![PSD, MEMORY_CARD, SP_CAMERA],
            vec![SP_CAMERA, MEMORY_CARD, TRIPOD],
        ]),
        avg_d: Configuration::from_rows(&[
            vec![SP_CAMERA, TRIPOD, DSLR],
            vec![SP_CAMERA, TRIPOD, DSLR],
            vec![SP_CAMERA, PSD, DSLR],
            vec![SP_CAMERA, TRIPOD, MEMORY_CARD],
        ]),
        personalized: Configuration::from_rows(&[
            vec![SP_CAMERA, DSLR, TRIPOD],
            vec![DSLR, TRIPOD, MEMORY_CARD],
            vec![PSD, MEMORY_CARD, DSLR],
            vec![MEMORY_CARD, SP_CAMERA, PSD],
        ]),
        group: Configuration::from_rows(&[
            vec![SP_CAMERA, TRIPOD, DSLR],
            vec![SP_CAMERA, TRIPOD, DSLR],
            vec![SP_CAMERA, TRIPOD, DSLR],
            vec![SP_CAMERA, TRIPOD, DSLR],
        ]),
        by_friendship: Configuration::from_rows(&[
            vec![SP_CAMERA, TRIPOD, MEMORY_CARD],
            vec![DSLR, MEMORY_CARD, PSD],
            vec![DSLR, MEMORY_CARD, PSD],
            vec![SP_CAMERA, TRIPOD, MEMORY_CARD],
        ]),
        by_preference: Configuration::from_rows(&[
            vec![DSLR, TRIPOD, SP_CAMERA],
            vec![DSLR, TRIPOD, SP_CAMERA],
            vec![MEMORY_CARD, SP_CAMERA, PSD],
            vec![MEMORY_CARD, SP_CAMERA, PSD],
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{total_utility, unweighted_total_utility};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn table1_values_are_encoded() {
        let inst = running_example();
        assert_eq!(inst.num_users(), 4);
        assert_eq!(inst.num_items(), 5);
        assert_eq!(inst.num_slots(), 3);
        assert!(close(inst.preference(users::ALICE, items::SP_CAMERA), 1.0));
        assert!(close(inst.preference(users::DAVE, items::MEMORY_CARD), 1.0));
        assert!(close(
            inst.social(users::ALICE, users::CHARLIE, items::SP_CAMERA),
            0.3
        ));
        assert!(close(
            inst.social(users::DAVE, users::ALICE, items::TRIPOD),
            0.3
        ));
        // Dave and Bob are not friends.
        assert_eq!(inst.social(users::DAVE, users::BOB, items::TRIPOD), 0.0);
        assert_eq!(inst.friend_pairs().len(), 4);
    }

    #[test]
    fn golden_total_utilities_match_the_paper() {
        let inst = running_example();
        let cfgs = paper_configurations();
        // λ = ½, "scaled up by 2" convention of §4.
        assert!(close(unweighted_total_utility(&inst, &cfgs.optimal), 10.35));
        assert!(close(unweighted_total_utility(&inst, &cfgs.avg), 9.75));
        assert!(close(unweighted_total_utility(&inst, &cfgs.avg_d), 9.85));
        assert!(close(
            unweighted_total_utility(&inst, &cfgs.personalized),
            8.25
        ));
        assert!(close(unweighted_total_utility(&inst, &cfgs.group), 8.35));
        assert!(close(
            unweighted_total_utility(&inst, &cfgs.by_friendship),
            8.4
        ));
        assert!(close(
            unweighted_total_utility(&inst, &cfgs.by_preference),
            8.7
        ));
    }

    #[test]
    fn weighted_utility_is_half_the_unweighted_at_lambda_half() {
        let inst = running_example();
        let cfgs = paper_configurations();
        for cfg in [&cfgs.optimal, &cfgs.avg, &cfgs.group] {
            assert!(close(
                total_utility(&inst, cfg) * 2.0,
                unweighted_total_utility(&inst, cfg)
            ));
        }
    }

    #[test]
    fn all_paper_configurations_are_valid() {
        let inst = running_example();
        let cfgs = paper_configurations();
        for cfg in [
            &cfgs.optimal,
            &cfgs.avg,
            &cfgs.avg_d,
            &cfgs.personalized,
            &cfgs.group,
            &cfgs.by_friendship,
            &cfgs.by_preference,
        ] {
            assert!(cfg.is_valid(inst.num_items()));
            assert_eq!(cfg.num_users(), 4);
            assert_eq!(cfg.num_slots(), 3);
        }
    }

    #[test]
    fn group_configuration_forms_a_single_subgroup_per_slot() {
        let cfgs = paper_configurations();
        for s in 0..3 {
            assert_eq!(cfgs.group.num_subgroups_at_slot(s), 1);
        }
        // The SAVG optimum mixes subgroup sizes across slots.
        let sizes: Vec<usize> = (0..3)
            .map(|s| cfgs.optimal.num_subgroups_at_slot(s))
            .collect();
        assert_eq!(sizes, vec![2, 2, 2]);
    }
}
