//! SAVG utility functions (Definitions 3 and 5 of the paper).
//!
//! * [`total_utility`] — the SVGIC objective: every user `u` contributes, for
//!   each item `c` displayed to her,
//!   `(1−λ)·p(u,c) + λ·Σ_{v : u↔^c v} τ(u,v,c)` where `u↔^c v` denotes a
//!   *direct* co-display (same item at the same slot).
//! * [`total_utility_st`] — the SVGIC-ST objective which additionally credits
//!   *indirect* co-displays (same item at different slots) discounted by
//!   `d_tel`.
//! * [`utility_split`] / [`UtilitySplit`] — the personal vs. social breakdown
//!   reported as *Personal%* / *Social%* in §6.
//! * [`unweighted_total_utility`] — the "scaled up by 2" convention the paper
//!   uses for the λ = ½ running example (a plain sum of preference and social
//!   utilities), which the golden fixtures of Tables 7–9 are stated in.
//! * per-user utilities and the optimistic upper bound behind the
//!   regret-ratio metric of §6.5.

use crate::config::Configuration;
use crate::instance::SvgicInstance;
use crate::st::StParams;
use crate::{ItemIdx, UserIdx};

/// Personal / social decomposition of a configuration's utility.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UtilitySplit {
    /// Weighted preference part `(1-λ)·Σ p`.
    pub preference: f64,
    /// Weighted social part `λ·Σ τ` (direct co-display only).
    pub social: f64,
}

impl UtilitySplit {
    /// Total utility.
    pub fn total(&self) -> f64 {
        self.preference + self.social
    }

    /// Fraction of the total contributed by the preference part (0 when the
    /// total is 0).
    pub fn personal_fraction(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.preference / t
        }
    }

    /// Fraction of the total contributed by the social part.
    pub fn social_fraction(&self) -> f64 {
        let t = self.total();
        if t <= 0.0 {
            0.0
        } else {
            self.social / t
        }
    }
}

/// Detailed per-user breakdown of a configuration's utility.
#[derive(Clone, Debug, Default)]
pub struct UtilityBreakdown {
    /// Per-user achieved SAVG utility (Definition 3 summed over the user's
    /// displayed items).
    pub per_user: Vec<f64>,
    /// Weighted preference / social split of the total.
    pub split: UtilitySplit,
}

impl UtilityBreakdown {
    /// Total utility over all users.
    pub fn total(&self) -> f64 {
        self.split.total()
    }
}

fn assert_matching(instance: &SvgicInstance, config: &Configuration) {
    assert_eq!(
        instance.num_users(),
        config.num_users(),
        "configuration user count does not match instance"
    );
    assert_eq!(
        instance.num_slots(),
        config.num_slots(),
        "configuration slot count does not match instance"
    );
}

/// Raw (unweighted) preference sum `Σ_u Σ_{c ∈ A(u,:)} p(u, c)`.
pub fn raw_preference_sum(instance: &SvgicInstance, config: &Configuration) -> f64 {
    assert_matching(instance, config);
    let mut total = 0.0;
    for u in 0..instance.num_users() {
        for &c in config.items_of(u) {
            total += instance.preference(u, c);
        }
    }
    total
}

/// Raw (unweighted) social sum over *direct* co-displays: for every ordered
/// friend edge `(u, v)` and slot `s` with `A(u,s) = A(v,s) = c`, adds
/// `τ(u, v, c)`.
pub fn raw_social_sum(instance: &SvgicInstance, config: &Configuration) -> f64 {
    assert_matching(instance, config);
    let mut total = 0.0;
    for (p, pair) in instance.friend_pairs().iter().enumerate() {
        for (_, c) in config.co_displays(pair.u, pair.v) {
            total += instance.pair_weight(p, c);
        }
    }
    total
}

/// Raw (unweighted) social sum over *indirect* co-displays (Definition 4):
/// common items displayed to both endpoints at different slots.
pub fn raw_indirect_social_sum(instance: &SvgicInstance, config: &Configuration) -> f64 {
    assert_matching(instance, config);
    let mut total = 0.0;
    for (p, pair) in instance.friend_pairs().iter().enumerate() {
        for (c, _, _) in config.indirect_co_displays(pair.u, pair.v) {
            total += instance.pair_weight(p, c);
        }
    }
    total
}

/// Weighted personal / social split of the SVGIC objective.
pub fn utility_split(instance: &SvgicInstance, config: &Configuration) -> UtilitySplit {
    let lambda = instance.lambda();
    UtilitySplit {
        preference: (1.0 - lambda) * raw_preference_sum(instance, config),
        social: lambda * raw_social_sum(instance, config),
    }
}

/// Total SVGIC objective `Σ_u Σ_{c ∈ A(u,:)} w_A(u, c)` (Definition 3).
pub fn total_utility(instance: &SvgicInstance, config: &Configuration) -> f64 {
    utility_split(instance, config).total()
}

/// The paper's running-example convention: with `λ = ½` the objective is
/// "scaled up by 2" so it becomes the plain sum of preference and social
/// utilities.  This helper computes that unweighted sum for any `λ`.
pub fn unweighted_total_utility(instance: &SvgicInstance, config: &Configuration) -> f64 {
    raw_preference_sum(instance, config) + raw_social_sum(instance, config)
}

/// Total SVGIC-ST objective (Definition 5): direct co-display counted in full,
/// indirect co-display discounted by `d_tel`.
pub fn total_utility_st(instance: &SvgicInstance, st: &StParams, config: &Configuration) -> f64 {
    let lambda = instance.lambda();
    (1.0 - lambda) * raw_preference_sum(instance, config)
        + lambda
            * (raw_social_sum(instance, config)
                + st.d_tel * raw_indirect_social_sum(instance, config))
}

/// Per-user achieved SAVG utility (the numerator of the happiness ratio).
pub fn per_user_utility(instance: &SvgicInstance, config: &Configuration, u: UserIdx) -> f64 {
    let lambda = instance.lambda();
    let mut total = 0.0;
    for (s, &c) in config.items_of(u).iter().enumerate() {
        let mut social = 0.0;
        for &(v, e) in instance.graph().out_neighbors(u) {
            if config.get(v, s) == c {
                social += instance.social_by_edge(e, c);
            }
        }
        total += (1.0 - lambda) * instance.preference(u, c) + lambda * social;
    }
    total
}

/// Full per-user breakdown plus the weighted split.
pub fn utility_breakdown(instance: &SvgicInstance, config: &Configuration) -> UtilityBreakdown {
    let per_user = (0..instance.num_users())
        .map(|u| per_user_utility(instance, config, u))
        .collect();
    UtilityBreakdown {
        per_user,
        split: utility_split(instance, config),
    }
}

/// The optimistic single-item utility `w̄_A(u, c) = (1-λ)p(u,c) + λ·Σ_{v∈V}
/// τ(u,v,c)` used by the regret metric: what `u` would get if *every* friend
/// viewed `c` with her.
pub fn optimistic_item_utility(instance: &SvgicInstance, u: UserIdx, c: ItemIdx) -> f64 {
    let lambda = instance.lambda();
    (1.0 - lambda) * instance.preference(u, c) + lambda * instance.max_social(u, c)
}

/// Upper bound on the SAVG utility user `u` could possibly achieve: the sum of
/// her `k` largest optimistic item utilities (the denominator of the happiness
/// ratio in §6.5).
pub fn user_utility_upper_bound(instance: &SvgicInstance, u: UserIdx) -> f64 {
    let mut vals: Vec<f64> = (0..instance.num_items())
        .map(|c| optimistic_item_utility(instance, u, c))
        .collect();
    vals.sort_by(|a, b| b.partial_cmp(a).unwrap());
    vals.into_iter().take(instance.num_slots()).sum()
}

/// The regret ratio of user `u`: `1 − achieved / upper_bound`, clamped to
/// `[0, 1]`; users with a zero upper bound have zero regret.
pub fn regret_ratio(instance: &SvgicInstance, config: &Configuration, u: UserIdx) -> f64 {
    let upper = user_utility_upper_bound(instance, u);
    if upper <= 0.0 {
        return 0.0;
    }
    (1.0 - per_user_utility(instance, config, u) / upper).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{self, paper_configurations};
    use crate::instance::SvgicInstanceBuilder;
    use svgic_graph::SocialGraph;

    #[test]
    fn per_user_utilities_sum_to_total() {
        let inst = example::running_example();
        let cfg = paper_configurations().optimal;
        let breakdown = utility_breakdown(&inst, &cfg);
        let sum: f64 = breakdown.per_user.iter().sum();
        assert!((sum - total_utility(&inst, &cfg)).abs() < 1e-9);
    }

    #[test]
    fn example2_alice_slot2_utility() {
        // Example 2 of the paper: λ = 0.4, Alice co-displayed the tripod (c1)
        // with Bob and Dave at slot 2 => w = 0.6·0.8 + 0.4·(0.2+0.2) = 0.64.
        let inst = example::running_example().with_lambda(0.4).unwrap();
        let cfg = paper_configurations().optimal;
        // Alice's slot-2 item is c1 (index 0).
        assert_eq!(cfg.get(0, 1), 0);
        let lambda = inst.lambda();
        let mut social = 0.0;
        for &(v, e) in inst.graph().out_neighbors(0) {
            if cfg.get(v, 1) == 0 {
                social += inst.social_by_edge(e, 0);
            }
        }
        let w = (1.0 - lambda) * inst.preference(0, 0) + lambda * social;
        assert!((w - 0.64).abs() < 1e-9);
    }

    #[test]
    fn split_fractions_are_consistent() {
        let inst = example::running_example();
        let cfg = paper_configurations().avg;
        let split = utility_split(&inst, &cfg);
        assert!(split.preference > 0.0 && split.social > 0.0);
        assert!((split.personal_fraction() + split.social_fraction() - 1.0).abs() < 1e-12);
        assert!((split.total() - total_utility(&inst, &cfg)).abs() < 1e-12);
    }

    #[test]
    fn st_utility_reduces_to_plain_when_no_indirect() {
        let inst = example::running_example();
        let cfg = paper_configurations().group;
        // The group configuration shows the same item to everyone at the same
        // slot, so there are no indirect co-displays.
        let st = StParams::new(0.5, usize::MAX);
        assert!((total_utility_st(&inst, &st, &cfg) - total_utility(&inst, &cfg)).abs() < 1e-12);
    }

    #[test]
    fn st_utility_credits_indirect_codisplay() {
        // Two friends, two items, two slots, swapped assignments: the common
        // items are only indirectly co-displayed.
        let graph = SocialGraph::from_undirected_edges(2, [(0, 1)]);
        let mut b = SvgicInstanceBuilder::new(graph, 2, 2, 0.5);
        b.fill_social(|_, _, _| 1.0);
        let inst = b.build().unwrap();
        let cfg = Configuration::from_rows(&[vec![0, 1], vec![1, 0]]);
        assert!((total_utility(&inst, &cfg) - 0.0).abs() < 1e-12);
        let st = StParams::new(0.5, usize::MAX);
        // Both items indirectly co-displayed: raw indirect = (1+1) per item * 2 items = 4;
        // weighted: λ(=0.5) * d_tel(=0.5) * 4 = 1.0.
        assert!((total_utility_st(&inst, &st, &cfg) - 1.0).abs() < 1e-12);
        // Aligning the slots converts it to direct co-display worth λ * 4 = 2.
        let aligned = Configuration::from_rows(&[vec![0, 1], vec![0, 1]]);
        assert!((total_utility_st(&inst, &st, &aligned) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn regret_ratio_zero_for_dictator() {
        // A single user always achieves her upper bound => regret 0.
        let graph = SocialGraph::new(1);
        let mut b = SvgicInstanceBuilder::new(graph, 3, 2, 0.3);
        b.set_preference(0, 0, 0.9);
        b.set_preference(0, 1, 0.5);
        b.set_preference(0, 2, 0.1);
        let inst = b.build().unwrap();
        let best = Configuration::from_rows(&[vec![0, 1]]);
        assert!(regret_ratio(&inst, &best, 0) < 1e-12);
        let worst = Configuration::from_rows(&[vec![2, 1]]);
        assert!(regret_ratio(&inst, &worst, 0) > 0.0);
    }

    #[test]
    fn regret_is_bounded() {
        let inst = example::running_example();
        for cfg in [
            paper_configurations().optimal,
            paper_configurations().personalized,
            paper_configurations().group,
        ] {
            for u in 0..inst.num_users() {
                let r = regret_ratio(&inst, &cfg, u);
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match instance")]
    fn mismatched_configuration_panics() {
        let inst = example::running_example();
        let wrong = Configuration::from_rows(&[vec![0, 1]]);
        let _ = total_utility(&inst, &wrong);
    }
}
