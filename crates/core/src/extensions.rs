//! Practical-scenario extensions of SVGIC (§5 of the paper).
//!
//! The extensions keep the base [`SvgicInstance`] unchanged and layer extra
//! parameters on top:
//!
//! * **A — commodity values**: every item carries a price/profit weight `ω_c`;
//!   the retailer maximises the commodity-weighted SAVG utility.
//! * **B — layout slot significance**: every slot carries a significance
//!   weight `γ_s` (centre shelves matter more than aisle ends).
//! * **C — multi-view display (MVD)**: each display unit may hold up to `β`
//!   items (one primary view plus group views).
//! * **D — generalised (group-wise) social benefits**: the social utility of a
//!   user depends on the *maximal* subgroup co-viewing the item, through a
//!   concave size-scaling function rather than a pairwise sum.
//! * **E — subgroup change**: a cap on the partition edit distance between
//!   consecutive slots.
//! * **F — dynamic scenario**: users join/leave over time (handled in the
//!   algorithms crate via incremental re-rounding; here we only provide the
//!   event type).
//!
//! The evaluation helpers in this module compute the extended objectives for a
//! given configuration; the corresponding solvers live in `svgic-algorithms`.

use crate::config::Configuration;
use crate::instance::SvgicInstance;
use crate::{ItemIdx, SlotIdx, UserIdx};

/// Extension parameters A/B/E of §5 that re-weight the objective.
#[derive(Clone, Debug, Default)]
pub struct ExtendedParams {
    /// Commodity value `ω_c` per item (defaults to all ones).
    pub commodity: Option<Vec<f64>>,
    /// Slot significance `γ_s` per slot (defaults to all ones).
    pub slot_significance: Option<Vec<f64>>,
    /// Maximum allowed partition edit distance between consecutive slots
    /// (`None` = unconstrained).
    pub max_subgroup_change: Option<usize>,
}

impl ExtendedParams {
    /// Commodity value of item `c`.
    pub fn commodity_value(&self, c: ItemIdx) -> f64 {
        self.commodity.as_ref().map_or(1.0, |v| v[c])
    }

    /// Significance of slot `s`.
    pub fn slot_weight(&self, s: SlotIdx) -> f64 {
        self.slot_significance.as_ref().map_or(1.0, |v| v[s])
    }

    /// Validates the parameter dimensions against an instance.
    pub fn validate(&self, instance: &SvgicInstance) -> Result<(), String> {
        if let Some(c) = &self.commodity {
            if c.len() != instance.num_items() {
                return Err(format!(
                    "commodity values have length {} but the instance has {} items",
                    c.len(),
                    instance.num_items()
                ));
            }
            if c.iter().any(|&v| !v.is_finite() || v < 0.0) {
                return Err("commodity values must be non-negative and finite".into());
            }
        }
        if let Some(g) = &self.slot_significance {
            if g.len() != instance.num_slots() {
                return Err(format!(
                    "slot significances have length {} but the instance has {} slots",
                    g.len(),
                    instance.num_slots()
                ));
            }
            if g.iter().any(|&v| !v.is_finite() || v < 0.0) {
                return Err("slot significances must be non-negative and finite".into());
            }
        }
        Ok(())
    }

    /// True when the configuration obeys the subgroup-change cap (extension E).
    pub fn satisfies_subgroup_change(&self, config: &Configuration) -> bool {
        match self.max_subgroup_change {
            None => true,
            Some(cap) => (0..config.num_slots().saturating_sub(1))
                .all(|s| config.subgroup_edit_distance(s) <= cap),
        }
    }
}

/// Extended SVGIC objective with commodity values and slot significance
/// (extensions A + B): every display unit `(u, s)` showing item `c`
/// contributes `ω_c · γ_s · [(1−λ)p(u,c) + λ Σ_{v co-displayed at s} τ(u,v,c)]`.
pub fn extended_total_utility(
    instance: &SvgicInstance,
    params: &ExtendedParams,
    config: &Configuration,
) -> f64 {
    let lambda = instance.lambda();
    let mut total = 0.0;
    for u in 0..instance.num_users() {
        for (s, &c) in config.items_of(u).iter().enumerate() {
            let mut social = 0.0;
            for &(v, e) in instance.graph().out_neighbors(u) {
                if config.get(v, s) == c {
                    social += instance.social_by_edge(e, c);
                }
            }
            let base = (1.0 - lambda) * instance.preference(u, c) + lambda * social;
            total += params.commodity_value(c) * params.slot_weight(s) * base;
        }
    }
    total
}

/// Multi-view display configuration (extension C): every display unit holds an
/// ordered list of at most `β` items, the first being the primary view.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MvdConfiguration {
    n: usize,
    k: usize,
    /// Maximum number of views per unit.
    pub beta: usize,
    views: Vec<Vec<ItemIdx>>,
}

impl MvdConfiguration {
    /// Creates an MVD configuration from per-unit view lists
    /// (`views[u * k + s]`, first entry = primary view).
    pub fn new(n: usize, k: usize, beta: usize, views: Vec<Vec<ItemIdx>>) -> Self {
        assert_eq!(views.len(), n * k, "one view list per display unit");
        assert!(
            views.iter().all(|v| !v.is_empty() && v.len() <= beta),
            "every unit needs 1..=beta views"
        );
        Self { n, k, beta, views }
    }

    /// Lifts a plain configuration into a single-view MVD configuration.
    pub fn from_configuration(config: &Configuration, beta: usize) -> Self {
        let n = config.num_users();
        let k = config.num_slots();
        let mut views = Vec::with_capacity(n * k);
        for u in 0..n {
            for s in 0..k {
                views.push(vec![config.get(u, s)]);
            }
        }
        Self::new(n, k, beta.max(1), views)
    }

    /// Views of user `u` at slot `s` (first = primary).
    pub fn views(&self, u: UserIdx, s: SlotIdx) -> &[ItemIdx] {
        &self.views[u * self.k + s]
    }

    /// Primary view of user `u` at slot `s`.
    pub fn primary(&self, u: UserIdx, s: SlotIdx) -> ItemIdx {
        self.views[u * self.k + s][0]
    }

    /// Adds a group view; returns `false` (and leaves the unit unchanged) if
    /// the unit is full or already contains the item.
    pub fn add_group_view(&mut self, u: UserIdx, s: SlotIdx, c: ItemIdx) -> bool {
        let unit = &mut self.views[u * self.k + s];
        if unit.len() >= self.beta || unit.contains(&c) {
            return false;
        }
        unit.push(c);
        true
    }

    /// True if `c` is visible (in any view) to `u` at slot `s`.
    pub fn can_see(&self, u: UserIdx, s: SlotIdx, c: ItemIdx) -> bool {
        self.views(u, s).contains(&c)
    }

    /// The primary views no-duplication check (primary items must be distinct
    /// per user, mirroring constraint (14)).
    pub fn primaries_valid(&self, m: usize) -> bool {
        for u in 0..self.n {
            let mut seen = std::collections::HashSet::new();
            for s in 0..self.k {
                let c = self.primary(u, s);
                if c >= m || !seen.insert(c) {
                    return false;
                }
            }
        }
        true
    }
}

/// MVD objective (extension C): a user gains preference utility for every
/// visible item and social utility with every friend that can see the same
/// item at the same slot (through any view).
pub fn mvd_total_utility(instance: &SvgicInstance, mvd: &MvdConfiguration) -> f64 {
    let lambda = instance.lambda();
    let mut total = 0.0;
    for u in 0..instance.num_users() {
        for s in 0..instance.num_slots() {
            for &c in mvd.views(u, s) {
                let mut social = 0.0;
                for &(v, e) in instance.graph().out_neighbors(u) {
                    if mvd.can_see(v, s, c) {
                        social += instance.social_by_edge(e, c);
                    }
                }
                total += (1.0 - lambda) * instance.preference(u, c) + lambda * social;
            }
        }
    }
    total
}

/// Group-wise social benefit model (extension D): the social utility user `u`
/// obtains from co-viewing item `c` with the maximal subgroup `V` is
/// `scale(|V|) · Σ_{v ∈ V, (u,v) ∈ E} τ(u, v, c)`, where `scale` is a concave
/// function of the subgroup size (pairwise SVGIC is `scale ≡ 1`).
#[derive(Clone, Copy, Debug)]
pub enum GroupScaling {
    /// Plain pairwise aggregation (`scale ≡ 1`), the base SVGIC model.
    Pairwise,
    /// Diminishing returns: `scale(g) = 1 / sqrt(g - 1)` for `g ≥ 2`.
    DiminishingSqrt,
    /// Saturating: `scale(g) = min(1, cap / (g - 1))` for `g ≥ 2`.
    Saturating {
        /// Number of co-viewers after which additional members add nothing.
        cap: usize,
    },
}

impl GroupScaling {
    fn factor(&self, group_size: usize) -> f64 {
        if group_size < 2 {
            return 0.0;
        }
        match self {
            GroupScaling::Pairwise => 1.0,
            GroupScaling::DiminishingSqrt => 1.0 / ((group_size - 1) as f64).sqrt(),
            GroupScaling::Saturating { cap } => (*cap as f64 / (group_size - 1) as f64).min(1.0),
        }
    }
}

/// Total utility under the group-wise social model (extension D).
pub fn groupwise_total_utility(
    instance: &SvgicInstance,
    scaling: GroupScaling,
    config: &Configuration,
) -> f64 {
    let lambda = instance.lambda();
    let mut total = 0.0;
    for s in 0..config.num_slots() {
        for (c, members) in config.subgroups_at_slot(s) {
            let factor = scaling.factor(members.len());
            for &u in &members {
                let mut social = 0.0;
                for &(v, e) in instance.graph().out_neighbors(u) {
                    if members.binary_search(&v).is_ok() {
                        social += instance.social_by_edge(e, c);
                    }
                }
                total += (1.0 - lambda) * instance.preference(u, c) + lambda * factor * social;
            }
        }
    }
    total
}

/// A dynamic-scenario event (extension F).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DynamicEvent {
    /// A user (by original index into the full population) joins the store.
    Join(UserIdx),
    /// A currently present user leaves the store.
    Leave(UserIdx),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{paper_configurations, running_example};
    use crate::utility::total_utility;

    #[test]
    fn default_params_reduce_to_plain_objective() {
        let inst = running_example();
        let cfg = paper_configurations().optimal;
        let params = ExtendedParams::default();
        assert!(
            (extended_total_utility(&inst, &params, &cfg) - total_utility(&inst, &cfg)).abs()
                < 1e-9
        );
        assert!(params.validate(&inst).is_ok());
        assert!(params.satisfies_subgroup_change(&cfg));
    }

    #[test]
    fn commodity_values_reweight_items() {
        let inst = running_example();
        let cfg = paper_configurations().group;
        // Doubling every commodity value doubles the objective.
        let params = ExtendedParams {
            commodity: Some(vec![2.0; 5]),
            ..Default::default()
        };
        assert!(
            (extended_total_utility(&inst, &params, &cfg) - 2.0 * total_utility(&inst, &cfg)).abs()
                < 1e-9
        );
    }

    #[test]
    fn slot_significance_reweights_slots() {
        let inst = running_example();
        let cfg = paper_configurations().group;
        let params = ExtendedParams {
            slot_significance: Some(vec![1.0, 0.0, 0.0]),
            ..Default::default()
        };
        let only_slot0 = extended_total_utility(&inst, &params, &cfg);
        assert!(only_slot0 > 0.0);
        assert!(only_slot0 < total_utility(&inst, &cfg));
    }

    #[test]
    fn validation_rejects_bad_dimensions() {
        let inst = running_example();
        let bad = ExtendedParams {
            commodity: Some(vec![1.0; 3]),
            ..Default::default()
        };
        assert!(bad.validate(&inst).is_err());
        let bad2 = ExtendedParams {
            slot_significance: Some(vec![-1.0, 1.0, 1.0]),
            ..Default::default()
        };
        assert!(bad2.validate(&inst).is_err());
    }

    #[test]
    fn subgroup_change_cap() {
        let cfgs = paper_configurations();
        let relaxed = ExtendedParams {
            max_subgroup_change: Some(100),
            ..Default::default()
        };
        assert!(relaxed.satisfies_subgroup_change(&cfgs.optimal));
        let strict = ExtendedParams {
            max_subgroup_change: Some(0),
            ..Default::default()
        };
        // The group configuration never changes subgroups; the optimum does.
        assert!(strict.satisfies_subgroup_change(&cfgs.group));
        assert!(!strict.satisfies_subgroup_change(&cfgs.optimal));
    }

    #[test]
    fn mvd_extends_single_view() {
        let inst = running_example();
        let cfg = paper_configurations().personalized;
        let mut mvd = MvdConfiguration::from_configuration(&cfg, 2);
        assert!(mvd.primaries_valid(inst.num_items()));
        let single_view = mvd_total_utility(&inst, &mvd);
        assert!((single_view - total_utility(&inst, &cfg)).abs() < 1e-9);
        // Give Alice a group view of the SP camera at slot 1 where Dave's
        // primary is the SP camera: both preference and social utility rise.
        assert!(mvd.add_group_view(0, 1, crate::example::items::SP_CAMERA));
        assert!(
            !mvd.add_group_view(0, 1, crate::example::items::TRIPOD),
            "unit full at beta = 2"
        );
        let multi_view = mvd_total_utility(&inst, &mvd);
        assert!(multi_view > single_view);
        assert!(mvd.can_see(0, 1, crate::example::items::SP_CAMERA));
    }

    #[test]
    fn groupwise_scaling_orders_as_expected() {
        let inst = running_example();
        let cfg = paper_configurations().group;
        let pairwise = groupwise_total_utility(&inst, GroupScaling::Pairwise, &cfg);
        assert!((pairwise - total_utility(&inst, &cfg)).abs() < 1e-9);
        let diminishing = groupwise_total_utility(&inst, GroupScaling::DiminishingSqrt, &cfg);
        assert!(diminishing <= pairwise + 1e-12);
        let saturating = groupwise_total_utility(&inst, GroupScaling::Saturating { cap: 1 }, &cfg);
        assert!(saturating <= pairwise + 1e-12);
        let generous = groupwise_total_utility(&inst, GroupScaling::Saturating { cap: 10 }, &cfg);
        assert!((generous - pairwise).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "1..=beta")]
    fn mvd_rejects_oversized_units() {
        let _ = MvdConfiguration::new(1, 1, 1, vec![vec![0, 1]]);
    }
}
