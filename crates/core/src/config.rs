//! SAVG k-Configurations (Definition 1 of the paper).
//!
//! A configuration maps every `(user, slot)` pair to an item, subject to the
//! **no-duplication constraint**: the `k` items displayed to a user are
//! pairwise distinct.  [`PartialConfiguration`] is the work-in-progress form
//! used by the rounding algorithms (AVG, AVG-D), where some display units are
//! still unassigned (`NULL` in the paper's pseudocode).

use crate::{ItemIdx, SlotIdx, UserIdx};
use std::collections::HashMap;

/// A complete SAVG k-Configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    n: usize,
    k: usize,
    /// `assign[u * k + s]` is the item displayed to user `u` at slot `s`.
    assign: Vec<ItemIdx>,
}

impl Configuration {
    /// Creates a configuration from a flat assignment vector of length `n·k`
    /// (`assign[u*k + s]` = item of user `u` at slot `s`).
    ///
    /// # Panics
    /// Panics if the length does not equal `n·k`.
    pub fn from_flat(n: usize, k: usize, assign: Vec<ItemIdx>) -> Self {
        assert_eq!(assign.len(), n * k, "assignment must have n*k entries");
        Self { n, k, assign }
    }

    /// Creates a configuration from per-user item lists (each of length `k`).
    pub fn from_rows(rows: &[Vec<ItemIdx>]) -> Self {
        let n = rows.len();
        let k = rows.first().map(Vec::len).unwrap_or(0);
        assert!(rows.iter().all(|r| r.len() == k), "ragged rows");
        let mut assign = Vec::with_capacity(n * k);
        for r in rows {
            assign.extend_from_slice(r);
        }
        Self { n, k, assign }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.n
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// Item displayed to user `u` at slot `s` (`A(u, s)`).
    #[inline]
    pub fn get(&self, u: UserIdx, s: SlotIdx) -> ItemIdx {
        self.assign[u * self.k + s]
    }

    /// Overwrites the item displayed to user `u` at slot `s`.
    pub fn set(&mut self, u: UserIdx, s: SlotIdx, c: ItemIdx) {
        self.assign[u * self.k + s] = c;
    }

    /// The `k` items displayed to user `u` (`A(u, :)`), in slot order.
    pub fn items_of(&self, u: UserIdx) -> &[ItemIdx] {
        &self.assign[u * self.k..(u + 1) * self.k]
    }

    /// True if item `c` is displayed to `u` at some slot.
    pub fn displays(&self, u: UserIdx, c: ItemIdx) -> bool {
        self.items_of(u).contains(&c)
    }

    /// The slot at which `c` is displayed to `u`, if any.
    pub fn slot_of(&self, u: UserIdx, c: ItemIdx) -> Option<SlotIdx> {
        self.items_of(u).iter().position(|&x| x == c)
    }

    /// Checks the no-duplication constraint and that all items are `< m`.
    pub fn is_valid(&self, m: usize) -> bool {
        for u in 0..self.n {
            let items = self.items_of(u);
            if items.iter().any(|&c| c >= m) {
                return false;
            }
            for i in 0..items.len() {
                for j in (i + 1)..items.len() {
                    if items[i] == items[j] {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// The partition of users induced at slot `s`: users displayed the same
    /// item form one subgroup (Definition 1 / Definition 2 of the paper).
    /// Returns `(item, members)` pairs with members sorted ascending, ordered
    /// by item index.
    pub fn subgroups_at_slot(&self, s: SlotIdx) -> Vec<(ItemIdx, Vec<UserIdx>)> {
        let mut by_item: HashMap<ItemIdx, Vec<UserIdx>> = HashMap::new();
        for u in 0..self.n {
            by_item.entry(self.get(u, s)).or_default().push(u);
        }
        // lint: allow(hash-iter, drained into a Vec that is fully sorted below; hash order cannot escape)
        let mut groups: Vec<_> = by_item.into_iter().collect();
        for (_, members) in &mut groups {
            members.sort_unstable();
        }
        groups.sort_by_key(|&(c, _)| c);
        groups
    }

    /// Number of subgroups at slot `s` (`N_p(s)` in the paper).
    pub fn num_subgroups_at_slot(&self, s: SlotIdx) -> usize {
        self.subgroups_at_slot(s).len()
    }

    /// Direct co-displays of the user pair `(u, v)`: all `(slot, item)` with
    /// `A(u, s) = A(v, s)` (the relation `u ↔_s^c v`).
    pub fn co_displays(&self, u: UserIdx, v: UserIdx) -> Vec<(SlotIdx, ItemIdx)> {
        (0..self.k)
            .filter_map(|s| {
                let c = self.get(u, s);
                (c == self.get(v, s)).then_some((s, c))
            })
            .collect()
    }

    /// Indirect co-displays of the user pair `(u, v)` (Definition 4): items
    /// displayed to both users but at *different* slots.  Returns
    /// `(item, slot of u, slot of v)` triples.
    pub fn indirect_co_displays(&self, u: UserIdx, v: UserIdx) -> Vec<(ItemIdx, SlotIdx, SlotIdx)> {
        let mut out = Vec::new();
        for (su, &c) in self.items_of(u).iter().enumerate() {
            if let Some(sv) = self.slot_of(v, c) {
                if sv != su {
                    out.push((c, su, sv));
                }
            }
        }
        out
    }

    /// True if `u` shares at least one direct co-display with `v`.
    pub fn shares_view(&self, u: UserIdx, v: UserIdx) -> bool {
        (0..self.k).any(|s| self.get(u, s) == self.get(v, s))
    }

    /// Size of the largest per-slot subgroup over all slots (used to check the
    /// SVGIC-ST size constraint `M`).
    pub fn max_subgroup_size(&self) -> usize {
        (0..self.k)
            .map(|s| {
                self.subgroups_at_slot(s)
                    .into_iter()
                    .map(|(_, members)| members.len())
                    .max()
                    .unwrap_or(0)
            })
            .max()
            .unwrap_or(0)
    }

    /// Edit distance between the subgroup partitions of consecutive slots
    /// `s` and `s + 1` (extension E of §5): number of friendless... more
    /// precisely, the number of user pairs that share a subgroup at slot `s`
    /// but not at slot `s + 1`, or vice versa.
    pub fn subgroup_edit_distance(&self, s: SlotIdx) -> usize {
        assert!(s + 1 < self.k, "needs a successor slot");
        let mut count = 0usize;
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                let together_s = self.get(u, s) == self.get(v, s);
                let together_next = self.get(u, s + 1) == self.get(v, s + 1);
                if together_s != together_next {
                    count += 1;
                }
            }
        }
        count
    }
}

/// A partially built SAVG k-Configuration (display units may be unassigned).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PartialConfiguration {
    n: usize,
    k: usize,
    assign: Vec<Option<ItemIdx>>,
    unassigned: usize,
}

impl PartialConfiguration {
    /// Creates an all-unassigned partial configuration.
    pub fn empty(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            assign: vec![None; n * k],
            unassigned: n * k,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.n
    }

    /// Number of slots.
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// Item assigned to `(u, s)` if any.
    #[inline]
    pub fn get(&self, u: UserIdx, s: SlotIdx) -> Option<ItemIdx> {
        self.assign[u * self.k + s]
    }

    /// Number of display units still unassigned.
    pub fn unassigned_units(&self) -> usize {
        self.unassigned
    }

    /// True when every display unit has an item.
    pub fn is_complete(&self) -> bool {
        self.unassigned == 0
    }

    /// Assigns item `c` to `(u, s)`.
    ///
    /// # Panics
    /// Panics if the unit is already assigned (the rounding algorithms only
    /// ever assign eligible units).
    pub fn assign(&mut self, u: UserIdx, s: SlotIdx, c: ItemIdx) {
        let cell = &mut self.assign[u * self.k + s];
        assert!(cell.is_none(), "display unit ({u}, {s}) already assigned");
        *cell = Some(c);
        self.unassigned -= 1;
    }

    /// Eligibility check of the CSF rounding (§4.2): user `u` is *eligible for
    /// `(c, s)`* iff slot `s` of `u` is unassigned and `c` is not displayed to
    /// `u` at any other slot.
    pub fn eligible(&self, u: UserIdx, c: ItemIdx, s: SlotIdx) -> bool {
        if self.get(u, s).is_some() {
            return false;
        }
        !(0..self.k).any(|t| t != s && self.get(u, t) == Some(c))
    }

    /// List of `(user, slot)` display units still unassigned.
    pub fn unassigned_units_list(&self) -> Vec<(UserIdx, SlotIdx)> {
        let mut out = Vec::with_capacity(self.unassigned);
        for u in 0..self.n {
            for s in 0..self.k {
                if self.get(u, s).is_none() {
                    out.push((u, s));
                }
            }
        }
        out
    }

    /// Number of users currently displayed item `c` at slot `s` (needed for
    /// the SVGIC-ST subgroup size cap).
    pub fn subgroup_size(&self, c: ItemIdx, s: SlotIdx) -> usize {
        (0..self.n).filter(|&u| self.get(u, s) == Some(c)).count()
    }

    /// Converts into a complete [`Configuration`].
    ///
    /// # Panics
    /// Panics if any unit is still unassigned.
    pub fn into_configuration(self) -> Configuration {
        assert!(
            self.is_complete(),
            "configuration still has unassigned units"
        );
        Configuration::from_flat(
            self.n,
            self.k,
            self.assign.into_iter().map(Option::unwrap).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_config() -> Configuration {
        // 3 users, 2 slots.
        Configuration::from_rows(&[vec![0, 1], vec![0, 2], vec![1, 2]])
    }

    #[test]
    fn accessors_and_validity() {
        let c = example_config();
        assert_eq!(c.num_users(), 3);
        assert_eq!(c.num_slots(), 2);
        assert_eq!(c.get(1, 1), 2);
        assert_eq!(c.items_of(2), &[1, 2]);
        assert!(c.is_valid(3));
        assert!(!c.is_valid(2)); // item 2 out of range
        let dup = Configuration::from_rows(&[vec![1, 1]]);
        assert!(!dup.is_valid(3));
    }

    #[test]
    fn subgroups_per_slot() {
        let c = example_config();
        let slot0 = c.subgroups_at_slot(0);
        assert_eq!(slot0, vec![(0, vec![0, 1]), (1, vec![2])]);
        assert_eq!(c.num_subgroups_at_slot(1), 2);
        assert_eq!(c.max_subgroup_size(), 2);
    }

    #[test]
    fn co_display_relations() {
        let c = example_config();
        assert_eq!(c.co_displays(0, 1), vec![(0, 0)]);
        assert!(c.shares_view(0, 1));
        assert!(!c.shares_view(0, 2));
        // User 0 sees item 1 at slot 1; user 2 sees item 1 at slot 0 => indirect.
        assert_eq!(c.indirect_co_displays(0, 2), vec![(1, 1, 0)]);
        // Direct co-display is not reported as indirect.
        assert!(c.indirect_co_displays(0, 1).is_empty());
    }

    #[test]
    fn subgroup_edit_distance_counts_changes() {
        // Pair (0,1) is together at slot 0 but separate at slot 1, and pair
        // (1,2) is separate at slot 0 but together at slot 1 => distance 2.
        let c = example_config();
        assert_eq!(c.subgroup_edit_distance(0), 2);
        let stable = Configuration::from_rows(&[vec![0, 1], vec![0, 1]]);
        assert_eq!(stable.subgroup_edit_distance(0), 0);
    }

    #[test]
    fn slot_of_and_displays() {
        let c = example_config();
        assert_eq!(c.slot_of(1, 2), Some(1));
        assert_eq!(c.slot_of(1, 1), None);
        assert!(c.displays(0, 1));
        assert!(!c.displays(1, 1));
    }

    #[test]
    fn partial_configuration_lifecycle() {
        let mut p = PartialConfiguration::empty(2, 2);
        assert!(!p.is_complete());
        assert_eq!(p.unassigned_units(), 4);
        assert!(p.eligible(0, 5, 0));
        p.assign(0, 0, 5);
        assert!(!p.eligible(0, 5, 1), "item 5 already shown to user 0");
        assert!(!p.eligible(0, 7, 0), "slot 0 already filled");
        assert!(p.eligible(0, 7, 1));
        assert_eq!(p.subgroup_size(5, 0), 1);
        assert_eq!(p.unassigned_units_list(), vec![(0, 1), (1, 0), (1, 1)]);
        p.assign(0, 1, 7);
        p.assign(1, 0, 5);
        p.assign(1, 1, 6);
        assert!(p.is_complete());
        let c = p.into_configuration();
        assert_eq!(c.get(1, 1), 6);
        assert!(c.is_valid(8));
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assignment_panics() {
        let mut p = PartialConfiguration::empty(1, 1);
        p.assign(0, 0, 1);
        p.assign(0, 0, 2);
    }

    #[test]
    #[should_panic(expected = "unassigned units")]
    fn incomplete_into_configuration_panics() {
        let p = PartialConfiguration::empty(1, 2);
        let _ = p.into_configuration();
    }
}
