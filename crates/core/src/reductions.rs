//! Hardness-reduction constructions of §3.3, usable as constructive oracles.
//!
//! Three reductions are implemented exactly as described in the paper:
//!
//! * **MAX-E3SAT → SVGIC** (Lemma 2): a CNF formula with exactly three
//!   literals per clause is turned into an SVGIC instance with `k = λ = 1`
//!   such that a truth assignment satisfying `x` clauses yields an SVGIC
//!   solution of value `2x + 6·m_cla`.
//! * **Max-K3P → SVGIC** (APX-hardness): edges and triangles of a graph become
//!   items; an edge/triangle packing of `x` edges yields an SVGIC solution of
//!   value `x`.
//! * **Densest-k-Subgraph → SVGIC-ST** (Theorem 3): a DkS solution with `x`
//!   induced edges yields an SVGIC-ST solution of value `x` under the subgroup
//!   cap `M = k̂`.
//!
//! Besides demonstrating the constructions, each reduction ships a
//! `configuration_from_*` helper that maps a witness of the source problem to
//! the corresponding SVGIC configuration, which the tests use to verify the
//! value correspondences claimed in the proofs.

use crate::config::Configuration;
use crate::instance::{SvgicInstance, SvgicInstanceBuilder};
use crate::st::StParams;
use svgic_graph::SocialGraph;

// ---------------------------------------------------------------------------
// MAX-E3SAT → SVGIC
// ---------------------------------------------------------------------------

/// A literal of a 3-CNF formula: variable index plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Literal {
    /// Boolean variable index.
    pub var: usize,
    /// True if the literal is negated.
    pub negated: bool,
}

impl Literal {
    /// Positive literal of variable `var`.
    pub fn pos(var: usize) -> Self {
        Self {
            var,
            negated: false,
        }
    }
    /// Negative literal of variable `var`.
    pub fn neg(var: usize) -> Self {
        Self { var, negated: true }
    }
    /// Evaluates the literal under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assignment[self.var] ^ self.negated
    }
}

/// A clause with exactly three literals.
pub type Clause = [Literal; 3];

/// A MAX-E3SAT formula.
#[derive(Clone, Debug, Default)]
pub struct E3SatFormula {
    /// Number of Boolean variables.
    pub num_vars: usize,
    /// Clauses, each with exactly three literals.
    pub clauses: Vec<Clause>,
}

impl E3SatFormula {
    /// Number of clauses satisfied by an assignment.
    pub fn satisfied(&self, assignment: &[bool]) -> usize {
        self.clauses
            .iter()
            .filter(|cl| cl.iter().any(|l| l.eval(assignment)))
            .count()
    }
}

/// The SVGIC instance produced from a MAX-E3SAT formula, with the vertex/item
/// maps needed to translate witnesses.
#[derive(Clone, Debug)]
pub struct E3SatReduction {
    /// The constructed SVGIC instance (`k = λ = 1`).
    pub instance: SvgicInstance,
    /// Index of the clause vertex `u_j`.
    pub clause_vertex: Vec<usize>,
    /// `literal_vertex[j][t]` = vertex `v_{j,t}` of literal `t` of clause `j`.
    pub literal_vertex: Vec<[usize; 3]>,
    /// `literal_vertex_neg[j][t]` = vertex `v'_{j,t}`.
    pub literal_vertex_neg: Vec<[usize; 3]>,
    /// Index of the variable vertex `w_i`.
    pub variable_vertex: Vec<usize>,
    /// Item `c_{j,t}` of the edge `(u_j, v_{j,t})`.
    pub clause_item: Vec<[usize; 3]>,
    /// Item `c'_{j,t}` of the edge `(u_j, v'_{j,t})`.
    pub clause_item_neg: Vec<[usize; 3]>,
    /// Item `c_i` of variable `i` (assign when the variable is FALSE).
    pub variable_item: Vec<usize>,
    /// Item `c'_i` of variable `i` (assign when the variable is TRUE).
    pub variable_item_neg: Vec<usize>,
}

/// Builds the gap-preserving reduction of Lemma 2.
pub fn reduce_e3sat(formula: &E3SatFormula) -> E3SatReduction {
    let nvar = formula.num_vars;
    let mcla = formula.clauses.len();
    let n_vertices = nvar + 7 * mcla;

    // Vertex layout: clause vertices, then literal vertices (v, v') per clause,
    // then variable vertices.
    let clause_vertex: Vec<usize> = (0..mcla).collect();
    let mut literal_vertex = vec![[0usize; 3]; mcla];
    let mut literal_vertex_neg = vec![[0usize; 3]; mcla];
    let mut next = mcla;
    for j in 0..mcla {
        for t in 0..3 {
            literal_vertex[j][t] = next;
            literal_vertex_neg[j][t] = next + 1;
            next += 2;
        }
    }
    let variable_vertex: Vec<usize> = (0..nvar).map(|i| next + i).collect();
    debug_assert_eq!(next + nvar, n_vertices);

    // Item layout: c_{j,t}, c'_{j,t} per clause literal, then c_i, c'_i per variable.
    let mut clause_item = vec![[0usize; 3]; mcla];
    let mut clause_item_neg = vec![[0usize; 3]; mcla];
    let mut item = 0usize;
    for j in 0..mcla {
        for t in 0..3 {
            clause_item[j][t] = item;
            clause_item_neg[j][t] = item + 1;
            item += 2;
        }
    }
    let variable_item: Vec<usize> = (0..nvar).map(|i| item + 2 * i).collect();
    let variable_item_neg: Vec<usize> = (0..nvar).map(|i| item + 2 * i + 1).collect();
    let n_items = item + 2 * nvar;

    // Edges: clause vertex to the literal vertex matching the TRUE assignment
    // of the literal, and variable vertex to both v and v' of every occurrence.
    let mut graph = SocialGraph::new(n_vertices);
    let mut socials: Vec<(usize, usize, usize)> = Vec::new(); // (u, v, item) with τ = 1 both ways
    for (j, clause) in formula.clauses.iter().enumerate() {
        for (t, lit) in clause.iter().enumerate() {
            // Edge (u_j, v_{j,t}) for positive literals, (u_j, v'_{j,t}) for negated.
            let (lit_vertex, lit_item) = if !lit.negated {
                (literal_vertex[j][t], clause_item[j][t])
            } else {
                (literal_vertex_neg[j][t], clause_item_neg[j][t])
            };
            graph.add_edge(clause_vertex[j], lit_vertex);
            graph.add_edge(lit_vertex, clause_vertex[j]);
            socials.push((clause_vertex[j], lit_vertex, lit_item));
            // Edges (w_i, v_{j,t}) and (w_i, v'_{j,t}): every occurrence of
            // variable a_i forms a P3 centred at w_i, with τ = 1 on
            // (w_i, v_{j,t}) via item c_i and on (w_i, v'_{j,t}) via item
            // c'_i, so that exactly one of the two edges can be realised
            // (w_i displays a single item because k = 1).
            let w = variable_vertex[lit.var];
            graph.add_edge(w, literal_vertex[j][t]);
            graph.add_edge(literal_vertex[j][t], w);
            graph.add_edge(w, literal_vertex_neg[j][t]);
            graph.add_edge(literal_vertex_neg[j][t], w);
            socials.push((w, literal_vertex[j][t], variable_item[lit.var]));
            socials.push((w, literal_vertex_neg[j][t], variable_item_neg[lit.var]));
        }
    }

    let mut builder = SvgicInstanceBuilder::new(graph, n_items.max(1), 1, 1.0);
    for (u, v, c) in socials {
        builder.set_social(u, v, c, 1.0);
        builder.set_social(v, u, c, 1.0);
    }
    let instance = builder.build().expect("reduction instance is valid");

    E3SatReduction {
        instance,
        clause_vertex,
        literal_vertex,
        literal_vertex_neg,
        variable_vertex,
        clause_item,
        clause_item_neg,
        variable_item,
        variable_item_neg,
    }
}

impl E3SatReduction {
    /// Builds the SVGIC configuration corresponding to a truth assignment,
    /// following the constructive proof of the sufficient condition of
    /// Lemma 2.  Its unweighted utility is `2·(#satisfied) + 6·(#clauses)`
    /// when every clause of the formula appears with its variables.
    pub fn configuration_from_assignment(
        &self,
        formula: &E3SatFormula,
        assignment: &[bool],
    ) -> Configuration {
        let n = self.instance.num_users();
        let mut assign: Vec<Option<usize>> = vec![None; n];

        // Variable vertices: w_i shows c'_i when TRUE, c_i when FALSE.
        for (i, &w) in self.variable_vertex.iter().enumerate() {
            assign[w] = Some(if assignment[i] {
                self.variable_item_neg[i]
            } else {
                self.variable_item[i]
            });
        }
        for (j, clause) in formula.clauses.iter().enumerate() {
            // Satisfied clause: u_j co-displays the first TRUE literal's item
            // with the matching literal vertex.
            if let Some(tj) = (0..3).find(|&t| clause[t].eval(assignment)) {
                let lit = clause[tj];
                if !lit.negated {
                    assign[self.clause_vertex[j]] = Some(self.clause_item[j][tj]);
                    assign[self.literal_vertex[j][tj]] = Some(self.clause_item[j][tj]);
                } else {
                    assign[self.clause_vertex[j]] = Some(self.clause_item_neg[j][tj]);
                    assign[self.literal_vertex_neg[j][tj]] = Some(self.clause_item_neg[j][tj]);
                }
            }
            // Every occurrence of variable a_i realises exactly one edge of its
            // P3: the v'-side on c'_i when a_i is TRUE (matching w_i's item),
            // the v-side on c_i when a_i is FALSE.
            for (t, lit) in clause.iter().enumerate() {
                let v_pos = self.literal_vertex[j][t];
                let v_neg = self.literal_vertex_neg[j][t];
                if assignment[lit.var] {
                    if assign[v_neg].is_none() {
                        assign[v_neg] = Some(self.variable_item_neg[lit.var]);
                    }
                } else if assign[v_pos].is_none() {
                    assign[v_pos] = Some(self.variable_item[lit.var]);
                }
                // The remaining vertex of the pair gets its own clause item,
                // which carries no utility unless u_j also displays it.
                if assign[v_pos].is_none() {
                    assign[v_pos] = Some(self.clause_item[j][t]);
                }
                if assign[v_neg].is_none() {
                    assign[v_neg] = Some(self.clause_item_neg[j][t]);
                }
            }
        }
        // Unsatisfied clauses' u_j (and anything untouched) may show anything;
        // use the first item.
        let flat: Vec<usize> = assign.into_iter().map(|a| a.unwrap_or(0)).collect();
        Configuration::from_flat(n, 1, flat)
    }
}

// ---------------------------------------------------------------------------
// Max-K3P → SVGIC
// ---------------------------------------------------------------------------

/// The SVGIC instance produced from a Max-K3P (edge/triangle packing) input.
#[derive(Clone, Debug)]
pub struct K3PReduction {
    /// The constructed SVGIC instance (`k = λ = 1`).
    pub instance: SvgicInstance,
    /// One item per undirected edge of the source graph, in
    /// `SocialGraph::friend_pairs` order.
    pub edge_item: Vec<usize>,
    /// One item per triangle, in `SocialGraph::triangles` order.
    pub triangle_item: Vec<usize>,
    /// The source graph's friend pairs (for mapping witnesses).
    pub source_pairs: Vec<(usize, usize)>,
    /// The source graph's triangles.
    pub source_triangles: Vec<(usize, usize, usize)>,
}

/// Builds the APX-hardness reduction from Max-K3P (§3.3, second proof of
/// Theorem 2): each edge and each triangle of the input graph becomes an item
/// with social utility ½ on its member pairs.
pub fn reduce_k3p(source: &SocialGraph) -> K3PReduction {
    let pairs: Vec<(usize, usize)> = source
        .friend_pairs()
        .into_iter()
        .map(|(u, v, _)| (u, v))
        .collect();
    let triangles = source.triangles();
    let n_items = (pairs.len() + triangles.len()).max(1);
    // The SVGIC graph mirrors the source graph (both directions).
    let graph = SocialGraph::from_undirected_edges(source.num_nodes(), pairs.iter().copied());
    let mut builder = SvgicInstanceBuilder::new(graph, n_items, 1, 1.0);
    let edge_item: Vec<usize> = (0..pairs.len()).collect();
    let triangle_item: Vec<usize> = (0..triangles.len()).map(|i| pairs.len() + i).collect();
    for (idx, &(u, v)) in pairs.iter().enumerate() {
        builder.set_social(u, v, edge_item[idx], 0.5);
        builder.set_social(v, u, edge_item[idx], 0.5);
    }
    for (idx, &(a, b, c)) in triangles.iter().enumerate() {
        for &(x, y) in &[(a, b), (a, c), (b, c)] {
            builder.set_social(x, y, triangle_item[idx], 0.5);
            builder.set_social(y, x, triangle_item[idx], 0.5);
        }
    }
    K3PReduction {
        instance: builder.build().expect("valid reduction"),
        edge_item,
        triangle_item,
        source_pairs: pairs,
        source_triangles: triangles,
    }
}

impl K3PReduction {
    /// Builds the SVGIC configuration corresponding to a packing given as a
    /// list of disjoint edges (indices into `source_pairs`) and triangles
    /// (indices into `source_triangles`); its utility equals the number of
    /// packed edges (each triangle counts 3).
    pub fn configuration_from_packing(
        &self,
        edges: &[usize],
        triangles: &[usize],
    ) -> Configuration {
        let n = self.instance.num_users();
        // Unused vertices get a harmless unique-ish item: reuse item 0 when no
        // better option exists; since λ = 1 and p ≡ 0 only co-displays matter,
        // but we must avoid accidentally co-displaying a utility-carrying item,
        // so unmatched vertices take an item carrying no τ on their pairs —
        // item 0 only carries utility on its own edge's endpoints, so route
        // unmatched vertices to an item they are not part of.
        let mut assign: Vec<Option<usize>> = vec![None; n];
        for &e in edges {
            let (u, v) = self.source_pairs[e];
            assign[u] = Some(self.edge_item[e]);
            assign[v] = Some(self.edge_item[e]);
        }
        for &t in triangles {
            let (a, b, c) = self.source_triangles[t];
            for &x in &[a, b, c] {
                assign[x] = Some(self.triangle_item[t]);
            }
        }
        // Fill unmatched vertices with an item whose τ they do not share: pick
        // any item not incident to the vertex (exists whenever there are ≥ 2
        // pairs; otherwise fall back to item 0 which is harmless for isolated
        // vertices).
        let flat: Vec<usize> = assign
            .into_iter()
            .enumerate()
            .map(|(v, a)| {
                a.unwrap_or_else(|| {
                    self.source_pairs
                        .iter()
                        .position(|&(x, y)| x != v && y != v)
                        .map(|idx| self.edge_item[idx])
                        .unwrap_or(0)
                })
            })
            .collect();
        Configuration::from_flat(n, 1, flat)
    }
}

// ---------------------------------------------------------------------------
// Densest-k-Subgraph → SVGIC-ST
// ---------------------------------------------------------------------------

/// The SVGIC-ST instance produced from a Densest-k̂-Subgraph input.
#[derive(Clone, Debug)]
pub struct DksReduction {
    /// The constructed instance (`k = 1`, `λ = 1`).
    pub instance: SvgicInstance,
    /// The ST parameters (subgroup cap `M = k̂`).
    pub st: StParams,
    /// Number of padding singleton vertices added so that `k̂` divides `n`.
    pub padding: usize,
    /// The subgraph size `k̂`.
    pub k_hat: usize,
}

/// Builds the Theorem 3 reduction: only item 0 carries social utility (½ per
/// direction on every source edge); the cap forces subgroups of size exactly
/// `k̂`, so the best subgroup on item 0 is a densest `k̂`-subgraph.
pub fn reduce_dks(source: &SocialGraph, k_hat: usize) -> DksReduction {
    assert!(k_hat >= 1, "k_hat must be positive");
    let n0 = source.num_nodes();
    let padding = (k_hat - (n0 % k_hat)) % k_hat;
    let n = n0 + padding;
    let m = (n / k_hat).max(1);
    let pairs: Vec<(usize, usize)> = source
        .friend_pairs()
        .into_iter()
        .map(|(u, v, _)| (u, v))
        .collect();
    let graph = SocialGraph::from_undirected_edges(n, pairs.iter().copied());
    let mut builder = SvgicInstanceBuilder::new(graph, m, 1, 1.0);
    for &(u, v) in &pairs {
        builder.set_social(u, v, 0, 0.5);
        builder.set_social(v, u, 0, 0.5);
    }
    DksReduction {
        instance: builder.build().expect("valid reduction"),
        st: StParams::new(0.0, k_hat),
        padding,
        k_hat,
    }
}

impl DksReduction {
    /// Builds the SVGIC-ST configuration corresponding to a chosen `k̂`-vertex
    /// subgraph: its members view item 0, all other vertices are partitioned
    /// into balanced groups over the remaining items.  The utility equals the
    /// number of edges induced by `subgraph`.
    pub fn configuration_from_subgraph(&self, subgraph: &[usize]) -> Configuration {
        assert!(subgraph.len() <= self.k_hat, "subgraph larger than k_hat");
        let n = self.instance.num_users();
        let m = self.instance.num_items();
        let chosen: std::collections::HashSet<usize> = subgraph.iter().copied().collect();
        let mut assign = vec![0usize; n];
        let mut bucket = 1usize;
        let mut filled = 0usize;
        for (v, slot) in assign.iter_mut().enumerate() {
            if chosen.contains(&v) {
                *slot = 0;
            } else {
                if filled == self.k_hat {
                    bucket += 1;
                    filled = 0;
                }
                *slot = bucket.min(m - 1);
                filled += 1;
            }
        }
        Configuration::from_flat(n, 1, assign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::{total_utility, total_utility_st, unweighted_total_utility};
    use svgic_graph::generate::complete_graph;

    fn small_formula() -> E3SatFormula {
        // φ = (a1 ∨ ¬a3 ∨ a4) ∧ (¬a2 ∨ a3 ∨ ¬a4)  — the paper's Figure 2.
        E3SatFormula {
            num_vars: 4,
            clauses: vec![
                [Literal::pos(0), Literal::neg(2), Literal::pos(3)],
                [Literal::neg(1), Literal::pos(2), Literal::neg(3)],
            ],
        }
    }

    #[test]
    fn e3sat_reduction_dimensions() {
        let formula = small_formula();
        let red = reduce_e3sat(&formula);
        // n = nvar + 7 * mcla = 4 + 14 = 18 vertices; 9 * mcla = 18 directed-pair edges.
        assert_eq!(red.instance.num_users(), 18);
        assert_eq!(red.instance.graph().num_friend_pairs(), 18);
        // Items: 6 per clause + 2 per variable = 12 + 8 = 20.
        assert_eq!(red.instance.num_items(), 20);
        assert_eq!(red.instance.num_slots(), 1);
        assert_eq!(red.instance.lambda(), 1.0);
    }

    #[test]
    fn e3sat_satisfying_assignment_reaches_promised_value() {
        let formula = small_formula();
        let red = reduce_e3sat(&formula);
        // a = (T, F, T, T) satisfies clause 1 (a1) and clause 2 (a3).
        let assignment = vec![true, false, true, true];
        assert_eq!(formula.satisfied(&assignment), 2);
        let cfg = red.configuration_from_assignment(&formula, &assignment);
        assert!(cfg.is_valid(red.instance.num_items()));
        // Lemma 2: value ≥ 2·(#satisfied) + 6·m_cla = 4 + 12 = 16 (λ = 1 so the
        // weighted and unweighted objectives coincide).
        let value = unweighted_total_utility(&red.instance, &cfg);
        assert!(
            value >= 16.0 - 1e-9,
            "assignment-derived configuration only reaches {value}"
        );
        assert!((total_utility(&red.instance, &cfg) - value).abs() < 1e-9);
    }

    #[test]
    fn e3sat_worse_assignment_gives_lower_value() {
        let formula = small_formula();
        let red = reduce_e3sat(&formula);
        let good = red.configuration_from_assignment(&formula, &[true, false, true, true]);
        // (F, T, F, F): clause 1 satisfied by ¬a3, clause 2 satisfied by ¬a2 — both satisfied;
        // use an assignment violating clause 1 instead: a1=F, a3=T, a4=F → ¬a3 false, a4 false,
        // a1 false → clause 1 unsatisfied; clause 2: ¬a2 with a2=T false, a3=T true → satisfied.
        let worse_assignment = vec![false, true, true, false];
        assert_eq!(formula.satisfied(&worse_assignment), 1);
        let worse = red.configuration_from_assignment(&formula, &worse_assignment);
        let v_good = unweighted_total_utility(&red.instance, &good);
        let v_worse = unweighted_total_utility(&red.instance, &worse);
        assert!(
            v_good > v_worse,
            "good {v_good} should exceed worse {v_worse}"
        );
    }

    #[test]
    fn k3p_reduction_counts_packed_edges() {
        // K4: pack one triangle (3 edges) + nothing else (the 4th vertex is free).
        let g = complete_graph(4);
        let red = reduce_k3p(&g);
        assert_eq!(red.source_pairs.len(), 6);
        assert_eq!(red.source_triangles.len(), 4);
        assert_eq!(red.instance.num_items(), 10);
        // Pack triangle (0,1,2).
        let t = red
            .source_triangles
            .iter()
            .position(|&t| t == (0, 1, 2))
            .unwrap();
        let cfg = red.configuration_from_packing(&[], &[t]);
        assert!(cfg.is_valid(red.instance.num_items()));
        let value = unweighted_total_utility(&red.instance, &cfg);
        assert!(
            (value - 3.0).abs() < 1e-9,
            "triangle packing should be worth 3, got {value}"
        );
        // Pack a single edge instead.
        let cfg_edge = red.configuration_from_packing(&[0], &[]);
        let value_edge = unweighted_total_utility(&red.instance, &cfg_edge);
        assert!((value_edge - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dks_reduction_counts_induced_edges() {
        // A graph with a dense core {0,1,2} (triangle) and a pendant path.
        let g =
            SocialGraph::from_undirected_edges(6, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let red = reduce_dks(&g, 3);
        assert_eq!(red.padding, 0);
        assert_eq!(red.instance.num_items(), 2);
        let cfg = red.configuration_from_subgraph(&[0, 1, 2]);
        assert!(red.st.is_feasible(&cfg), "subgroup cap must hold");
        let value = total_utility_st(&red.instance, &red.st, &cfg);
        assert!(
            (value - 3.0).abs() < 1e-9,
            "triangle core has 3 edges, got {value}"
        );
        let sparse = red.configuration_from_subgraph(&[3, 4, 5]);
        let sparse_value = total_utility_st(&red.instance, &red.st, &sparse);
        assert!((sparse_value - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dks_reduction_pads_to_multiple_of_khat() {
        let g = complete_graph(5);
        let red = reduce_dks(&g, 3);
        assert_eq!(red.padding, 1);
        assert_eq!(red.instance.num_users(), 6);
        assert_eq!(red.instance.num_items(), 2);
    }
}
