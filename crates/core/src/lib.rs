//! # svgic-core
//!
//! Problem model for **Social-aware VR Group-Item Configuration (SVGIC)** and
//! its extension **SVGIC-ST**, reproducing the formulation of Ko et al.
//! (VLDB 2020).
//!
//! The crate defines:
//!
//! * [`SvgicInstance`] — the problem input: a directed social network, a
//!   universal item set, preference utilities `p(u, c)`, social utilities
//!   `τ(u, v, c)`, the preference/social trade-off weight `λ`, and the number
//!   of display slots `k` (§3.1 of the paper);
//! * [`Configuration`] — an SAVG k-Configuration `A : V × [k] → C` obeying the
//!   no-duplication constraint (Definition 1), plus the partial configuration
//!   used while rounding;
//! * [`utility`] — the SAVG utility (Definition 3), its SVGIC-ST extension
//!   with indirect co-display and teleportation discount (Definition 5), the
//!   personal/social split, per-user utilities and regret bounds used by the
//!   evaluation section;
//! * [`st`] — the SVGIC-ST side constraints (subgroup size cap `M`,
//!   teleportation discount `d_tel`);
//! * [`ip_model`] — builders for the paper's IP model (constraints (1)–(10)),
//!   its LP relaxation LP_SVGIC, the condensed LP_SIMP of §4.4, and the
//!   structured min-coupling form consumed by the large-scale LP backend;
//! * [`reductions`] — the gap-preserving hardness reductions of §3.3
//!   (MAX-E3SAT → SVGIC, Max-K3P → SVGIC, Densest-k-Subgraph → SVGIC-ST),
//!   usable as constructive test oracles;
//! * [`example`] — the paper's running example (Tables 1 and 6–9), used as a
//!   golden fixture throughout the workspace;
//! * [`extensions`] — the practical-scenario parameters of §5 (commodity
//!   values, slot significance, multi-view display, group-wise social
//!   benefits, subgroup-change limits).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod example;
pub mod extensions;
pub mod instance;
pub mod ip_model;
pub mod reductions;
pub mod st;
pub mod utility;

pub use config::{Configuration, PartialConfiguration};
pub use instance::{FriendPair, InstanceError, SvgicInstance, SvgicInstanceBuilder};
pub use st::StParams;
pub use utility::{UtilityBreakdown, UtilitySplit};

/// Index of a user (vertex of the social network).
pub type UserIdx = usize;
/// Index of an item in the universal item set `C`.
pub type ItemIdx = usize;
/// Index of a display slot, in `0..k`.
pub type SlotIdx = usize;
