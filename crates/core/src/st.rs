//! SVGIC-ST side constraints (§3.2 of the paper).
//!
//! SVGIC-ST adds to the base problem:
//!
//! * a **teleportation discount** `d_tel < 1` applied to the social utility of
//!   *indirect* co-displays (friends who see the same item at different slots
//!   and must teleport to discuss it), and
//! * a **subgroup size constraint** `M`: at every slot, no more than `M` users
//!   may be directly co-displayed the same item (practical VR platforms cap
//!   the number of users sharing one virtual environment).

use crate::config::Configuration;
use crate::instance::SvgicInstance;

/// Parameters of the SVGIC-ST problem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StParams {
    /// Teleportation discount factor `d_tel ∈ [0, 1)` applied to indirect
    /// co-display social utility.
    pub d_tel: f64,
    /// Maximum number of users that may be co-displayed the same item at the
    /// same slot (`M`).
    pub max_subgroup: usize,
}

impl StParams {
    /// Creates the parameter set.
    ///
    /// # Panics
    /// Panics if `d_tel` is not in `[0, 1]` or `max_subgroup == 0`.
    pub fn new(d_tel: f64, max_subgroup: usize) -> Self {
        assert!((0.0..=1.0).contains(&d_tel), "d_tel must lie in [0, 1]");
        assert!(max_subgroup >= 1, "the subgroup cap must be at least 1");
        Self {
            d_tel,
            max_subgroup,
        }
    }

    /// The paper's default: `d_tel = 0.5`, effectively no size cap.
    pub fn teleport_only(d_tel: f64) -> Self {
        Self::new(d_tel, usize::MAX)
    }

    /// Total violation of the subgroup size constraint, in number of users:
    /// for every slot and item, the excess of the subgroup size over `M`,
    /// summed (the measure plotted in Fig. 13).
    pub fn total_violation(&self, config: &Configuration) -> usize {
        let mut violation = 0usize;
        for s in 0..config.num_slots() {
            for (_, members) in config.subgroups_at_slot(s) {
                violation += members.len().saturating_sub(self.max_subgroup);
            }
        }
        violation
    }

    /// Number of per-slot subgroups exceeding the cap.
    pub fn oversized_subgroups(&self, config: &Configuration) -> usize {
        let mut count = 0usize;
        for s in 0..config.num_slots() {
            for (_, members) in config.subgroups_at_slot(s) {
                if members.len() > self.max_subgroup {
                    count += 1;
                }
            }
        }
        count
    }

    /// True when the configuration satisfies the subgroup size constraint.
    pub fn is_feasible(&self, config: &Configuration) -> bool {
        self.total_violation(config) == 0
    }

    /// Fraction of `configs` that satisfy the size constraint (the
    /// *feasibility ratio* metric of §6.1).
    pub fn feasibility_ratio(&self, configs: &[Configuration]) -> f64 {
        if configs.is_empty() {
            return 1.0;
        }
        configs.iter().filter(|c| self.is_feasible(c)).count() as f64 / configs.len() as f64
    }

    /// Validates the parameter set against an instance (the cap must allow a
    /// feasible configuration to exist, which it always does because every
    /// user may view her own item: any `M ≥ 1` is feasible as long as
    /// `m ≥ ... `; we simply check that enough items exist for a disjoint
    /// assignment when `M` is very small).
    pub fn admits_feasible_configuration(&self, instance: &SvgicInstance) -> bool {
        // At every slot the n users must be split into subgroups of size ≤ M,
        // each labelled with a distinct item, and across a user's k slots the
        // items must differ.  A sufficient (and for this simple model,
        // necessary) condition is m ≥ k · ⌈n / (M·k)⌉ ... conservatively we
        // require m ≥ max(k, ⌈n / M⌉).
        let n = instance.num_users();
        let m = instance.num_items();
        let needed_groups = n.div_ceil(self.max_subgroup.max(1));
        m >= instance.num_slots().max(needed_groups.min(n))
    }
}

impl Default for StParams {
    fn default() -> Self {
        Self {
            d_tel: 0.5,
            max_subgroup: usize::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::example;

    #[test]
    fn violation_counts_excess_users() {
        // 4 users, 1 slot, all seeing item 0.
        let cfg = Configuration::from_rows(&[vec![0], vec![0], vec![0], vec![1]]);
        let st = StParams::new(0.5, 2);
        assert_eq!(st.total_violation(&cfg), 1); // subgroup of 3, cap 2
        assert_eq!(st.oversized_subgroups(&cfg), 1);
        assert!(!st.is_feasible(&cfg));
        let loose = StParams::new(0.5, 3);
        assert!(loose.is_feasible(&cfg));
    }

    #[test]
    fn feasibility_ratio_over_samples() {
        let good = Configuration::from_rows(&[vec![0], vec![1]]);
        let bad = Configuration::from_rows(&[vec![0], vec![0]]);
        let st = StParams::new(0.5, 1);
        assert!((st.feasibility_ratio(&[good.clone(), bad.clone()]) - 0.5).abs() < 1e-12);
        assert!((st.feasibility_ratio(&[good]) - 1.0).abs() < 1e-12);
        assert!((st.feasibility_ratio(&[]) - 1.0).abs() < 1e-12);
        let _ = bad;
    }

    #[test]
    fn default_and_teleport_only() {
        let d = StParams::default();
        assert_eq!(d.max_subgroup, usize::MAX);
        let t = StParams::teleport_only(0.3);
        assert!((t.d_tel - 0.3).abs() < 1e-12);
        assert_eq!(t.max_subgroup, usize::MAX);
    }

    #[test]
    fn admits_feasible_configuration_checks_item_supply() {
        let inst = example::running_example(); // n = 4, m = 5, k = 3
        assert!(StParams::new(0.5, 1).admits_feasible_configuration(&inst));
        assert!(StParams::new(0.5, 4).admits_feasible_configuration(&inst));
    }

    #[test]
    #[should_panic(expected = "d_tel")]
    fn invalid_dtel_panics() {
        let _ = StParams::new(1.5, 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_panics() {
        let _ = StParams::new(0.5, 0);
    }
}
