//! Integer-program and LP-relaxation builders (§3.3 and §4.4 of the paper).
//!
//! Three model forms are produced from an [`SvgicInstance`]:
//!
//! * **full per-slot model** — binary `x_{u,s}^c` ("user `u` sees item `c` at
//!   slot `s`") and `y_{p,s}^c` ("friend pair `p` is co-displayed `c` at slot
//!   `s`"), with constraints (1)–(6) of the paper; this is the exact IP (when
//!   built with binaries) and LP_SVGIC (when relaxed).  The SVGIC-ST variant
//!   adds the pair-level `z_p^c` variables, the teleportation-discounted
//!   objective split of constraints (8)–(9), and the subgroup size cap.
//! * **condensed LP_SIMP** — continuous `x_u^c` / `y_p^c` with
//!   `Σ_c x_u^c = k`; Observation 2 of the paper shows its optimum equals
//!   LP_SVGIC's and that `x*_{u,s}^c = x*_u^c / k` recovers a per-slot optimum.
//! * **min-coupling form** — the same LP_SIMP but with the `y` variables
//!   eliminated (`y* = min(x_u, x_v)`), consumed by the scalable
//!   block-coordinate solver in `svgic-lp`.
//!
//! Objectives are always expressed in the *scaled* form used by the AVG
//! analysis (§4.4): preference coefficients are `p'(u,c) = (1−λ)/λ · p(u,c)`
//! and social coefficients are the raw `τ`, i.e. the model maximises
//! `total SAVG utility / λ`.  Helpers convert back to the true objective.

use crate::config::Configuration;
use crate::instance::SvgicInstance;
use crate::st::StParams;
use crate::{ItemIdx, SlotIdx, UserIdx};
use svgic_lp::{ConstraintSense, LinearProgram, MinCouplingProblem, Solution, VarId};

/// Index bookkeeping for the full per-slot model.
#[derive(Clone, Debug)]
pub struct FullModel {
    /// The underlying (integer or relaxed) program.
    pub lp: LinearProgram,
    n: usize,
    m: usize,
    k: usize,
    /// `x[u][s][c]` flattened as `((u * k) + s) * m + c`.
    x: Vec<VarId>,
    /// `y[p][s][c]` flattened as `((p * k) + s) * m + c`.
    y: Vec<VarId>,
    /// Optional pair-level `z[p][c]` (SVGIC-ST only).
    z: Option<Vec<VarId>>,
    lambda: f64,
}

impl FullModel {
    /// Variable id of `x_{u,s}^c`.
    pub fn x_var(&self, u: UserIdx, s: SlotIdx, c: ItemIdx) -> VarId {
        self.x[(u * self.k + s) * self.m + c]
    }

    /// Variable id of `y_{p,s}^c` for friend-pair index `p`.
    pub fn y_var(&self, p: usize, s: SlotIdx, c: ItemIdx) -> VarId {
        self.y[(p * self.k + s) * self.m + c]
    }

    /// Variable id of `z_p^c` (only present in ST models).
    pub fn z_var(&self, p: usize, c: ItemIdx) -> Option<VarId> {
        self.z.as_ref().map(|z| z[p * self.m + c])
    }

    /// Converts a solver solution into an SAVG k-Configuration by picking, for
    /// every display unit, the item with the largest `x` value (ties toward
    /// smaller item index), repairing any no-duplication conflicts greedily.
    pub fn extract_configuration(&self, sol: &Solution) -> Configuration {
        let mut rows: Vec<Vec<ItemIdx>> = Vec::with_capacity(self.n);
        for u in 0..self.n {
            let mut used = vec![false; self.m];
            let mut row = Vec::with_capacity(self.k);
            for s in 0..self.k {
                let mut best: Option<(f64, ItemIdx)> = None;
                for (c, _) in used.iter().enumerate().filter(|(_, &taken)| !taken) {
                    let v = sol.value(self.x_var(u, s, c));
                    if best.is_none_or(|(bv, _)| v > bv + 1e-12) {
                        best = Some((v, c));
                    }
                }
                let (_, c) = best.expect("at least one unused item per slot (k <= m)");
                used[c] = true;
                row.push(c);
            }
            rows.push(row);
        }
        Configuration::from_rows(&rows)
    }

    /// Converts a scaled model objective into the true SAVG utility
    /// (`× λ`; for `λ = 0` the model is built unscaled so this is the identity).
    pub fn unscale_objective(&self, scaled: f64) -> f64 {
        if self.lambda > 0.0 {
            scaled * self.lambda
        } else {
            scaled
        }
    }
}

fn pref_coefficient(instance: &SvgicInstance, u: UserIdx, c: ItemIdx) -> f64 {
    if instance.lambda() > 0.0 {
        instance.scaled_preference(u, c)
    } else {
        instance.preference(u, c)
    }
}

/// Builds the full per-slot SVGIC model (constraints (1)–(6)).
///
/// With `integer = true` the `x` variables are binary and the model is the
/// exact IP; with `integer = false` it is the LP_SVGIC relaxation.  The `y`
/// variables are always continuous — they are auxiliary and take extreme
/// values automatically once `x` is integral.
pub fn build_full_model(instance: &SvgicInstance, integer: bool) -> FullModel {
    build_full_model_impl(instance, integer, None)
}

/// Builds the full SVGIC-ST model: teleportation-discounted objective with the
/// pair-level `z` variables (constraints (8)–(9)) and the subgroup size cap
/// `Σ_u x_{u,s}^c ≤ M` for every `(c, s)`.
pub fn build_full_model_st(instance: &SvgicInstance, st: &StParams, integer: bool) -> FullModel {
    build_full_model_impl(instance, integer, Some(*st))
}

fn build_full_model_impl(
    instance: &SvgicInstance,
    integer: bool,
    st: Option<StParams>,
) -> FullModel {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let pairs = instance.friend_pairs();
    let lambda = instance.lambda();
    let mut lp = LinearProgram::new();

    // x_{u,s}^c with the preference part of the objective.
    let mut x = Vec::with_capacity(n * k * m);
    for u in 0..n {
        for _s in 0..k {
            for c in 0..m {
                let obj = pref_coefficient(instance, u, c);
                let id = if integer {
                    lp.add_binary_var(obj, None)
                } else {
                    lp.add_unit_var(obj, None)
                };
                x.push(id);
            }
        }
    }
    let x_at = |u: usize, s: usize, c: usize| x[(u * k + s) * m + c];

    // y_{p,s}^c with the (direct) social part of the objective.
    let direct_weight = |p: usize, c: usize| -> f64 {
        let w = instance.pair_weight(p, c);
        match st {
            Some(st) if lambda > 0.0 => (1.0 - st.d_tel) * w,
            Some(_) => 0.0,
            None => w,
        }
    };
    let mut y = Vec::with_capacity(pairs.len() * k * m);
    for p in 0..pairs.len() {
        for _s in 0..k {
            for c in 0..m {
                let obj = if lambda > 0.0 {
                    direct_weight(p, c)
                } else {
                    0.0
                };
                y.push(lp.add_unit_var(obj, None));
            }
        }
    }
    let y_at = |p: usize, s: usize, c: usize| y[(p * k + s) * m + c];

    // z_p^c for SVGIC-ST (direct or indirect co-display).
    let z = st.map(|st| {
        let mut z = Vec::with_capacity(pairs.len() * m);
        for p in 0..pairs.len() {
            for c in 0..m {
                let obj = if lambda > 0.0 {
                    st.d_tel * instance.pair_weight(p, c)
                } else {
                    0.0
                };
                z.push(lp.add_unit_var(obj, None));
            }
        }
        z
    });

    // (1) no-duplication: Σ_s x_{u,s}^c ≤ 1.
    for u in 0..n {
        for c in 0..m {
            let terms = (0..k).map(|s| (x_at(u, s, c), 1.0)).collect();
            lp.add_constraint(terms, ConstraintSense::LessEq, 1.0, None);
        }
    }
    // (2) exactly one item per display unit: Σ_c x_{u,s}^c = 1.
    for u in 0..n {
        for s in 0..k {
            let terms = (0..m).map(|c| (x_at(u, s, c), 1.0)).collect();
            lp.add_constraint(terms, ConstraintSense::Equal, 1.0, None);
        }
    }
    // (5)/(6) co-display linking: y_{p,s}^c ≤ x_{u,s}^c and ≤ x_{v,s}^c.
    for (p, pair) in pairs.iter().enumerate() {
        for s in 0..k {
            for c in 0..m {
                lp.add_constraint(
                    vec![(y_at(p, s, c), 1.0), (x_at(pair.u, s, c), -1.0)],
                    ConstraintSense::LessEq,
                    0.0,
                    None,
                );
                lp.add_constraint(
                    vec![(y_at(p, s, c), 1.0), (x_at(pair.v, s, c), -1.0)],
                    ConstraintSense::LessEq,
                    0.0,
                    None,
                );
            }
        }
    }
    // (8)/(9) indirect co-display linking and the subgroup size cap (ST only).
    if let (Some(z_vars), Some(st)) = (&z, st) {
        for (p, pair) in pairs.iter().enumerate() {
            for c in 0..m {
                let zv = z_vars[p * m + c];
                // z ≤ Σ_s x_{u,s}^c  and  z ≤ Σ_s x_{v,s}^c.
                let mut terms_u: Vec<(VarId, f64)> = vec![(zv, 1.0)];
                let mut terms_v: Vec<(VarId, f64)> = vec![(zv, 1.0)];
                for s in 0..k {
                    terms_u.push((x_at(pair.u, s, c), -1.0));
                    terms_v.push((x_at(pair.v, s, c), -1.0));
                }
                lp.add_constraint(terms_u, ConstraintSense::LessEq, 0.0, None);
                lp.add_constraint(terms_v, ConstraintSense::LessEq, 0.0, None);
            }
        }
        if st.max_subgroup < n {
            for s in 0..k {
                for c in 0..m {
                    let terms = (0..n).map(|u| (x_at(u, s, c), 1.0)).collect();
                    lp.add_constraint(terms, ConstraintSense::LessEq, st.max_subgroup as f64, None);
                }
            }
        }
    }

    FullModel {
        lp,
        n,
        m,
        k,
        x,
        y,
        z,
        lambda,
    }
}

/// Index bookkeeping for the condensed LP_SIMP model.
#[derive(Clone, Debug)]
pub struct SimpModel {
    /// The relaxed linear program.
    pub lp: LinearProgram,
    n: usize,
    m: usize,
    /// `x[u][c]` flattened.
    x: Vec<VarId>,
    lambda: f64,
    k: usize,
}

impl SimpModel {
    /// Variable id of `x_u^c`.
    pub fn x_var(&self, u: UserIdx, c: ItemIdx) -> VarId {
        self.x[u * self.m + c]
    }

    /// Extracts the dense `n × m` aggregate utility-factor matrix `x*_u^c`.
    pub fn extract_factors(&self, sol: &Solution) -> Vec<f64> {
        let mut out = vec![0.0; self.n * self.m];
        for u in 0..self.n {
            for c in 0..self.m {
                out[u * self.m + c] = sol.value(self.x_var(u, c)).clamp(0.0, 1.0);
            }
        }
        out
    }

    /// Converts a scaled model objective into the true SAVG utility.
    pub fn unscale_objective(&self, scaled: f64) -> f64 {
        if self.lambda > 0.0 {
            scaled * self.lambda
        } else {
            scaled
        }
    }

    /// Number of slots of the originating instance (Observation 2 divides the
    /// aggregate factors by this to obtain per-slot factors).
    pub fn num_slots(&self) -> usize {
        self.k
    }
}

/// Builds the condensed LP_SIMP relaxation of §4.4 (continuous `x_u^c`,
/// `y_p^c`, per-user budget `Σ_c x_u^c = k`).
pub fn build_lp_simp(instance: &SvgicInstance) -> SimpModel {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots();
    let pairs = instance.friend_pairs();
    let lambda = instance.lambda();
    let mut lp = LinearProgram::new();

    let mut x = Vec::with_capacity(n * m);
    for u in 0..n {
        for c in 0..m {
            x.push(lp.add_unit_var(pref_coefficient(instance, u, c), None));
        }
    }
    let x_at = |u: usize, c: usize| x[u * m + c];
    for u in 0..n {
        let terms = (0..m).map(|c| (x_at(u, c), 1.0)).collect();
        lp.add_constraint(terms, ConstraintSense::Equal, k as f64, None);
    }
    for (p, pair) in pairs.iter().enumerate() {
        for c in 0..m {
            let w = if lambda > 0.0 {
                instance.pair_weight(p, c)
            } else {
                0.0
            };
            if w <= 0.0 {
                continue;
            }
            let y = lp.add_unit_var(w, None);
            lp.add_constraint(
                vec![(y, 1.0), (x_at(pair.u, c), -1.0)],
                ConstraintSense::LessEq,
                0.0,
                None,
            );
            lp.add_constraint(
                vec![(y, 1.0), (x_at(pair.v, c), -1.0)],
                ConstraintSense::LessEq,
                0.0,
                None,
            );
        }
    }

    SimpModel {
        lp,
        n,
        m,
        x,
        lambda,
        k,
    }
}

/// Builds the min-coupling form of LP_SIMP for the scalable block-coordinate
/// solver: variable `u·m + c` lives in group `u` with budget `k`, linear
/// coefficient `p'(u,c)`, and every friend pair contributes the coupling
/// `w_e^c · min(x_u^c, x_v^c)`.
pub fn build_min_coupling(instance: &SvgicInstance) -> MinCouplingProblem {
    let n = instance.num_users();
    let m = instance.num_items();
    let k = instance.num_slots() as f64;
    let lambda = instance.lambda();
    let mut problem = MinCouplingProblem::new(vec![k; n]);
    for u in 0..n {
        for c in 0..m {
            problem.add_variable(u, pref_coefficient(instance, u, c));
        }
    }
    if lambda > 0.0 {
        for (p, pair) in instance.friend_pairs().iter().enumerate() {
            for c in 0..m {
                let w = instance.pair_weight(p, c);
                if w > 0.0 {
                    problem.add_coupling(pair.u * m + c, pair.v * m + c, w);
                }
            }
        }
    }
    problem
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{paper_configurations, running_example};
    use crate::utility::{total_utility, unweighted_total_utility};
    use svgic_lp::{solve_lp, BranchBoundConfig, SimplexOptions};

    #[test]
    fn lp_simp_matches_lp_svgic_optimum() {
        // Observation 2: OPT_SIMP = OPT_SVGIC on the relaxations.
        let inst = running_example()
            .restrict_items(&[0, 1, 4])
            .with_slots(2)
            .unwrap();
        let full = build_full_model(&inst, false);
        let simp = build_lp_simp(&inst);
        let opts = SimplexOptions::default();
        let full_obj = solve_lp(&full.lp, &opts).unwrap().objective;
        let simp_obj = solve_lp(&simp.lp, &opts).unwrap().objective;
        assert!(
            (full_obj - simp_obj).abs() < 1e-5,
            "LP_SVGIC {full_obj} vs LP_SIMP {simp_obj}"
        );
    }

    #[test]
    fn lp_relaxation_upper_bounds_every_feasible_configuration() {
        let inst = running_example();
        let simp = build_lp_simp(&inst);
        let lp_obj = simp.unscale_objective(
            solve_lp(&simp.lp, &SimplexOptions::default())
                .unwrap()
                .objective,
        );
        let cfgs = paper_configurations();
        for cfg in [&cfgs.optimal, &cfgs.avg, &cfgs.avg_d, &cfgs.group] {
            assert!(lp_obj + 1e-6 >= total_utility(&inst, cfg));
        }
    }

    #[test]
    fn exact_ip_recovers_the_paper_optimum() {
        // Full binary model on the running example; the optimum utility is
        // 10.35 in the unweighted convention (5.175 weighted at λ = ½).
        let inst = running_example();
        let model = build_full_model(&inst, true);
        let res = svgic_lp::branch_bound::solve_milp(
            &model.lp,
            &BranchBoundConfig {
                max_nodes: 20_000,
                ..Default::default()
            },
        );
        let sol = res.solution.expect("feasible IP");
        let cfg = model.extract_configuration(&sol);
        assert!(cfg.is_valid(inst.num_items()));
        let utility = unweighted_total_utility(&inst, &cfg);
        assert!(
            (utility - 10.35).abs() < 1e-6,
            "IP utility {utility} differs from the paper optimum 10.35"
        );
    }

    #[test]
    fn extract_configuration_respects_no_duplication() {
        let inst = running_example();
        let simp_factors_model = build_full_model(&inst, false);
        let sol = solve_lp(&simp_factors_model.lp, &SimplexOptions::default()).unwrap();
        let cfg = simp_factors_model.extract_configuration(&sol);
        assert!(cfg.is_valid(inst.num_items()));
    }

    #[test]
    fn min_coupling_objective_matches_lp_simp() {
        let inst = running_example();
        let simp = build_lp_simp(&inst);
        let coupling = build_min_coupling(&inst);
        let exact = solve_lp(&simp.lp, &SimplexOptions::default()).unwrap();
        // Evaluate the exact LP's x in the min-coupling objective: identical by
        // construction (y* = min).
        let factors = simp.extract_factors(&exact);
        let coupling_obj = coupling.objective(&factors);
        assert!((coupling_obj - exact.objective).abs() < 1e-6);
    }

    #[test]
    fn st_model_adds_size_cap() {
        let inst = running_example();
        let st = StParams::new(0.5, 2);
        let model = build_full_model_st(&inst, &st, true);
        let res = svgic_lp::branch_bound::solve_milp(
            &model.lp,
            &BranchBoundConfig {
                max_nodes: 40_000,
                ..Default::default()
            },
        );
        let sol = res.solution.expect("feasible ST IP");
        let cfg = model.extract_configuration(&sol);
        assert!(cfg.is_valid(inst.num_items()));
        assert!(st.is_feasible(&cfg), "size cap violated: {:?}", cfg);
        // Capping subgroups at 2 cannot beat the unconstrained optimum.
        assert!(unweighted_total_utility(&inst, &cfg) <= 10.35 + 1e-6);
    }

    #[test]
    fn zero_lambda_model_maximises_pure_preference() {
        let inst = running_example().with_lambda(0.0).unwrap();
        let model = build_full_model(&inst, true);
        let res = svgic_lp::branch_bound::solve_milp(&model.lp, &BranchBoundConfig::default());
        let cfg = model.extract_configuration(&res.solution.expect("feasible"));
        // With λ = 0 the optimum is each user's top-3 items: total preference
        // = 2.65 + 1.9 + 1.45 + 2.25 = 8.25 (Table 9's personalized value).
        let pref = crate::utility::raw_preference_sum(&inst, &cfg);
        assert!((pref - 8.25).abs() < 1e-6, "pure-preference optimum {pref}");
    }
}
