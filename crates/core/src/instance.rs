//! The SVGIC problem instance (§3.1 of the paper).
//!
//! An instance bundles the directed social network `G = (V, E)`, the universal
//! item set `C` (represented by indices `0..m`), the preference utilities
//! `p(u, c) ≥ 0`, the social utilities `τ(u, v, c) ≥ 0` keyed by directed
//! edge, the trade-off weight `λ ∈ [0, 1]`, and the number of display slots
//! `k`.  Preferences are stored densely (`n × m`), social utilities densely
//! per directed edge (`|E| × m`); the dataset layer prunes the item universe
//! to a candidate set before building an instance when `m` is large.

use crate::{ItemIdx, UserIdx};
use svgic_graph::{EdgeIdx, SocialGraph};

/// An undirected friend pair together with the directed edges realising it.
///
/// The co-display analysis of the paper iterates over friend *pairs*: when `u`
/// and `v` are co-displayed item `c`, the pair contributes
/// `τ(u, v, c) + τ(v, u, c)` to the (unweighted) social utility, where a
/// missing direction contributes zero.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FriendPair {
    /// Smaller endpoint.
    pub u: UserIdx,
    /// Larger endpoint.
    pub v: UserIdx,
    /// Directed edge indices `(u → v)` and/or `(v → u)` present in the graph.
    pub edges: Vec<EdgeIdx>,
}

/// Errors produced while building or validating an instance.
#[derive(Clone, Debug, PartialEq)]
pub enum InstanceError {
    /// `λ` must lie in `[0, 1]`.
    InvalidLambda(f64),
    /// `k` must satisfy `1 ≤ k ≤ m` (each user sees `k` distinct items).
    InvalidSlotCount {
        /// Requested number of slots.
        k: usize,
        /// Number of items available.
        m: usize,
    },
    /// A preference or social utility was negative or not finite.
    InvalidUtility {
        /// Description of the offending entry.
        what: String,
    },
    /// The preference matrix has the wrong number of entries.
    DimensionMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::InvalidLambda(l) => write!(f, "lambda {l} outside [0, 1]"),
            InstanceError::InvalidSlotCount { k, m } => {
                write!(f, "k = {k} must satisfy 1 <= k <= m = {m}")
            }
            InstanceError::InvalidUtility { what } => write!(f, "invalid utility value: {what}"),
            InstanceError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} entries, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// A complete SVGIC problem instance.
#[derive(Clone, Debug)]
pub struct SvgicInstance {
    graph: SocialGraph,
    n_items: usize,
    k: usize,
    lambda: f64,
    /// Dense `n × m` preference utilities, row-major by user.
    pref: Vec<f64>,
    /// Dense `|E| × m` social utilities, row-major by directed edge index.
    tau: Vec<f64>,
    /// Cached undirected friend pairs.
    pairs: Vec<FriendPair>,
    /// Optional human-readable item labels (used by examples / case studies).
    item_labels: Option<Vec<String>>,
}

impl SvgicInstance {
    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of items `m` in the universal item set.
    pub fn num_items(&self) -> usize {
        self.n_items
    }

    /// Number of display slots `k`.
    pub fn num_slots(&self) -> usize {
        self.k
    }

    /// The preference/social trade-off weight `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The social network.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Cached undirected friend pairs.
    pub fn friend_pairs(&self) -> &[FriendPair] {
        &self.pairs
    }

    /// Preference utility `p(u, c)`.
    #[inline]
    pub fn preference(&self, u: UserIdx, c: ItemIdx) -> f64 {
        self.pref[u * self.n_items + c]
    }

    /// Scaled preference `p'(u, c) = (1 - λ)/λ · p(u, c)` used by the AVG
    /// reduction to the `λ = 1/2` case (§4.4).  Requires `λ > 0`.
    #[inline]
    pub fn scaled_preference(&self, u: UserIdx, c: ItemIdx) -> f64 {
        debug_assert!(
            self.lambda > 0.0,
            "scaled preference undefined for lambda = 0"
        );
        (1.0 - self.lambda) / self.lambda * self.preference(u, c)
    }

    /// Social utility `τ(u, v, c)` of the *directed* edge `(u, v)`; zero when
    /// the edge is absent.
    #[inline]
    pub fn social(&self, u: UserIdx, v: UserIdx, c: ItemIdx) -> f64 {
        match self.graph.edge_index(u, v) {
            Some(e) => self.social_by_edge(e, c),
            None => 0.0,
        }
    }

    /// Social utility of directed edge `e` on item `c`.
    #[inline]
    pub fn social_by_edge(&self, e: EdgeIdx, c: ItemIdx) -> f64 {
        self.tau[e * self.n_items + c]
    }

    /// Pairwise co-display weight `w_e^c = τ(u, v, c) + τ(v, u, c)` of friend
    /// pair index `p` on item `c` (notation of §4 of the paper).
    #[inline]
    pub fn pair_weight(&self, pair: usize, c: ItemIdx) -> f64 {
        self.pairs[pair]
            .edges
            .iter()
            .map(|&e| self.social_by_edge(e, c))
            .sum()
    }

    /// Sum of social utilities `Σ_{v : (u,v) ∈ E} τ(u, v, c)` user `u` would
    /// collect on item `c` if *every* friend were co-displayed `c` — the upper
    /// bound `w̄` used in the regret-ratio metric (§6.5).
    pub fn max_social(&self, u: UserIdx, c: ItemIdx) -> f64 {
        self.graph
            .out_neighbors(u)
            .iter()
            .map(|&(_, e)| self.social_by_edge(e, c))
            .sum()
    }

    /// Row of preference utilities of user `u` (length `m`).
    pub fn preference_row(&self, u: UserIdx) -> &[f64] {
        &self.pref[u * self.n_items..(u + 1) * self.n_items]
    }

    /// Optional item labels.
    pub fn item_labels(&self) -> Option<&[String]> {
        self.item_labels.as_deref()
    }

    /// Label of item `c`, falling back to `item-{c}`.
    pub fn item_label(&self, c: ItemIdx) -> String {
        self.item_labels
            .as_ref()
            .and_then(|l| l.get(c).cloned())
            .unwrap_or_else(|| format!("item-{c}"))
    }

    /// Returns a copy of this instance with a different `λ` (utilities reused).
    pub fn with_lambda(&self, lambda: f64) -> Result<Self, InstanceError> {
        if !(0.0..=1.0).contains(&lambda) || !lambda.is_finite() {
            return Err(InstanceError::InvalidLambda(lambda));
        }
        let mut copy = self.clone();
        copy.lambda = lambda;
        Ok(copy)
    }

    /// Returns a copy of this instance with a different number of slots.
    pub fn with_slots(&self, k: usize) -> Result<Self, InstanceError> {
        if k == 0 || k > self.n_items {
            return Err(InstanceError::InvalidSlotCount { k, m: self.n_items });
        }
        let mut copy = self.clone();
        copy.k = k;
        Ok(copy)
    }

    /// Restricts the instance to the sub-population `users` (in ascending
    /// original index order), keeping all items.  Used when sweeping the size
    /// of the shopping group (Figs. 3(a), 5, 8(a)).
    pub fn restrict_users(&self, users: &[UserIdx]) -> Self {
        let (sub, mapping) = self.graph.induced_subgraph(users);
        let n_items = self.n_items;
        let mut pref = Vec::with_capacity(mapping.len() * n_items);
        for &old in &mapping {
            pref.extend_from_slice(self.preference_row(old));
        }
        let mut tau = vec![0.0; sub.num_edges() * n_items];
        for (new_e, &(nu, nv)) in sub.edges().iter().enumerate() {
            let (ou, ov) = (mapping[nu], mapping[nv]);
            if let Some(old_e) = self.graph.edge_index(ou, ov) {
                for c in 0..n_items {
                    tau[new_e * n_items + c] = self.social_by_edge(old_e, c);
                }
            }
        }
        let pairs = build_pairs(&sub);
        Self {
            graph: sub,
            n_items,
            k: self.k,
            lambda: self.lambda,
            pref,
            tau,
            pairs,
            item_labels: self.item_labels.clone(),
        }
    }

    /// Restricts the instance to the item subset `items` (keeping their order
    /// as the new item indices).  Used when sweeping `m` (Figs. 3(c), 8(b)).
    pub fn restrict_items(&self, items: &[ItemIdx]) -> Self {
        let n = self.num_users();
        let m_new = items.len();
        assert!(m_new >= self.k, "cannot keep fewer items than slots");
        let mut pref = Vec::with_capacity(n * m_new);
        for u in 0..n {
            for &c in items {
                pref.push(self.preference(u, c));
            }
        }
        let mut tau = Vec::with_capacity(self.graph.num_edges() * m_new);
        for e in 0..self.graph.num_edges() {
            for &c in items {
                tau.push(self.social_by_edge(e, c));
            }
        }
        let labels = self
            .item_labels
            .as_ref()
            .map(|l| items.iter().map(|&c| l[c].clone()).collect());
        Self {
            graph: self.graph.clone(),
            n_items: m_new,
            k: self.k,
            lambda: self.lambda,
            pref,
            tau,
            pairs: self.pairs.clone(),
            item_labels: labels,
        }
    }

    /// Candidate-item pruning: keeps the union of every user's `per_user_top`
    /// highest-preference items and the `global_top` items with the highest
    /// aggregate score `Σ_u p(u, c) + Σ_e τ_e(c)`, returning the pruned
    /// instance and the kept original item indices.
    ///
    /// The paper observes (Fig. 3(c)) that the objective barely changes once
    /// the top-100 items are included; this is the mechanism that keeps the
    /// LP tractable at `m = 10000`.
    pub fn prune_items(&self, per_user_top: usize, global_top: usize) -> (Self, Vec<ItemIdx>) {
        let m = self.n_items;
        let n = self.num_users();
        let mut keep = vec![false; m];
        for u in 0..n {
            let mut idx: Vec<ItemIdx> = (0..m).collect();
            idx.sort_by(|&a, &b| {
                self.preference(u, b)
                    .partial_cmp(&self.preference(u, a))
                    .unwrap()
                    .then(a.cmp(&b))
            });
            for &c in idx.iter().take(per_user_top) {
                keep[c] = true;
            }
        }
        let mut aggregate: Vec<(f64, ItemIdx)> = (0..m)
            .map(|c| {
                let pref_sum: f64 = (0..n).map(|u| self.preference(u, c)).sum();
                let tau_sum: f64 = (0..self.graph.num_edges())
                    .map(|e| self.social_by_edge(e, c))
                    .sum();
                (pref_sum + tau_sum, c)
            })
            .collect();
        aggregate.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for &(_, c) in aggregate.iter().take(global_top) {
            keep[c] = true;
        }
        let mut kept: Vec<ItemIdx> = (0..m).filter(|&c| keep[c]).collect();
        // Never prune below k items.
        if kept.len() < self.k {
            for (c, _) in keep.iter().enumerate().filter(|(_, &kept_c)| !kept_c) {
                kept.push(c);
                if kept.len() >= self.k {
                    break;
                }
            }
            kept.sort_unstable();
        }
        (self.restrict_items(&kept), kept)
    }
}

fn build_pairs(graph: &SocialGraph) -> Vec<FriendPair> {
    graph
        .friend_pairs()
        .into_iter()
        .map(|(u, v, edges)| FriendPair { u, v, edges })
        .collect()
}

/// Builder for [`SvgicInstance`].
#[derive(Clone, Debug)]
pub struct SvgicInstanceBuilder {
    graph: SocialGraph,
    n_items: usize,
    k: usize,
    lambda: f64,
    pref: Vec<f64>,
    tau: Vec<f64>,
    item_labels: Option<Vec<String>>,
}

impl SvgicInstanceBuilder {
    /// Starts building an instance over `graph` with `n_items` items, `k`
    /// slots and weight `lambda`; all utilities default to zero.
    pub fn new(graph: SocialGraph, n_items: usize, k: usize, lambda: f64) -> Self {
        let n = graph.num_nodes();
        let e = graph.num_edges();
        Self {
            graph,
            n_items,
            k,
            lambda,
            pref: vec![0.0; n * n_items],
            tau: vec![0.0; e * n_items],
            item_labels: None,
        }
    }

    /// Sets the preference utility `p(u, c)`.
    pub fn set_preference(&mut self, u: UserIdx, c: ItemIdx, value: f64) -> &mut Self {
        self.pref[u * self.n_items + c] = value;
        self
    }

    /// Sets the whole preference matrix (row-major `n × m`).
    pub fn with_preference_matrix(mut self, pref: Vec<f64>) -> Result<Self, InstanceError> {
        let expected = self.graph.num_nodes() * self.n_items;
        if pref.len() != expected {
            return Err(InstanceError::DimensionMismatch {
                expected,
                got: pref.len(),
            });
        }
        self.pref = pref;
        Ok(self)
    }

    /// Sets the social utility `τ(u, v, c)`; ignored (returns `false`) when the
    /// directed edge `(u, v)` does not exist.
    pub fn set_social(&mut self, u: UserIdx, v: UserIdx, c: ItemIdx, value: f64) -> bool {
        match self.graph.edge_index(u, v) {
            Some(e) => {
                self.tau[e * self.n_items + c] = value;
                true
            }
            None => false,
        }
    }

    /// Fills preferences from a closure `p(u, c)`.
    pub fn fill_preferences(&mut self, f: impl Fn(UserIdx, ItemIdx) -> f64) -> &mut Self {
        for u in 0..self.graph.num_nodes() {
            for c in 0..self.n_items {
                self.pref[u * self.n_items + c] = f(u, c);
            }
        }
        self
    }

    /// Fills social utilities from a closure `τ(u, v, c)` over existing edges.
    pub fn fill_social(&mut self, f: impl Fn(UserIdx, UserIdx, ItemIdx) -> f64) -> &mut Self {
        for (e, &(u, v)) in self.graph.edges().to_vec().iter().enumerate() {
            for c in 0..self.n_items {
                self.tau[e * self.n_items + c] = f(u, v, c);
            }
        }
        self
    }

    /// Attaches human-readable item labels.
    pub fn with_item_labels(mut self, labels: Vec<String>) -> Self {
        self.item_labels = Some(labels);
        self
    }

    /// Validates and builds the instance.
    pub fn build(self) -> Result<SvgicInstance, InstanceError> {
        if !(0.0..=1.0).contains(&self.lambda) || !self.lambda.is_finite() {
            return Err(InstanceError::InvalidLambda(self.lambda));
        }
        if self.k == 0 || self.k > self.n_items {
            return Err(InstanceError::InvalidSlotCount {
                k: self.k,
                m: self.n_items,
            });
        }
        for (i, &p) in self.pref.iter().enumerate() {
            if !p.is_finite() || p < 0.0 {
                return Err(InstanceError::InvalidUtility {
                    what: format!("preference entry {i} = {p}"),
                });
            }
        }
        for (i, &t) in self.tau.iter().enumerate() {
            if !t.is_finite() || t < 0.0 {
                return Err(InstanceError::InvalidUtility {
                    what: format!("social entry {i} = {t}"),
                });
            }
        }
        let pairs = build_pairs(&self.graph);
        Ok(SvgicInstance {
            graph: self.graph,
            n_items: self.n_items,
            k: self.k,
            lambda: self.lambda,
            pref: self.pref,
            tau: self.tau,
            pairs,
            item_labels: self.item_labels,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_instance() -> SvgicInstance {
        // 3 users in a path 0 - 1 - 2, 4 items, k = 2.
        let graph = SocialGraph::from_undirected_edges(3, [(0, 1), (1, 2)]);
        let mut b = SvgicInstanceBuilder::new(graph, 4, 2, 0.5);
        b.fill_preferences(|u, c| (u + 1) as f64 * 0.1 + c as f64 * 0.01);
        b.fill_social(|u, v, c| 0.01 * (u + v + c) as f64);
        b.build().unwrap()
    }

    #[test]
    fn builder_and_accessors() {
        let inst = tiny_instance();
        assert_eq!(inst.num_users(), 3);
        assert_eq!(inst.num_items(), 4);
        assert_eq!(inst.num_slots(), 2);
        assert_eq!(inst.lambda(), 0.5);
        assert!((inst.preference(1, 2) - (0.2 + 0.02)).abs() < 1e-12);
        assert!((inst.social(0, 1, 3) - 0.04).abs() < 1e-12);
        assert_eq!(inst.social(0, 2, 0), 0.0); // not friends
        assert_eq!(inst.friend_pairs().len(), 2);
    }

    #[test]
    fn pair_weight_sums_both_directions() {
        let inst = tiny_instance();
        let pair01 = inst
            .friend_pairs()
            .iter()
            .position(|p| p.u == 0 && p.v == 1)
            .unwrap();
        let expected = inst.social(0, 1, 2) + inst.social(1, 0, 2);
        assert!((inst.pair_weight(pair01, 2) - expected).abs() < 1e-12);
    }

    #[test]
    fn max_social_sums_all_out_neighbors() {
        let inst = tiny_instance();
        // User 1 has out-edges to 0 and 2.
        let expected = inst.social(1, 0, 1) + inst.social(1, 2, 1);
        assert!((inst.max_social(1, 1) - expected).abs() < 1e-12);
    }

    #[test]
    fn scaled_preference_matches_formula() {
        let graph = SocialGraph::from_undirected_edges(2, [(0, 1)]);
        let mut b = SvgicInstanceBuilder::new(graph, 2, 1, 0.25);
        b.set_preference(0, 0, 0.8);
        let inst = b.build().unwrap();
        assert!((inst.scaled_preference(0, 0) - 3.0 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn builder_validation_errors() {
        let g = SocialGraph::new(2);
        assert!(matches!(
            SvgicInstanceBuilder::new(g.clone(), 3, 1, 1.5).build(),
            Err(InstanceError::InvalidLambda(_))
        ));
        assert!(matches!(
            SvgicInstanceBuilder::new(g.clone(), 3, 5, 0.5).build(),
            Err(InstanceError::InvalidSlotCount { .. })
        ));
        assert!(matches!(
            SvgicInstanceBuilder::new(g.clone(), 3, 0, 0.5).build(),
            Err(InstanceError::InvalidSlotCount { .. })
        ));
        let mut b = SvgicInstanceBuilder::new(g.clone(), 3, 1, 0.5);
        b.set_preference(0, 0, -1.0);
        assert!(matches!(
            b.build(),
            Err(InstanceError::InvalidUtility { .. })
        ));
        assert!(matches!(
            SvgicInstanceBuilder::new(g, 3, 1, 0.5).with_preference_matrix(vec![0.0; 5]),
            Err(InstanceError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn with_lambda_and_slots() {
        let inst = tiny_instance();
        let inst2 = inst.with_lambda(0.9).unwrap();
        assert_eq!(inst2.lambda(), 0.9);
        assert!(inst.with_lambda(-0.1).is_err());
        let inst3 = inst.with_slots(4).unwrap();
        assert_eq!(inst3.num_slots(), 4);
        assert!(inst.with_slots(5).is_err());
        assert!(inst.with_slots(0).is_err());
    }

    #[test]
    fn restrict_users_keeps_utilities() {
        let inst = tiny_instance();
        let sub = inst.restrict_users(&[1, 2]);
        assert_eq!(sub.num_users(), 2);
        assert_eq!(sub.num_items(), 4);
        // Old user 1 is new user 0; old user 2 is new user 1.
        assert!((sub.preference(0, 3) - inst.preference(1, 3)).abs() < 1e-12);
        assert!((sub.social(0, 1, 2) - inst.social(1, 2, 2)).abs() < 1e-12);
        assert_eq!(sub.friend_pairs().len(), 1);
    }

    #[test]
    fn restrict_items_remaps_columns() {
        let inst = tiny_instance();
        let sub = inst.restrict_items(&[3, 1]);
        assert_eq!(sub.num_items(), 2);
        assert!((sub.preference(2, 0) - inst.preference(2, 3)).abs() < 1e-12);
        assert!((sub.social(1, 2, 1) - inst.social(1, 2, 1)).abs() < 1e-12);
    }

    #[test]
    fn prune_items_keeps_top_preferences() {
        let graph = SocialGraph::from_undirected_edges(2, [(0, 1)]);
        let mut b = SvgicInstanceBuilder::new(graph, 6, 2, 0.5);
        // User 0 loves items 4 and 5; user 1 loves items 0 and 1.
        b.set_preference(0, 4, 0.9);
        b.set_preference(0, 5, 0.8);
        b.set_preference(1, 0, 0.9);
        b.set_preference(1, 1, 0.8);
        let inst = b.build().unwrap();
        let (pruned, kept) = inst.prune_items(2, 0);
        assert_eq!(kept, vec![0, 1, 4, 5]);
        assert_eq!(pruned.num_items(), 4);
        assert!((pruned.preference(0, 2) - 0.9).abs() < 1e-12); // old item 4
    }

    #[test]
    fn item_labels_roundtrip() {
        let graph = SocialGraph::new(1);
        let inst = SvgicInstanceBuilder::new(graph, 2, 1, 0.5)
            .with_item_labels(vec!["tripod".into(), "camera".into()])
            .build()
            .unwrap();
        assert_eq!(inst.item_label(1), "camera");
        let no_labels = tiny_instance();
        assert_eq!(no_labels.item_label(3), "item-3");
    }
}
