//! Regenerates the example blobs embedded in `docs/FORMATS.md`.
//!
//! ```text
//! cargo run --release --example format_blobs
//! ```
//!
//! Prints nine sections — the `svgic-trace v1` example, a
//! `svgic-loadgen-report/v1` JSON, a `svgic-cluster-report/v1` JSON, the
//! wire-frame hex dump, the `QueryMetrics`, `QueryTelemetry` and
//! `QueryProfile` frame hexes, the Chrome trace-event JSON and its
//! counter-event variant —
//! using the same pinned configuration
//! (`workers: 2, shards: 2`, steady-mall smoke at 2 ticks, seed 3; cluster:
//! 2 nodes with a mid-run rebalance; trace events: a fixed three-span list)
//! that `tests/format_conformance.rs` regenerates and compares against the
//! spec. After changing a format, rerun this and paste the refreshed blobs
//! into the spec; the conformance test fails until spec and emitter agree
//! again.
//!
//! Timing-valued fields (`wall_seconds`, latency quantiles, …) differ run
//! to run; the conformance test compares *key structure*, not values, so a
//! pasted snapshot stays valid.

use svgic::engine::prelude::*;
use svgic::obs::{
    chrome_trace_json, chrome_trace_json_with_counters, Phase, SpanRecord, TelemetrySample,
};
use svgic::workload::prelude::*;
use svgic::workload::DriverConfig;

/// The pinned engine shape: fixed shards so the report's `shard<i>_*`
/// metrics are machine-independent.
fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

/// The pinned trace: steady-mall smoke, 2 ticks, seed 3.
fn example_trace() -> Trace {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 2;
    generate(&scenario, 3)
}

/// The pinned span list for the Chrome trace-event example: hand-fixed
/// timestamps (a real run's vary), but real phases and the real lane
/// mapping — a `Serve` request on the engine lane, the `LpWarm` it
/// triggered on shard 1, and a `WireDecode` on a second node
/// (mirrored in `tests/format_conformance.rs`).
fn pinned_spans() -> Vec<SpanRecord> {
    vec![
        SpanRecord {
            request_id: 1,
            session: 7,
            phase: Phase::Serve,
            shard: SpanRecord::NO_SHARD,
            node: 0,
            start_nanos: 500,
            duration_nanos: 42_000,
        },
        SpanRecord {
            request_id: 0,
            session: 7,
            phase: Phase::LpWarm,
            shard: 1,
            node: 0,
            start_nanos: 1_000,
            duration_nanos: 30_500,
        },
        SpanRecord {
            request_id: 2,
            session: 9,
            phase: Phase::WireDecode,
            shard: SpanRecord::NO_SHARD,
            node: 1,
            start_nanos: 2_250,
            duration_nanos: 1_250,
        },
    ]
}

/// The pinned telemetry samples for the counter-event example: two ticks of
/// a warming engine — hand-fixed integers, but the real field set and the
/// real tick axis (mirrored in `tests/format_conformance.rs`).
fn pinned_samples() -> Vec<TelemetrySample> {
    vec![
        TelemetrySample {
            tick: 0,
            requests: 12,
            solves: 3,
            queue_depth: 4,
            warm_rate_ppm: 0,
            imbalance_ppm: 1_000_000,
            mem_session_bytes: 48_000,
            mem_pending_bytes: 640,
            mem_served_bytes: 1_280,
            mem_cache_bytes: 9_600,
            mem_total_bytes: 59_520,
        },
        TelemetrySample {
            tick: 1,
            requests: 25,
            solves: 7,
            queue_depth: 0,
            warm_rate_ppm: 571_428,
            imbalance_ppm: 1_142_857,
            mem_session_bytes: 48_000,
            mem_pending_bytes: 0,
            mem_served_bytes: 1_280,
            mem_cache_bytes: 12_800,
            mem_total_bytes: 62_080,
        },
    ]
}

/// Renders one frame as the spec's space-joined hex dump.
fn frame_hex(kind: svgic::net::FrameKind, request_id: u64, payload: Vec<u8>) -> String {
    let mut frame_bytes = Vec::new();
    svgic::net::frame::write_frame(
        &mut frame_bytes,
        &svgic::net::Frame {
            kind,
            request_id,
            payload,
        },
    )
    .expect("in-memory write");
    let hex: Vec<String> = frame_bytes.iter().map(|b| format!("{b:02x}")).collect();
    hex.join(" ")
}

fn main() {
    let trace = example_trace();

    println!("=== svgic-trace v1 (first 12 lines + trailer) ===");
    // The full smoke trace is long; the spec embeds a hand-sized excerpt
    // that still exercises every line type, so print a *complete* tiny
    // trace instead: the same header plus a canonical body.
    let tiny = Trace {
        scenario: "steady-mall".into(),
        seed: 3,
        ticks: 2,
        templates: trace.templates.clone(),
        events: vec![
            TraceEvent::Tick(0),
            TraceEvent::Open {
                key: 0,
                template: 0,
                seed: 11_646_911_677_952_911_153,
                present: vec![0, 2, 3],
            },
            TraceEvent::Join { key: 0, user: 1 },
            TraceEvent::Leave { key: 0, user: 2 },
            TraceEvent::Catalog {
                key: 0,
                items: vec![0, 1, 2, 5, 6, 7],
            },
            TraceEvent::Lambda { key: 0, value: 0.8 },
            TraceEvent::Query { key: 0 },
            TraceEvent::Tick(1),
            TraceEvent::Close { key: 0 },
        ],
    };
    print!("{}", tiny.render());

    println!("\n=== svgic-loadgen-report/v1 ===");
    let outcome = LoadDriver::new(DriverConfig {
        engine: engine_config(),
        ..DriverConfig::default()
    })
    .run(&trace);
    let report = LoadReport::new(&trace, outcome);
    print!("{}", report.to_json());

    println!("\n=== svgic-cluster-report/v1 ===");
    let outcome = ClusterDriver::new(ClusterDriverConfig {
        nodes: 2,
        engine: engine_config(),
        plan: NodePlan::mid_run_rebalance(2),
        ..ClusterDriverConfig::default()
    })
    .run(&trace);
    let report = ClusterReport::new(&trace, outcome);
    print!("{}", report.to_json());

    println!("\n=== wire frame (QueryConfiguration(session 7), request id 1) ===");
    let payload =
        svgic::engine::codec::encode_request(&EngineRequest::QueryConfiguration(SessionId(7)));
    println!("{}", frame_hex(svgic::net::FrameKind::Request, 1, payload));

    println!("\n=== wire frame (QueryMetrics, request id 2) ===");
    let payload = svgic::engine::codec::encode_request(&EngineRequest::QueryMetrics);
    println!("{}", frame_hex(svgic::net::FrameKind::Request, 2, payload));

    println!("\n=== wire frame (QueryTelemetry, request id 3) ===");
    let payload = svgic::engine::codec::encode_request(&EngineRequest::QueryTelemetry);
    println!("{}", frame_hex(svgic::net::FrameKind::Request, 3, payload));

    println!("\n=== wire frame (QueryProfile, request id 4) ===");
    let payload = svgic::engine::codec::encode_request(&EngineRequest::QueryProfile);
    println!("{}", frame_hex(svgic::net::FrameKind::Request, 4, payload));

    println!("\n=== chrome trace events (pinned three-span example) ===");
    println!("{}", chrome_trace_json(&pinned_spans()));

    println!("\n=== chrome counter events (pinned spans + two-sample ring) ===");
    println!(
        "{}",
        chrome_trace_json_with_counters(&pinned_spans(), &pinned_samples(), 0)
    );
}
