//! Social Event Organization (SEO) via the SVGIC-ST mapping (§4.4).
//!
//! Events are items, every attendee is assigned exactly one event (`k = 1`),
//! event capacities become the subgroup-size cap, and the welfare combines
//! personal affinity for the event with the social benefit of attending with
//! friends.  The example organises a weekend programme for a meetup community
//! and compares the SVGIC-ST-based assignment against a purely
//! affinity-greedy one.
//!
//! Run with:
//! ```text
//! cargo run --release --example social_event_organization
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic::algorithms::avg::AvgConfig;
use svgic::algorithms::extensions::{solve_seo, SeoProblem};
use svgic::graph::generate::planted_partition;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A meetup community of 40 people organised in 4 natural friend circles.
    let (graph, circles) = planted_partition(40, 4, 0.45, 0.03, &mut rng);
    let num_events = 6;
    let capacity = 12;
    let event_names = [
        "board-game night",
        "hiking trip",
        "cooking class",
        "escape room",
        "karaoke",
        "museum tour",
    ];

    // Affinity: each friend circle leans towards one or two event types.
    let mut affinity = vec![0.0; 40 * num_events];
    for u in 0..40 {
        for e in 0..num_events {
            let circle_bias = if e % 4 == circles[u] { 0.55 } else { 0.15 };
            affinity[u * num_events + e] = (circle_bias + 0.3 * rng.gen::<f64>()).min(1.0);
        }
    }
    // Togetherness: attending with a friend is valuable.
    let togetherness: Vec<f64> = (0..graph.num_edges())
        .map(|_| 0.25 + 0.5 * rng.gen::<f64>())
        .collect();

    let problem = SeoProblem {
        graph: graph.clone(),
        num_events,
        affinity: affinity.clone(),
        togetherness,
        capacity,
        lambda: 0.5,
    };

    let solution = solve_seo(&problem, &AvgConfig::default());

    // Report the programme.
    println!("SEO assignment via SVGIC-ST (capacity {capacity} per event):\n");
    for (e, name) in event_names.iter().enumerate().take(num_events) {
        let attendees: Vec<usize> = (0..40).filter(|&u| solution.assignment[u] == e).collect();
        if attendees.is_empty() {
            continue;
        }
        println!(
            "  {:<18} {:>2} attendees  (circles: {:?})",
            name,
            attendees.len(),
            summarize_circles(&attendees, &circles)
        );
        assert!(attendees.len() <= capacity, "capacity violated");
    }
    println!(
        "\ntotal welfare (SVGIC-ST objective): {:.3}",
        solution.welfare
    );

    // Baseline: everyone picks her own favourite event, ignoring both friends
    // and capacities (then overflow spills to the next favourite).
    let mut greedy = vec![0usize; 40];
    let mut counts = vec![0usize; num_events];
    for u in 0..40 {
        let mut order: Vec<usize> = (0..num_events).collect();
        order.sort_by(|&a, &b| {
            affinity[u * num_events + b]
                .partial_cmp(&affinity[u * num_events + a])
                .unwrap()
        });
        let e = order
            .into_iter()
            .find(|&e| counts[e] < capacity)
            .expect("capacity suffices");
        greedy[u] = e;
        counts[e] += 1;
    }
    let greedy_welfare = seo_welfare(&problem, &greedy);
    println!("affinity-greedy baseline welfare:  {greedy_welfare:.3}");
    println!(
        "social-aware organisation improves welfare by {:.1}%",
        100.0 * (solution.welfare - greedy_welfare) / greedy_welfare.max(1e-9)
    );
}

fn summarize_circles(attendees: &[usize], circles: &[usize]) -> Vec<usize> {
    let mut counts = vec![0usize; 4];
    for &u in attendees {
        counts[circles[u]] += 1;
    }
    counts
}

fn seo_welfare(problem: &SeoProblem, assignment: &[usize]) -> f64 {
    let lambda = problem.lambda;
    let mut welfare = 0.0;
    for (u, &e) in assignment.iter().enumerate() {
        welfare += (1.0 - lambda) * problem.affinity[u * problem.num_events + e];
    }
    for (idx, &(u, v)) in problem.graph.edges().iter().enumerate() {
        if assignment[u] == assignment[v] {
            welfare += lambda * problem.togetherness[idx];
        }
    }
    welfare
}
