//! A synthetic VR shopping mall scenario.
//!
//! Generates a Timik-like VR social network, samples a shopping group, builds
//! the store catalogue with the PIERT-like utility model, prunes the catalogue
//! to a candidate set (as a real deployment would), and compares AVG / AVG-D
//! against the four baselines on utility, personal/social split, and the
//! subgroup metrics of §6.5.
//!
//! Run with:
//! ```text
//! cargo run --release --example vr_mall
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);

    // A mall with a large catalogue; the shopping group is sampled from a
    // bigger VR social network by random walk.
    let spec = InstanceSpec {
        profile: DatasetProfile::TimikLike,
        population: 800,
        num_users: 24,
        num_items: 400,
        num_slots: 6,
        lambda: 0.5,
        model: None,
    };
    let full = spec.build(&mut rng);
    println!(
        "Generated VR mall: {} shoppers, {} friend pairs, catalogue of {} items, {} shelves",
        full.num_users(),
        full.friend_pairs().len(),
        full.num_items(),
        full.num_slots()
    );

    // Prune the catalogue to the union of everyone's top items plus globally
    // popular items (what keeps the LP tractable at the paper's m = 10000).
    let (instance, kept) = full.prune_items(12, 30);
    println!(
        "Candidate pruning kept {} of {} items\n",
        kept.len(),
        full.num_items()
    );

    let mut results: Vec<(&str, Configuration)> = Vec::new();
    let avg = solve_avg(&instance, &AvgConfig::default());
    results.push(("AVG", avg.configuration.clone()));
    let avg_d = solve_avg_d(&instance, &AvgDConfig::default());
    results.push(("AVG-D", avg_d.configuration.clone()));
    results.push(("PER", solve_per(&instance)));
    results.push(("FMG", solve_fmg(&instance)));
    results.push(("SDP", solve_sdp(&instance, &SdpConfig::default())));
    results.push(("GRF", solve_grf(&instance, &GrfConfig::default())));

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>10} {:>8}",
        "method", "utility", "personal", "social", "co-display%", "alone%", "density"
    );
    for (label, config) in &results {
        let split = utility_split(&instance, config);
        let metrics = subgroup_metrics(&instance, config);
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>11.1}% {:>9.1}% {:>8.2}",
            label,
            split.total(),
            split.preference,
            split.social,
            100.0 * metrics.co_display_fraction,
            100.0 * metrics.alone_fraction,
            metrics.normalized_density
        );
    }

    println!(
        "\nLP upper bound: {:.3}; AVG reaches {:.1}% of it, AVG-D {:.1}%",
        avg.relaxation_bound,
        100.0 * avg.utility / avg.relaxation_bound,
        100.0 * avg_d.utility / avg.relaxation_bound
    );

    // Regret distribution: how fairly is the utility spread across shoppers?
    println!("\nMean regret ratio per method (lower is fairer):");
    for (label, config) in &results {
        let regrets = regret_ratios(&instance, config);
        let mean: f64 = regrets.iter().sum::<f64>() / regrets.len() as f64;
        let max = regrets.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "  {label:<8} mean {:.3}  worst-off shopper {:.3}",
            mean, max
        );
    }
}
