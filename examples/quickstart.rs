//! Quickstart: the paper's running example end to end.
//!
//! Builds the four-shopper digital-photography store of Figure 1 / Table 1,
//! solves it with AVG, AVG-D, the exact IP and every baseline, and prints the
//! resulting SAVG 3-Configurations together with their utilities — the same
//! numbers the paper reports in Tables 7–9 (10.35 optimal, 9.75 AVG,
//! 9.85 AVG-D, 8.25 PER, 8.35 group, 8.4/8.7 subgroup approaches).
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use svgic::core::example::{paper_configurations, running_example};
use svgic::prelude::*;

fn print_configuration(instance: &SvgicInstance, label: &str, config: &Configuration) {
    let names = ["Alice", "Bob", "Charlie", "Dave"];
    println!("\n{label}");
    println!(
        "  total SAVG utility (unweighted, λ = ½): {:.2}",
        unweighted_total_utility(instance, config)
    );
    for (u, name) in names.iter().enumerate() {
        let items: Vec<String> = config
            .items_of(u)
            .iter()
            .map(|&c| instance.item_label(c))
            .collect();
        println!("  {name:<8} -> {}", items.join(" | "));
    }
    let metrics = subgroup_metrics(instance, config);
    println!(
        "  co-display: {:.0}% of friend pairs, alone: {:.0}% of users, intra-subgroup edges: {:.0}%",
        100.0 * metrics.co_display_fraction,
        100.0 * metrics.alone_fraction,
        100.0 * metrics.intra_fraction
    );
}

fn main() {
    let instance = running_example();
    println!(
        "SVGIC running example: {} users, {} items, {} display slots, λ = {}",
        instance.num_users(),
        instance.num_items(),
        instance.num_slots(),
        instance.lambda()
    );

    // The paper's reference configurations.
    let refs = paper_configurations();
    print_configuration(&instance, "Paper optimum (Figure 1(b))", &refs.optimal);

    // Our solvers.
    let avg = solve_avg(&instance, &AvgConfig::default());
    print_configuration(
        &instance,
        "AVG (randomized 4-approximation)",
        &avg.configuration,
    );

    let avg_d = solve_avg_d(&instance, &AvgDConfig::default());
    print_configuration(
        &instance,
        "AVG-D (deterministic 4-approximation)",
        &avg_d.configuration,
    );

    let ip = solve_exact(&instance, &ExactConfig::default());
    print_configuration(&instance, "Exact IP (branch & bound)", &ip.configuration);

    // Baselines.
    print_configuration(&instance, "PER (personalized top-k)", &solve_per(&instance));
    print_configuration(&instance, "FMG (group approach)", &solve_fmg(&instance));
    print_configuration(
        &instance,
        "SDP (subgroup by friendship)",
        &solve_sdp(&instance, &SdpConfig::default()),
    );
    print_configuration(
        &instance,
        "GRF (subgroup by preference)",
        &solve_grf(&instance, &GrfConfig::default()),
    );

    println!(
        "\nLP relaxation upper bound: {:.3} (weighted) — AVG-D achieved {:.3}",
        avg_d.relaxation_bound, avg_d.utility
    );
}
