//! Dynamic VR shopping session (extension F of §5).
//!
//! Shoppers join and leave the VR store over time; re-running the whole
//! optimization pipeline for every event would be wasteful, so the
//! `DynamicSolver` restricts the instance to the current population and
//! re-rounds incrementally.  The example simulates a short session, printing
//! the group size, the achieved utility and how close it stays to the LP
//! bound after every event.
//!
//! Run with:
//! ```text
//! cargo run --release --example dynamic_shopping
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic::algorithms::avg::AvgConfig;
use svgic::algorithms::extensions::DynamicSolver;
use svgic::core::extensions::DynamicEvent;
use svgic::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(4);
    // The full population that may ever enter the store.
    let spec = InstanceSpec {
        profile: DatasetProfile::TimikLike,
        population: 300,
        num_users: 20,
        num_items: 50,
        num_slots: 4,
        lambda: 0.5,
        model: None,
    };
    let full = spec.build(&mut rng);

    // Start with the first 8 users present.
    let initial: Vec<usize> = (0..8).collect();
    let mut solver = DynamicSolver::new(full, initial, AvgConfig::default());

    let timeline: Vec<(&str, Vec<DynamicEvent>)> = vec![
        ("store opens", vec![]),
        (
            "two friends join",
            vec![DynamicEvent::Join(8), DynamicEvent::Join(9)],
        ),
        (
            "a family of three joins",
            vec![
                DynamicEvent::Join(10),
                DynamicEvent::Join(11),
                DynamicEvent::Join(12),
            ],
        ),
        (
            "early visitors leave",
            vec![DynamicEvent::Leave(0), DynamicEvent::Leave(1)],
        ),
        (
            "rush hour",
            vec![
                DynamicEvent::Join(13),
                DynamicEvent::Join(14),
                DynamicEvent::Join(15),
                DynamicEvent::Join(16),
            ],
        ),
        (
            "closing time",
            vec![
                DynamicEvent::Leave(8),
                DynamicEvent::Leave(9),
                DynamicEvent::Leave(10),
            ],
        ),
    ];

    println!(
        "{:<22} {:>8} {:>12} {:>12} {:>10}",
        "event", "present", "utility", "LP bound", "ratio"
    );
    for (label, events) in timeline {
        for e in events {
            solver.apply(e);
        }
        match solver.resolve() {
            Some((instance, solution)) => {
                let ratio = if solution.relaxation_bound > 0.0 {
                    solution.utility / solution.relaxation_bound
                } else {
                    1.0
                };
                println!(
                    "{:<22} {:>8} {:>12.3} {:>12.3} {:>9.1}%",
                    label,
                    instance.num_users(),
                    solution.utility,
                    solution.relaxation_bound,
                    100.0 * ratio
                );
                assert!(solution.configuration.is_valid(instance.num_items()));
            }
            None => println!("{label:<22} {:>8}", "empty"),
        }
    }
}
