//! A day of traffic in a social-VR shopping mall — now declared as a
//! workload scenario instead of hand-rolled loops.
//!
//! The original version of this example hand-coded sixty groups' worth of
//! joins, leaves, catalogue rotations and λ re-tunes. With `svgic-workload`
//! the same day is three steps:
//!
//! 1. parameterize the named `diurnal-cycle` scenario (morning ramp, lunch
//!    peak, evening fade),
//! 2. generate its deterministic event **trace** (recordable, replayable
//!    bit-identically on any machine),
//! 3. feed the trace to the **load driver**, which measures per-request
//!    latency histograms, throughput, and served-configuration quality while
//!    the engine coalesces and batch-solves the churn.
//!
//! The run then replays its own trace from the serialized text and asserts
//! the engine served *identical* configurations — the record/replay loop the
//! perf trajectory relies on.
//!
//! Run with: `cargo run --release --example mall_service`

use svgic::prelude::*;
use svgic::workload::trace::TraceEvent;

const DAY_SEED: u64 = 0x5E55_10A5;

fn main() {
    // --- 1. The mall's day as a scenario: a diurnal arrival cycle over a
    // handful of mall-scene templates (shared templates are what let the
    // engine's factor cache pay off across groups). ---
    let mut scenario = Scenario::diurnal_cycle();
    scenario.ticks = 12; // one tick per opening hour, 09:00–21:00
    scenario.arrivals = svgic::workload::ArrivalProcess::Diurnal {
        base: 5.0,       // ~95 groups over the day
        amplitude: 0.95, // quiet open, packed lunch hours
        period: 24.0,    // the cycle spans a full day; the mall sees its peak half
    };
    scenario.num_templates = 6;
    scenario.items = 16;
    scenario.slots = 3;
    scenario.catalog_churn = 0.06; // afternoon shelf rotations
    scenario.lambda_churn = 0.04; // happy-hour social boosts

    let trace = generate(&scenario, DAY_SEED);
    let sessions = trace.session_count();
    let events = trace.events.len();
    // Peak concurrency from the open/close structure of the trace: the mall
    // must actually be crowded, not just visited 40 times in sequence.
    let (mut live, mut peak_concurrent) = (0usize, 0usize);
    for event in &trace.events {
        match event {
            TraceEvent::Open { .. } => {
                live += 1;
                peak_concurrent = peak_concurrent.max(live);
            }
            TraceEvent::Close { .. } => live -= 1,
            _ => {}
        }
    }
    println!(
        "mall_service: scenario `{}`, {} groups over {} hours ({} concurrent at peak), {} trace events",
        scenario.name, sessions, scenario.ticks, peak_concurrent, events
    );
    assert!(sessions >= 40, "need a busy day, got {sessions} groups");
    assert!(
        peak_concurrent >= 50,
        "need >= 50 concurrent groups at the peak hour, got {peak_concurrent}"
    );

    // --- 2. Drive the engine open-loop (one batched flush per hour). ---
    let driver = LoadDriver::new(DriverConfig::default());
    let outcome = driver.run(&trace);

    let all = outcome.latency.all();
    println!(
        "\nday served: {} requests in {:.3}s ({:.0} req/s)",
        outcome.requests,
        outcome.wall_seconds,
        outcome.throughput_rps()
    );
    println!(
        "latency: p50 {:?}, p95 {:?}, p99 {:?}, max {:?}",
        all.quantile(0.50),
        all.quantile(0.95),
        all.quantile(0.99),
        all.max()
    );
    println!(
        "quality: {} sampled reads, mean utility {:.3}, utility/bound {:.1}%",
        outcome.quality.samples,
        outcome.quality.mean_utility(),
        100.0 * outcome.quality.bound_ratio()
    );
    println!("\n{}", outcome.engine);

    let stats = &outcome.engine;
    assert_eq!(stats.sessions_created, stats.sessions_closed);
    assert!(
        stats.cache_hit_rate() > 0.0,
        "expected a non-zero factor-cache hit rate"
    );
    assert!(
        stats.events_coalesced > 0,
        "expected batching to coalesce churn"
    );

    // --- 3. Record → replay: serialize the trace, parse it back, re-drive,
    // and demand identical served configurations. ---
    let text = trace.render();
    let replayed: Trace = text.parse().expect("recorded trace parses");
    assert_eq!(replayed.render(), text, "round trip must be byte-identical");
    let replay_outcome = driver.run(&replayed);
    assert_eq!(
        outcome.config_digest, replay_outcome.config_digest,
        "replay must reproduce the exact served configurations"
    );
    let catalog_rotations = replayed
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Catalog { .. }))
        .count();
    println!(
        "replay: {} bytes of trace, {} catalogue rotations, digest 0x{:016x} reproduced ✓",
        text.len(),
        catalog_rotations,
        outcome.config_digest
    );
}
