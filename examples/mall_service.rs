//! A day of traffic in a social-VR shopping mall, served by `svgic-engine`.
//!
//! Sixty concurrent shopping groups (spawned from a handful of mall-scene
//! templates, as a real deployment would) live through a simulated day of
//! opening, lunch-hour churn, an afternoon catalogue rotation, an evening λ
//! re-tune (the mall boosts social co-browsing for happy hour) and closing
//! time. Every tick the engine coalesces the pending joins/leaves per group
//! and re-solves only what changed, sharing LP utility factors across groups
//! and across revisited population states.
//!
//! The run is fully deterministic under the fixed `DAY_SEED`.
//!
//! Run with: `cargo run --release --example mall_service`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic::core::extensions::DynamicEvent;
use svgic::prelude::*;

const DAY_SEED: u64 = 0x5E55_10A5;
const NUM_TEMPLATES: usize = 6;
const NUM_SESSIONS: usize = 60;
const HOURS: usize = 12;

fn main() {
    let mut rng = StdRng::seed_from_u64(DAY_SEED);

    // A handful of mall-scene templates; every group instance is stamped from
    // one of these, so their full-population LP factors are shared via the
    // engine's factor cache.
    let templates: Vec<SvgicInstance> = (0..NUM_TEMPLATES)
        .map(|t| {
            let profile = DatasetProfile::all()[t % 3];
            InstanceSpec {
                num_users: 8,
                num_items: 16,
                num_slots: 3,
                ..InstanceSpec::small(profile)
            }
            .build(&mut StdRng::seed_from_u64(DAY_SEED ^ (t as u64 + 1)))
        })
        .collect();

    let mut engine = Engine::new(EngineConfig {
        auto_flush_pending: 0, // we flush once per simulated hour
        ..EngineConfig::default()
    });
    println!(
        "mall_service: {} groups from {} templates, {} worker threads\n",
        NUM_SESSIONS,
        NUM_TEMPLATES,
        engine.workers()
    );

    // --- Opening: every group arrives with a partial crew. ---
    let mut sessions: Vec<SessionId> = Vec::new();
    for g in 0..NUM_SESSIONS {
        let template = &templates[g % NUM_TEMPLATES];
        let crew: Vec<usize> = (0..template.num_users())
            .filter(|_| rng.gen::<f64>() < 0.75)
            .collect();
        let view = engine
            .create_session(CreateSession {
                instance: template.clone(),
                initial_present: if crew.is_empty() { vec![0] } else { crew },
                seed: DAY_SEED ^ (g as u64).wrapping_mul(0x9E37),
            })
            .expect("session opens");
        assert!(view.configuration.is_valid(view.catalog.len()));
        sessions.push(view.session);
    }
    assert!(
        engine.session_count() >= 50,
        "need >= 50 concurrent sessions"
    );
    println!(
        "09:00  {} groups open, all initial configurations served",
        engine.session_count()
    );

    // --- The day: hourly churn, coalesced and re-solved in batches. ---
    let mut served_checks = 0usize;
    for hour in 0..HOURS {
        let clock = 9 + hour;
        let mut submitted = 0usize;
        for (g, &id) in sessions.iter().enumerate() {
            let template = &templates[g % NUM_TEMPLATES];
            let population = template.num_users();
            // Shoppers wander in and out; lunch hour doubles the churn.
            let churn = if clock == 12 || clock == 13 { 6 } else { 3 };
            for _ in 0..churn {
                let user = rng.gen_range(0..population);
                let event = if rng.gen::<f64>() < 0.5 {
                    SessionEvent::Membership(DynamicEvent::Join(user))
                } else {
                    SessionEvent::Membership(DynamicEvent::Leave(user))
                };
                engine.submit_event(id, event).expect("valid event");
                submitted += 1;
            }
            // 15:00 — catalogue rotation in half the groups: the mall swaps
            // the back half of the shelf.
            if clock == 15 && g % 2 == 0 {
                let m = template.num_items();
                let rotated: Vec<usize> = (0..m / 2).chain(m * 3 / 4..m).collect();
                engine
                    .submit_event(id, SessionEvent::SetCatalog(rotated))
                    .expect("valid catalogue");
                submitted += 1;
            }
            // 18:00 — happy hour: boost social utility weight everywhere.
            if clock == 18 {
                engine
                    .submit_event(id, SessionEvent::RetuneLambda(0.8))
                    .expect("valid lambda");
                submitted += 1;
            }
        }
        engine.flush();

        // Spot-check served configurations stay valid all day.
        for &id in sessions.iter().step_by(7) {
            let view = engine.query_configuration(id).expect("live session");
            if !view.present.is_empty() {
                assert!(
                    view.configuration.is_valid(view.catalog.len()),
                    "invalid configuration served at {clock}:00"
                );
                assert!(view.utility >= 0.0);
                served_checks += 1;
            }
        }
        println!(
            "{clock:02}:00  {submitted:>3} events submitted, cache {} factor sets, hit rate {:>5.1}%",
            engine.cached_factor_sets(),
            100.0 * engine.stats().cache_hit_rate()
        );
    }

    // --- Closing: groups check out. ---
    for &id in &sessions {
        engine.close_session(id).expect("session closes");
    }
    println!("21:00  all groups checked out\n");

    let stats = engine.stats();
    println!("{stats}");
    assert_eq!(engine.session_count(), 0);
    assert!(served_checks > 0);
    assert!(
        stats.cache_hit_rate() > 0.0,
        "expected a non-zero factor-cache hit rate"
    );
    assert!(
        stats.events_coalesced > 0,
        "expected batching to coalesce churn"
    );
    println!(
        "\nday served: {} solves for {} events across {} groups ({} LP solves avoided via cache)",
        stats.solves(),
        stats.events_submitted,
        NUM_SESSIONS,
        stats.cache_hits
    );
}
