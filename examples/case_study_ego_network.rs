//! Case study (Fig. 11 of the paper): a user with a unique taste inside her
//! 2-hop ego network.
//!
//! The paper's case study shows why *flexible* per-slot subgroups matter: a
//! user whose preferences resemble none of her friends' is either sacrificed
//! (SDP aligns her with a socially tight but taste-incompatible clique) or
//! isolated (GRF leaves her alone), whereas AVG co-displays different items
//! with different friends at different slots.  This example rebuilds that
//! situation on a synthetic Yelp-like network and prints the per-slot
//! subgroups around the ego user together with her regret ratio under each
//! method.
//!
//! Run with:
//! ```text
//! cargo run --release --example case_study_ego_network
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic::prelude::*;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = InstanceSpec {
        profile: DatasetProfile::YelpLike,
        population: 500,
        num_users: 30,
        num_items: 60,
        num_slots: 4,
        lambda: 0.5,
        model: None,
    };
    let full = spec.build(&mut rng);

    // Ego = the user whose preference vector differs the most from her friends'.
    let ego = (0..full.num_users())
        .filter(|&u| !full.graph().neighbors(u).is_empty())
        .max_by(|&a, &b| {
            let d = |u: usize| -> f64 {
                let friends = full.graph().neighbors(u);
                friends
                    .iter()
                    .map(|&v| {
                        full.preference_row(u)
                            .iter()
                            .zip(full.preference_row(v))
                            .map(|(x, y)| (x - y) * (x - y))
                            .sum::<f64>()
                    })
                    .sum::<f64>()
                    / friends.len() as f64
            };
            d(a).partial_cmp(&d(b)).unwrap()
        })
        .expect("network has at least one non-isolated user");

    let ego_nodes = full.graph().ego_network(ego, 2);
    let instance = full.restrict_users(&ego_nodes);
    let ego_local = ego_nodes.iter().position(|&v| v == ego).unwrap();
    println!(
        "2-hop ego network of user {ego}: {} users, {} friend pairs",
        instance.num_users(),
        instance.friend_pairs().len()
    );

    let methods: Vec<(&str, Configuration)> = vec![
        (
            "AVG",
            solve_avg(&instance, &AvgConfig::default()).configuration,
        ),
        ("SDP", solve_sdp(&instance, &SdpConfig::default())),
        ("GRF", solve_grf(&instance, &GrfConfig::default())),
    ];

    for (label, config) in &methods {
        let regrets = regret_ratios(&instance, config);
        println!("\n=== {label} ===");
        println!("ego regret ratio: {:.1}%", 100.0 * regrets[ego_local]);
        for s in 0..instance.num_slots() {
            let item = config.get(ego_local, s);
            let companions: Vec<usize> = (0..instance.num_users())
                .filter(|&u| u != ego_local && config.get(u, s) == item)
                .collect();
            let friends_among = companions
                .iter()
                .filter(|&&u| instance.graph().are_friends(ego_local, u))
                .count();
            println!(
                "  slot {s}: item {item:>3} shared with {:>2} users ({friends_among} of them friends)",
                companions.len()
            );
        }
        let metrics = subgroup_metrics(&instance, config);
        println!(
            "  network-wide: co-display {:.0}%, alone {:.0}%, normalized density {:.2}",
            100.0 * metrics.co_display_fraction,
            100.0 * metrics.alone_fraction,
            metrics.normalized_density
        );
    }
}
