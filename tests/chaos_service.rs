//! Digest-gated fault-matrix service tier: the acceptance contract of the
//! warm-standby-replication + chaos-engine tentpole.
//!
//! The matrix crosses
//!
//! - random workload scripts (seeded `node-churn` traces: joins, leaves,
//!   catalogue swaps, forced re-solves, a kill and a node join),
//! - random seeded [`ChaosPlan`]s (partition windows, slow-node delays,
//!   kill-during-flush),
//! - both transports (in-process engines vs real TCP servers on loopback),
//! - replication on and off,
//!
//! and gates every cell on the same three invariants:
//!
//! 1. **Digest equality** — a chaos run serves the byte-identical FNV-1a
//!    configuration digest as the same configuration replayed anywhere
//!    else (faults are absorbed and retried, never dropped, so the engines
//!    see the same request sequence).
//! 2. **No session loss** — every session opened by the trace is served and
//!    closed; kills (even mid-flush) conserve the session population.
//! 3. **Failover accounting** — `failover_warm + failover_cold ==
//!    nodes_killed`, and a fully-warm kill (replication on, kill at a flush
//!    boundary) loses zero warm capital.
//!
//! CI's `chaos-smoke` step repeats the replicated-churn cell across actual
//! `loadgen serve` processes.

use proptest::prelude::*;
use svgic::cluster::prelude::*;
use svgic::engine::prelude::*;
use svgic::net::{NetClient, NetServer};
use svgic::workload::prelude::*;

fn engine_config() -> EngineConfig {
    // Fixed shape so counters are machine-independent; auto-flush off — the
    // cluster driver owns the flush clock.
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

/// A seeded node-churn trace: the only scenario whose implied [`NodePlan`]
/// kills a node, which is what the failover invariants are about.
fn churn_trace(seed: u64) -> Trace {
    let mut scenario = Scenario::node_churn().smoke();
    scenario.ticks = 6;
    generate(&scenario, seed)
}

fn steady_trace() -> Trace {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 4;
    generate(&scenario, 29)
}

fn matrix_config(
    trace: &Trace,
    nodes: usize,
    replicate: bool,
    chaos: ChaosPlan,
) -> ClusterDriverConfig {
    ClusterDriverConfig {
        nodes,
        engine: engine_config(),
        plan: NodePlan::for_trace(trace, nodes),
        replicate,
        chaos,
        ..ClusterDriverConfig::default()
    }
}

fn run_in_process(
    trace: &Trace,
    nodes: usize,
    replicate: bool,
    chaos: ChaosPlan,
) -> ClusterLoadOutcome {
    ClusterDriver::new(matrix_config(trace, nodes, replicate, chaos)).run(trace)
}

/// The same cell over real sockets: one `NetServer` thread per node on an
/// ephemeral loopback port. Kills travel as `Crash` frames (the server is
/// wiped, not the process) and the crashed connection is reused for the
/// join, exactly as `loadgen --connect` does across processes.
fn run_over_tcp(
    trace: &Trace,
    nodes: usize,
    replicate: bool,
    chaos: ChaosPlan,
) -> ClusterLoadOutcome {
    let servers: Vec<NetServer> = (0..nodes)
        .map(|_| NetServer::bind("127.0.0.1:0", Engine::new(engine_config())).expect("binds"))
        .collect();
    let addresses: Vec<std::net::SocketAddr> =
        servers.iter().map(|server| server.local_addr()).collect();

    let mut handed_out = 0usize;
    let spawner = move |_cfg: &EngineConfig| {
        let addr = addresses[handed_out % addresses.len()];
        handed_out += 1;
        NetClient::connect(addr).expect("node reachable")
    };
    let outcome =
        ClusterDriver::new(matrix_config(trace, nodes, replicate, chaos)).run_with(trace, spawner);

    for server in servers {
        NetClient::connect(server.local_addr())
            .expect("connects")
            .shutdown_server()
            .expect("shuts down");
        server.join();
    }
    outcome
}

/// Partition and delay faults are digest-neutral by construction: the
/// transport absorbs a bounded number of sends and then always delivers, so
/// a chaotic run serves exactly what a calm one serves — across one node or
/// three, in-process or over TCP, replication on or off.
#[test]
fn fault_injection_is_digest_invariant_across_transports_and_topologies() {
    let trace = steady_trace();
    let baseline = run_in_process(&trace, 1, false, ChaosPlan::inactive());

    let chaotic_single = run_over_tcp(&trace, 1, false, ChaosPlan::generate(7, 1, trace.ticks));
    let chaotic_fleet = run_in_process(&trace, 3, true, ChaosPlan::generate(7, 3, trace.ticks));
    let chaotic_wire = run_over_tcp(&trace, 3, true, ChaosPlan::generate(7, 3, trace.ticks));

    for (label, outcome) in [
        ("1 TCP server", &chaotic_single),
        ("3 in-process nodes", &chaotic_fleet),
        ("3 TCP servers", &chaotic_wire),
    ] {
        assert_eq!(
            outcome.config_digest, baseline.config_digest,
            "chaos over {label} must not change what is served"
        );
        assert_eq!(outcome.requests, baseline.requests, "{label}");
        assert_eq!(outcome.sessions, baseline.sessions, "{label}");
    }
    assert_eq!(baseline.chaos_injected_failures, 0);
    assert!(
        chaotic_fleet.chaos_injected_failures > 0,
        "the generated plan must actually absorb requests"
    );
    assert_eq!(
        chaotic_fleet.chaos_injected_failures, chaotic_wire.chaos_injected_failures,
        "fault injection is part of the replayable configuration"
    );
    assert!(chaotic_fleet.cluster.replication_bytes > 0);
}

/// The headline acceptance cell: a replicated churn run under partition
/// faults kills its busiest node at a flush boundary and fails over *warm*
/// — zero warm capital lost, every lost session promoted from its standby —
/// with the identical digest in-process and across real sockets, and a
/// byte-identical replay.
#[test]
fn replicated_churn_under_faults_fails_over_warm_on_and_off_the_wire() {
    let trace = churn_trace(61);
    // Keep the generated partition/delay windows but pin the flush clock:
    // this cell is about the *warm* failover path, so the victim must die
    // flushed (kill-during-flush gets its own cell below).
    let mut chaos = ChaosPlan::generate(9, 3, trace.ticks);
    chaos.kill_mid_flush = false;

    let local = run_in_process(&trace, 3, true, chaos.clone());
    let wire = run_over_tcp(&trace, 3, true, chaos.clone());
    let replay = run_in_process(&trace, 3, true, chaos);

    for outcome in [&local, &wire] {
        assert_eq!(outcome.cluster.nodes_killed, 1);
        assert_eq!(
            outcome.cluster.failover_warm, 1,
            "a flush-boundary kill with current standbys is a warm failover"
        );
        assert_eq!(outcome.cluster.failover_cold, 0);
        assert_eq!(
            outcome.cluster.warm_capital_lost, 0,
            "warm standby promotion must conserve every factor cache"
        );
        assert!(outcome.cluster.standby_promotions > 0);
        assert_eq!(
            outcome.cluster.standby_promotions,
            outcome.cluster.sessions_recovered
        );
        assert!(outcome.cluster.replication_bytes > 0);
    }
    assert_eq!(
        local.config_digest, wire.config_digest,
        "warm failover must serve identically in-process and over TCP"
    );
    assert_eq!(local.cluster, wire.cluster);
    assert_eq!(replay.config_digest, local.config_digest);
    assert_eq!(replay.cluster, local.cluster);
}

/// Kill-during-flush: the victim dies holding an unflushed tick of events.
/// Replicas are one generation stale, so the promotion gate refuses them
/// and the rebuild is cold — but the pinned events are replayed exactly
/// once (neither dropped nor double-applied), the session population is
/// conserved, and the run is still deterministic across transports.
#[test]
fn kill_during_flush_conserves_sessions_and_replays_identically() {
    let trace = churn_trace(23);
    let chaos = ChaosPlan {
        seed: 0,
        faults: Vec::new(),
        kill_mid_flush: true,
    };

    let local = run_in_process(&trace, 3, true, chaos.clone());
    let wire = run_over_tcp(&trace, 3, true, chaos.clone());
    let replay = run_in_process(&trace, 3, true, chaos);

    for outcome in [&local, &wire] {
        assert_eq!(outcome.cluster.nodes_killed, 1);
        assert_eq!(
            outcome.cluster.failover_warm + outcome.cluster.failover_cold,
            outcome.cluster.nodes_killed,
            "every kill is classified exactly once"
        );
    }
    assert_eq!(local.sessions, wire.sessions, "no session may be lost");
    assert_eq!(
        local.config_digest, wire.config_digest,
        "a mid-flush kill is deterministic: in-process and TCP agree"
    );
    assert_eq!(local.cluster, wire.cluster);
    assert_eq!(replay.config_digest, local.config_digest);
    assert_eq!(replay.cluster, local.cluster);
}

proptest! {
    // Each case runs the cell three times (in-process, TCP, replay), so a
    // handful of cases already covers the matrix axes.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The randomized matrix: any (script, chaos plan, replication) cell
    /// must serve the identical digest in-process and over TCP, conserve
    /// its sessions, classify its kill, and replay byte-identically.
    #[test]
    fn fault_matrix_gates_digest_sessions_and_failover(
        trace_seed in 1u64..1_000,
        chaos_seed in 1u64..1_000,
        replicate_bit in 0u64..2,
    ) {
        let replicate = replicate_bit == 1;
        let trace = churn_trace(trace_seed);
        let chaos = ChaosPlan::generate(chaos_seed, 3, trace.ticks);

        let local = run_in_process(&trace, 3, replicate, chaos.clone());
        let wire = run_over_tcp(&trace, 3, replicate, chaos.clone());
        let replay = run_in_process(&trace, 3, replicate, chaos);

        prop_assert_eq!(local.config_digest, wire.config_digest);
        prop_assert_eq!(local.requests, wire.requests);
        prop_assert_eq!(local.sessions, wire.sessions);
        prop_assert_eq!(replay.config_digest, local.config_digest);

        for outcome in [&local, &wire] {
            prop_assert_eq!(outcome.cluster.nodes_killed, 1);
            prop_assert_eq!(
                outcome.cluster.failover_warm + outcome.cluster.failover_cold,
                outcome.cluster.nodes_killed
            );
            if replicate {
                prop_assert!(outcome.cluster.replication_bytes > 0);
            } else {
                prop_assert_eq!(outcome.cluster.standby_promotions, 0);
            }
        }
        prop_assert_eq!(&local.cluster, &wire.cluster);
        prop_assert_eq!(&replay.cluster, &local.cluster);
    }
}
