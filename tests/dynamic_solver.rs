//! Property tests for the §5 dynamic scenario solver: under seeded random
//! event streams — including duplicate joins, repeated leaves and events for
//! unknown users — `DynamicSolver` must never panic and must never yield a
//! configuration violating the no-duplication constraint (Definition 1).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic::algorithms::extensions::DynamicSolver;
use svgic::algorithms::AvgConfig;
use svgic::core::extensions::DynamicEvent;
use svgic::graph::generate::erdos_renyi;
use svgic::prelude::*;

fn random_instance(n: usize, m: usize, k: usize, seed: u64) -> SvgicInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = erdos_renyi(n, 0.4, &mut rng);
    let mut builder = SvgicInstanceBuilder::new(graph, m, k, 0.5);
    let mix = |a: usize, b: usize, c: usize| -> f64 {
        let h = a
            .wrapping_mul(31)
            .wrapping_add(b.wrapping_mul(17))
            .wrapping_add(c.wrapping_mul(7))
            .wrapping_add(seed as usize);
        ((h % 97) as f64) / 96.0
    };
    builder.fill_preferences(|u, c| mix(u, c, 1));
    builder.fill_social(|u, v, c| 0.5 * mix(u, v, c));
    builder.build().expect("random instance is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dynamic_solver_survives_random_event_streams(
        n in 4usize..8,
        m in 4usize..9,
        k in 1usize..4,
        stream_len in 1usize..20,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, seed);
        let config = AvgConfig::with_backend(LpBackend::ExactSimplex, seed);
        let mut solver = DynamicSolver::new(instance, (0..n / 2 + 1).collect(), config);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xEE);
        for step in 0..stream_len {
            // Deliberately includes out-of-range users (up to 2n) and
            // duplicate joins/leaves of users already in that state.
            let user = rng.gen_range(0..2 * n);
            let event = if rng.gen::<f64>() < 0.5 {
                DynamicEvent::Join(user)
            } else {
                DynamicEvent::Leave(user)
            };
            solver.apply(event);
            // Present set stays sorted, deduplicated, in range.
            let present = solver.present().to_vec();
            prop_assert!(present.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(present.iter().all(|&u| u < n));
            // Re-solve every few events (and always at the end of the
            // stream): the configuration must obey no-duplication.
            if step % 3 == 2 || step + 1 == stream_len {
                match solver.resolve() {
                    Some((restricted, solution)) => {
                        prop_assert_eq!(restricted.num_users(), present.len());
                        prop_assert!(
                            solution.configuration.is_valid(restricted.num_items()),
                            "no-duplication violated after {} events", step + 1
                        );
                        prop_assert!(solution.utility.is_finite());
                    }
                    None => prop_assert!(present.is_empty()),
                }
            }
        }
    }

    #[test]
    fn dynamic_solver_duplicate_events_are_idempotent(
        n in 4usize..8,
        seed in 0u64..200,
    ) {
        let instance = random_instance(n, 6, 2, seed);
        let config = AvgConfig::with_backend(LpBackend::ExactSimplex, seed);
        let mut solver = DynamicSolver::new(instance, vec![0, 1], config);
        let target = n - 1;
        solver.apply(DynamicEvent::Join(target));
        let after_first = solver.present().to_vec();
        solver.apply(DynamicEvent::Join(target));
        prop_assert_eq!(&solver.present().to_vec(), &after_first);
        solver.apply(DynamicEvent::Leave(target));
        let after_leave = solver.present().to_vec();
        solver.apply(DynamicEvent::Leave(target));
        prop_assert_eq!(&solver.present().to_vec(), &after_leave);
        // Unknown users are ignored entirely.
        solver.apply(DynamicEvent::Join(n + 100));
        prop_assert_eq!(&solver.present().to_vec(), &after_leave);
    }
}
