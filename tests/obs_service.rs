//! Obs on/off determinism: the hard contract of the `svgic-obs` tentpole.
//!
//! Observability is strictly read-side — spans, histograms and the flight
//! recorder observe the engine but never steer it. The property here drives
//! random session scripts (joins, leaves, catalogue swaps, forced LP
//! re-solves, flushes) through four backends built from the same script:
//!
//! 1. an in-process engine with obs **off**, the telemetry sampler **off**
//!    and the solve-ledger profiler **off** (all capacities 0 — the
//!    baseline),
//! 2. an in-process engine with obs, sampler and profiler **on**,
//! 3. a real `svgic-net` TCP server whose engine has obs, sampler and
//!    profiler **off**,
//! 4. a TCP server with obs, sampler and profiler **on**, scraped by a
//!    span-recording client that also drains the telemetry ring and the
//!    profile ledger over the wire.
//!
//! All four must produce the identical FNV-1a configuration digest and the
//! identical solve count. A divergence means tracing, sampling or
//! profiling changed what was served — the one thing an observability
//! layer must never do. The ledger itself is also cross-checked: its
//! deterministic fields (fingerprints, solve counts, miss causes) must be
//! identical in-process and over the wire.

use proptest::prelude::*;
use proptest::TestRng;
use svgic::core::example::running_example;
use svgic::core::extensions::DynamicEvent;
use svgic::engine::fingerprint::Fnv;
use svgic::engine::prelude::*;
use svgic::engine::{CreateSession, ObsConfig, Tracer};
use svgic::net::{NetClient, NetServer};

/// One scripted operation against one of the two live sessions.
#[derive(Clone, Debug)]
enum Op {
    /// Join the `n`-th currently-absent user (no-op when everyone is in).
    Join(u8),
    /// Leave the `n`-th currently-present user (no-op when empty).
    Leave(u8),
    /// Swap the active catalogue to this item bitmask (widened to the full
    /// catalogue when the mask has fewer than `k = 3` items).
    SetCatalog(u8),
    /// Force a full LP re-solve and digest the served view.
    ForceResolve,
    /// Flush the batch and digest the served view.
    Flush,
}

/// Expands a proptest-drawn `(seed, len)` pair into a random script (the
/// vendored proptest generates primitive ranges only, so structured inputs
/// are derived from a seeded stream — equally random, still reproducible).
fn random_script(seed: u64, len: usize) -> Vec<(bool, Op)> {
    let mut rng = TestRng::new(seed);
    (0..len)
        .map(|_| {
            let which = rng.next_u64().is_multiple_of(2);
            let payload = rng.next_u64();
            let op = match rng.next_u64() % 5 {
                0 => Op::Join((payload % 4) as u8),
                1 => Op::Leave((payload % 4) as u8),
                2 => Op::SetCatalog((payload % 32) as u8),
                3 => Op::ForceResolve,
                _ => Op::Flush,
            };
            (which, op)
        })
        .collect()
}

/// Engine shape shared by every backend: fixed workers/shards so counters
/// are machine-independent, auto-flush off so the script owns the clock.
/// The obs, telemetry-sampler and profiler toggles travel together: the
/// baseline backends run with all three off, the observed backends with
/// all three on.
fn engine_config(
    obs: ObsConfig,
    telemetry_capacity: usize,
    profile_capacity: usize,
) -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        obs,
        telemetry_capacity,
        profile_capacity,
        ..EngineConfig::default()
    }
}

/// Folds a served view into the digest the same way the load driver does:
/// generation, membership, catalogue, per-user configuration, utility.
fn fold_view(digest: &mut Fnv, key: u64, view: &ConfigurationView) {
    digest.write_u64(key);
    digest.write_u64(view.generation);
    digest.write_u64(view.present.len() as u64);
    for &user in &view.present {
        digest.write_u64(user as u64);
    }
    digest.write_u64(view.catalog.len() as u64);
    for &item in &view.catalog {
        digest.write_u64(item as u64);
    }
    for user in 0..view.configuration.num_users() {
        for &item in view.configuration.items_of(user) {
            digest.write_u64(item as u64);
        }
    }
    digest.write_f64(view.utility);
}

/// Replays the script against any transport, maintaining a presence model so
/// every submitted event is valid by construction (the interpretation of an
/// `Op` depends only on the script prefix, never on the backend — so every
/// backend sees the byte-identical request sequence).
fn run_script<B: EngineTransport>(backend: &mut B, script: &[(bool, Op)]) -> (u64, u64) {
    let instance = running_example();
    let mut digest = Fnv::new();
    let mut ids = Vec::new();
    let mut present: Vec<Vec<usize>> = Vec::new();
    for (i, init) in [vec![0usize, 1], vec![1usize, 2]].into_iter().enumerate() {
        let view = backend
            .create_session(CreateSession {
                instance: instance.clone(),
                initial_present: init.clone(),
                seed: 11 + i as u64,
            })
            .expect("session opens");
        ids.push(view.session);
        present.push(init);
    }
    for (which, op) in script {
        let s = *which as usize;
        let id = ids[s];
        match op {
            Op::Join(pick) => {
                let absent: Vec<usize> = (0..4).filter(|u| !present[s].contains(u)).collect();
                if absent.is_empty() {
                    continue;
                }
                let user = absent[*pick as usize % absent.len()];
                backend
                    .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(user)))
                    .expect("join accepted");
                present[s].push(user);
            }
            Op::Leave(pick) => {
                if present[s].is_empty() {
                    continue;
                }
                let user = present[s][*pick as usize % present[s].len()];
                backend
                    .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(user)))
                    .expect("leave accepted");
                present[s].retain(|&u| u != user);
            }
            Op::SetCatalog(mask) => {
                let mut items: Vec<usize> = (0..5).filter(|i| mask >> i & 1 == 1).collect();
                if items.len() < 3 {
                    items = (0..5).collect();
                }
                backend
                    .submit_event(id, SessionEvent::SetCatalog(items))
                    .expect("catalogue accepted");
            }
            Op::ForceResolve => {
                let view = backend.force_resolve(id).expect("force resolve");
                fold_view(&mut digest, s as u64, &view);
            }
            Op::Flush => {
                backend.flush().expect("flush");
                let view = backend.query_configuration(id).expect("live session");
                fold_view(&mut digest, s as u64, &view);
            }
        }
    }
    backend.flush().expect("flush");
    for (s, id) in ids.iter().enumerate() {
        let view = backend.query_configuration(*id).expect("live session");
        fold_view(&mut digest, s as u64, &view);
        backend.close_session(*id).expect("close");
    }
    let stats = backend.stats().expect("stats");
    (digest.finish(), stats.solves())
}

proptest! {
    // Each case runs four full backends (two of them real TCP servers), so
    // keep the case count modest; the script space is still well covered
    // across runs because proptest varies lengths and op mixes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn tracing_never_changes_what_is_served(seed in 0u64..100_000, len in 0usize..24) {
        let script = random_script(seed, len);
        // 1. In-process, obs, sampler and profiler off: the baseline.
        let mut engine_off = Engine::new(engine_config(ObsConfig::disabled(), 0, 0));
        let (digest_off, solves_off) = run_script(&mut engine_off, &script);
        prop_assert_eq!(engine_off.tracer().recorded(), 0);
        prop_assert!(engine_off.telemetry().is_empty(), "capacity 0 disables sampling");
        let profile_off = engine_off.profile();
        prop_assert!(profile_off.entries.is_empty(), "capacity 0 disables the ledger");
        prop_assert_eq!(profile_off.dropped, 0);

        // 2. In-process, obs, sampler and profiler on: same service, plus a
        // span stream, a populated telemetry ring and a solve ledger.
        let mut engine_on = Engine::new(engine_config(ObsConfig::enabled(), 1024, 128));
        let (digest_on, solves_on) = run_script(&mut engine_on, &script);
        prop_assert_eq!(digest_on, digest_off);
        prop_assert_eq!(solves_on, solves_off);
        prop_assert!(
            engine_on.tracer().recorded() > 0,
            "enabled tracer saw {} spans over {} ops",
            engine_on.tracer().recorded(),
            script.len(),
        );
        let ring = engine_on.telemetry();
        prop_assert!(!ring.is_empty(), "every flush sampled the ring");
        prop_assert!(ring.windows(2).all(|w| w[0].tick < w[1].tick));
        let ledger = engine_on.profile();
        if solves_off > 0 {
            prop_assert!(!ledger.entries.is_empty(), "solves must be attributed");
        }
        let attributed: u64 = ledger
            .entries
            .iter()
            .map(|e| e.warm_solves + e.cold_solves)
            .sum();
        prop_assert!(attributed == solves_off, "every solve lands in the ledger");
        for entry in &ledger.entries {
            prop_assert!(
                entry.miss_new + entry.miss_evicted + entry.miss_component_changed
                    == entry.cold_solves,
                "miss causes partition the cold solves"
            );
        }

        // 3. Over one TCP server, obs, sampler and profiler off on the
        // remote engine.
        let server = NetServer::bind("127.0.0.1:0", Engine::new(engine_config(ObsConfig::disabled(), 0, 0)))
            .expect("binds");
        let mut client = NetClient::connect(server.local_addr()).expect("connects");
        let (digest_tcp_off, solves_tcp_off) = run_script(&mut client, &script);
        prop_assert!(
            client.query_telemetry().expect("telemetry frame").is_empty(),
            "a sampler-off server answers QueryTelemetry with an empty ring"
        );
        let remote_profile_off = client.query_profile().expect("profile frame");
        prop_assert!(
            remote_profile_off.entries.is_empty(),
            "a profiler-off server answers QueryProfile with an empty ledger"
        );
        client.shutdown_server().expect("shuts down");
        server.join();
        prop_assert_eq!(digest_tcp_off, digest_off);
        prop_assert_eq!(solves_tcp_off, solves_off);

        // 4. Over one TCP server with obs, sampler and profiler on — a
        // span-recording client that also drains the telemetry ring and
        // the profile ledger over the wire. Every deterministic sample
        // field must match the in-process run's ring (ticks, counters,
        // byte gauges — everything except the busy-nanos-derived
        // imbalance, which is wall-clock), and the remote ledger's
        // deterministic fields must match the in-process ledger exactly.
        let server = NetServer::bind("127.0.0.1:0", Engine::new(engine_config(ObsConfig::enabled(), 1024, 128)))
            .expect("binds");
        let tracer = Tracer::new(ObsConfig::enabled());
        let mut client = NetClient::connect(server.local_addr())
            .expect("connects")
            .with_tracer(tracer.clone());
        let (digest_tcp_on, solves_tcp_on) = run_script(&mut client, &script);
        let remote_ring = client.query_telemetry().expect("telemetry frame");
        let remote_profile = client.query_profile().expect("profile frame");
        client.shutdown_server().expect("shuts down");
        server.join();
        prop_assert_eq!(remote_profile.entries.len(), ledger.entries.len());
        for (remote, local) in remote_profile.entries.iter().zip(&ledger.entries) {
            prop_assert_eq!(remote.template_fingerprint, local.template_fingerprint);
            prop_assert_eq!(remote.warm_solves, local.warm_solves);
            prop_assert_eq!(remote.cold_solves, local.cold_solves);
            prop_assert_eq!(remote.miss_new, local.miss_new);
            prop_assert_eq!(remote.miss_evicted, local.miss_evicted);
            prop_assert_eq!(remote.miss_component_changed, local.miss_component_changed);
        }
        prop_assert_eq!(digest_tcp_on, digest_off);
        prop_assert_eq!(solves_tcp_on, solves_off);
        prop_assert!(tracer.recorded() > 0, "the client recorded its wire spans");
        prop_assert_eq!(remote_ring.len(), ring.len());
        for (remote, local) in remote_ring.iter().zip(&ring) {
            prop_assert_eq!(remote.tick, local.tick);
            prop_assert_eq!(remote.requests, local.requests);
            prop_assert_eq!(remote.solves, local.solves);
            prop_assert_eq!(remote.queue_depth, local.queue_depth);
            prop_assert_eq!(remote.warm_rate_ppm, local.warm_rate_ppm);
            prop_assert_eq!(remote.mem_session_bytes, local.mem_session_bytes);
            prop_assert_eq!(remote.mem_pending_bytes, local.mem_pending_bytes);
            prop_assert_eq!(remote.mem_served_bytes, local.mem_served_bytes);
            prop_assert_eq!(remote.mem_cache_bytes, local.mem_cache_bytes);
        }
    }
}
