//! Engine-under-load integration tests plus the determinism audit.
//!
//! * Every named scenario (at smoke size) must drive a fresh engine end to
//!   end: valid configurations only, full session lifecycle, non-zero
//!   throughput.
//! * Determinism audit: the same `(scenario, seed)` must yield byte-identical
//!   traces, and driving the generated trace, a re-generated trace, and a
//!   trace round-tripped through the text format must all serve **identical**
//!   configurations (equal digests).

use svgic::prelude::*;
use svgic::workload::report::REPORT_SCHEMA;

fn smoke(name: &str) -> Scenario {
    let mut scenario = Scenario::by_name(name).expect("named scenario").smoke();
    scenario.ticks = scenario.ticks.min(4);
    scenario
}

#[test]
fn every_scenario_drives_the_engine_under_load() {
    for scenario in Scenario::all() {
        let scenario = smoke(&scenario.name);
        let trace = generate(&scenario, 0xBEEF);
        let outcome = LoadDriver::new(DriverConfig::default()).run(&trace);
        assert!(
            outcome.requests > 0,
            "{}: no requests driven",
            scenario.name
        );
        assert!(
            outcome.throughput_rps() > 0.0,
            "{}: zero throughput",
            scenario.name
        );
        // Full lifecycle: everything opened was closed (trace or final sweep)
        // and nothing was rejected along the way (the driver panics on
        // rejection).
        assert_eq!(
            outcome.engine.sessions_created, outcome.engine.sessions_closed,
            "{}: sessions leaked",
            scenario.name
        );
        assert_eq!(outcome.sessions as usize, trace.session_count());
    }
}

#[test]
fn determinism_audit_traces_and_configurations() {
    let scenario = smoke("flash-sale");

    // Byte-identical traces from the same seed.
    let trace_a = generate(&scenario, 7);
    let trace_b = generate(&scenario, 7);
    assert_eq!(
        trace_a.render(),
        trace_b.render(),
        "same (scenario, seed) must serialize byte-identically"
    );

    // Identical served configurations end-to-end: generated trace vs its
    // text-format round trip vs an independent regeneration.
    let driver = LoadDriver::new(DriverConfig::default());
    let direct = driver.run(&trace_a);
    let roundtrip: Trace = trace_a.render().parse().expect("canonical text parses");
    let replayed = driver.run(&roundtrip);
    let regenerated = driver.run(&trace_b);
    assert_eq!(direct.config_digest, replayed.config_digest);
    assert_eq!(direct.config_digest, regenerated.config_digest);
    assert_eq!(direct.engine.solves(), replayed.engine.solves());
    assert_eq!(direct.engine.cache_hits, replayed.engine.cache_hits);

    // A different seed must actually change what is served.
    let other = driver.run(&generate(&scenario, 8));
    assert_ne!(direct.config_digest, other.config_digest);
}

#[test]
fn closed_loop_mode_also_replays_deterministically() {
    let scenario = smoke("steady-mall");
    let trace = generate(&scenario, 3);
    let driver = LoadDriver::new(DriverConfig {
        mode: DriveMode::ClosedLoop,
        ..DriverConfig::default()
    });
    let a = driver.run(&trace);
    let b = driver.run(&trace);
    assert_eq!(a.config_digest, b.config_digest);
    // Closed-loop flushes per event, so it can never solve less than the
    // batched open loop.
    let open = LoadDriver::new(DriverConfig::default()).run(&trace);
    assert!(a.engine.solves() >= open.engine.solves());
}

#[test]
fn load_report_serializes_engine_snapshot_without_rederiving() {
    let scenario = smoke("churn-heavy");
    let trace = generate(&scenario, 11);
    let outcome = LoadDriver::new(DriverConfig::default()).run(&trace);
    let snapshot_rate = outcome.engine.cache_hit_rate();
    let report = LoadReport::new(&trace, outcome);
    let json = report.to_json();
    assert!(json.contains(REPORT_SCHEMA));
    assert!(json.contains("\"throughput_rps\""));
    assert!(json.contains("\"p50\"") && json.contains("\"p95\"") && json.contains("\"p99\""));
    // The engine block carries the snapshot's own derived rate verbatim.
    assert!(
        json.contains(&format!("\"cache_hit_rate\": {snapshot_rate}")),
        "report must embed the snapshot-computed rate, got:\n{json}"
    );
}
