//! Pins the `mem_*` gauges to reality: the engine's arithmetic capacity
//! accounting (`crates/engine/src/mem.rs`, computed from dimensions in O(1))
//! must land within ±15% of a deep size computed *independently* here — by
//! walking real data structures with `size_of`-based sums and this file's
//! own overhead constants, sharing none of the engine's formulas.
//!
//! The walk uses [`svgic::engine::SessionExport`]: exporting a session hands
//! the test the actual structures the engine was holding (full instance,
//! index vectors, pending queue, served solution, warm LP factors), so every
//! byte the gauges claimed can be re-derived from the objects themselves
//! rather than from a second copy of the engine's size formulas.

use std::mem::size_of;

use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic::core::extensions::DynamicEvent;
use svgic::core::SvgicInstance;
use svgic::datasets::{DatasetProfile, InstanceSpec};
use svgic::engine::prelude::*;
use svgic::engine::{CreateSession, EngineRequest, SessionExport};

/// This file's own idea of a `Vec<T>` holding `len` elements: three words of
/// header plus the payload (capacity == len for accounting purposes).
fn deep_vec<T>(len: usize) -> u64 {
    24 + (len * size_of::<T>()) as u64
}

/// Deep size of one instance, walked from the real object: both utility
/// matrices element-by-element via the public dimensions, the graph's edge
/// list and both adjacency lists at their actual lengths, a hash-map entry
/// estimate for the edge lookup, the friend-pair index, and labels.
fn deep_instance(instance: &SvgicInstance) -> u64 {
    let n = instance.num_users();
    let m = instance.num_items() as u64;
    let graph = instance.graph();
    let e = graph.num_edges() as u64;
    // pref is n × m, tau is |E| × m, both f64.
    let mut bytes = (n as u64 * m + e * m) * size_of::<f64>() as u64;
    bytes += deep_vec::<(usize, usize)>(graph.edges().len());
    for user in 0..n {
        bytes += deep_vec::<(usize, usize)>(graph.out_neighbors(user).len());
        bytes += deep_vec::<(usize, usize)>(graph.in_neighbors(user).len());
    }
    // Edge lookup: HashMap<(usize, usize), usize> — 24 payload bytes per
    // entry plus a conservative two words of table overhead.
    bytes += e * (24 + 16);
    for pair in instance.friend_pairs() {
        bytes += 2 * size_of::<usize>() as u64 + deep_vec::<usize>(pair.edges.len());
    }
    if let Some(labels) = instance.item_labels() {
        for label in labels {
            bytes += deep_vec::<u8>(label.len());
        }
    }
    bytes
}

/// Deep size of a pending-event queue: the enum rows at their real inline
/// size plus whatever catalogue payloads the queued events actually carry.
fn deep_pending(events: &[SessionEvent]) -> u64 {
    let mut bytes = deep_vec::<SessionEvent>(events.len());
    for event in events {
        if let SessionEvent::SetCatalog(items) = event {
            bytes += deep_vec::<usize>(items.len());
        }
    }
    bytes
}

/// Splits one export into the gauge categories, walking each held object.
fn deep_export(export: &SessionExport) -> (u64, u64, u64) {
    let mut session = deep_instance(&export.full)
        + deep_vec::<usize>(export.catalog.len())
        + deep_vec::<usize>(export.present.len());
    if let Some(factors) = &export.last_factors {
        session += (factors.num_users() * factors.num_items() * size_of::<f64>()) as u64;
    }
    let served = export
        .served
        .as_ref()
        .map(|served| {
            deep_vec::<usize>(served.configuration.num_users() * served.configuration.num_slots())
                + deep_vec::<usize>(served.present.len())
                + deep_vec::<usize>(served.catalog.len())
        })
        .unwrap_or(0);
    (session, deep_pending(&export.pending), served)
}

/// `gauge` within ±15% of the independently walked `deep` size.
fn within_15pct(gauge: u64, deep: u64) -> bool {
    gauge.abs_diff(deep) as f64 <= 0.15 * deep as f64
}

fn small_instance() -> SvgicInstance {
    let spec = InstanceSpec::small(DatasetProfile::TimikLike);
    let mut rng = StdRng::seed_from_u64(42);
    spec.build(&mut rng)
}

fn engine() -> Engine {
    Engine::new(EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        telemetry_capacity: 64,
        ..EngineConfig::default()
    })
}

#[test]
fn mem_gauges_track_independent_deep_size() {
    let instance = small_instance();
    let n = instance.num_users();
    let m = instance.num_items();
    let mut engine = engine();

    // Three sessions (creation solves each once, leaving served views and
    // warm factors behind), then five queued-but-unapplied events so every
    // gauge category is non-trivial at snapshot time.
    let presents = [
        vec![0usize, 1, 2],
        vec![3usize, 4, 5, 6],
        (0..n).collect::<Vec<_>>(),
    ];
    let mut ids = Vec::new();
    for (i, present) in presents.iter().enumerate() {
        let view = engine
            .create_session(CreateSession {
                instance: instance.clone(),
                initial_present: present.clone(),
                seed: 7 + i as u64,
            })
            .expect("session opens");
        ids.push(view.session);
    }
    engine
        .submit_event(ids[0], SessionEvent::Membership(DynamicEvent::Join(7)))
        .expect("join queues");
    engine
        .submit_event(ids[1], SessionEvent::Membership(DynamicEvent::Leave(3)))
        .expect("leave queues");
    engine
        .submit_event(ids[0], SessionEvent::SetCatalog((0..m).collect()))
        .expect("catalogue queues");
    engine
        .submit_event(ids[2], SessionEvent::SetCatalog((0..17).collect()))
        .expect("catalogue queues");
    engine
        .submit_event(ids[2], SessionEvent::RetuneLambda(0.25))
        .expect("retune queues");

    let stats = engine.stats();

    // Exporting hands over exactly what the engine held (pending events
    // included — nothing was flushed since they queued), so the walk below
    // audits the very state the snapshot above priced.
    let exports: Vec<SessionExport> = ids
        .iter()
        .map(|&id| engine.export_session(id).expect("session exports"))
        .collect();

    let (mut deep_session, mut deep_queue, mut deep_served) = (0u64, 0u64, 0u64);
    for export in &exports {
        let (session, pending, served) = deep_export(export);
        deep_session += session;
        deep_queue += pending;
        deep_served += served;
    }
    assert!(
        exports.iter().any(|export| export.has_warm_capital()),
        "at least one creation solve left warm factors"
    );
    assert!(exports.iter().all(|export| export.served.is_some()));

    assert!(
        within_15pct(stats.mem_session_bytes, deep_session),
        "mem_session_bytes {} vs deep {}",
        stats.mem_session_bytes,
        deep_session
    );
    assert!(
        within_15pct(stats.mem_pending_bytes, deep_queue),
        "mem_pending_bytes {} vs deep {}",
        stats.mem_pending_bytes,
        deep_queue
    );
    assert!(
        within_15pct(stats.mem_served_bytes, deep_served),
        "mem_served_bytes {} vs deep {}",
        stats.mem_served_bytes,
        deep_served
    );
    // The shard caches hold LP factors keyed by fingerprint; their exact
    // population depends on which solves took the LP path, but the gauge is
    // bounded by full-population factors per entry and the total is the sum
    // of its parts.
    assert!(
        stats.mem_cache_bytes() > 0,
        "creation solves warmed a cache"
    );
    assert!(
        stats.mem_cache_bytes() <= stats.total_cache_entries() * (n * m * size_of::<f64>()) as u64
    );
    assert_eq!(
        stats.mem_total_bytes(),
        stats.mem_session_bytes
            + stats.mem_pending_bytes
            + stats.mem_served_bytes
            + stats.mem_cache_bytes()
    );

    // With every session exported away, the very next snapshot prices the
    // now-empty store at zero — the gauges are recomputed, not decayed.
    let drained = engine.stats();
    assert_eq!(drained.mem_session_bytes, 0);
    assert_eq!(drained.mem_pending_bytes, 0);
    assert_eq!(drained.mem_served_bytes, 0);
}

#[test]
fn cache_gauge_matches_the_factors_it_holds() {
    // One full-population session: its creation solve takes the LP path and
    // inserts exactly one factors object into one shard cache, so the cache
    // gauge must price that one object — walked here from the export's
    // carried copy (factors are shared, the cache holds the same shape).
    let instance = small_instance();
    let n = instance.num_users();
    let mut engine = engine();
    let view = engine
        .create_session(CreateSession {
            instance: instance.clone(),
            initial_present: (0..n).collect(),
            seed: 5,
        })
        .expect("session opens");

    // The flush tick also samples the telemetry ring; the sample must carry
    // the same byte gauges the stats snapshot reports — one accounting, two
    // read paths.
    engine
        .handle(EngineRequest::Flush)
        .expect("flush ticks the sampler");
    let stats = engine.stats();
    let ring = engine.telemetry();
    let sample = ring.last().expect("the flush pushed a sample");
    assert_eq!(sample.tick, 0);
    assert_eq!(sample.mem_session_bytes, stats.mem_session_bytes);
    assert_eq!(sample.mem_pending_bytes, stats.mem_pending_bytes);
    assert_eq!(sample.mem_served_bytes, stats.mem_served_bytes);
    assert_eq!(sample.mem_cache_bytes, stats.mem_cache_bytes());
    assert_eq!(sample.mem_total_bytes, stats.mem_total_bytes());

    let export = engine
        .export_session(view.session)
        .expect("session exports");
    let factors = export.last_factors.as_ref().expect("LP solve left factors");
    let deep = (factors.num_users() * factors.num_items() * size_of::<f64>()) as u64;
    assert!(
        within_15pct(stats.mem_cache_bytes(), deep),
        "mem_cache_bytes {} vs walked factors {}",
        stats.mem_cache_bytes(),
        deep
    );
}
