//! Property-based tests (proptest) on the workspace-level invariants:
//! no-duplication, utility bounds, LP dominance, metric ranges, and the
//! behaviour of the ST constraints under random instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic::graph::generate::erdos_renyi;
use svgic::prelude::*;

/// Builds a random instance from compact proptest parameters.
fn random_instance(n: usize, m: usize, k: usize, lambda: f64, seed: u64) -> SvgicInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let graph = erdos_renyi(n, 0.4, &mut rng);
    let mut builder = SvgicInstanceBuilder::new(graph, m, k, lambda);
    // Deterministic pseudo-random utilities derived from the seed.
    let mix = |a: usize, b: usize, c: usize| -> f64 {
        let h = a
            .wrapping_mul(31)
            .wrapping_add(b.wrapping_mul(17))
            .wrapping_add(c.wrapping_mul(7))
            .wrapping_add(seed as usize);
        ((h % 101) as f64) / 100.0
    };
    builder.fill_preferences(|u, c| mix(u, c, 1));
    builder.fill_social(|u, v, c| 0.5 * mix(u, v, c));
    builder.build().expect("random instance is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn avg_respects_no_duplication_and_lp_bound(
        n in 3usize..8,
        m in 4usize..10,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, 0.5, seed);
        let sol = solve_avg(&instance, &AvgConfig::with_backend(LpBackend::ExactSimplex, seed));
        prop_assert!(sol.configuration.is_valid(m));
        prop_assert!(sol.utility <= sol.relaxation_bound + 1e-6);
        prop_assert!(sol.utility >= sol.relaxation_bound / 4.0 - 1e-9);
    }

    #[test]
    fn avg_d_is_deterministic_and_valid(
        n in 3usize..7,
        m in 4usize..9,
        k in 1usize..4,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, 0.5, seed);
        let a = solve_avg_d(&instance, &AvgDConfig::default());
        let b = solve_avg_d(&instance, &AvgDConfig::default());
        prop_assert_eq!(&a.configuration, &b.configuration);
        prop_assert!(a.configuration.is_valid(m));
        prop_assert!(a.utility >= a.relaxation_bound / 4.0 - 1e-9);
    }

    #[test]
    fn baselines_always_return_valid_configurations(
        n in 2usize..9,
        m in 3usize..12,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, 0.5, seed);
        for cfg in [
            solve_per(&instance),
            solve_fmg(&instance),
            solve_sdp(&instance, &SdpConfig::default()),
            solve_grf(&instance, &GrfConfig::default()),
        ] {
            prop_assert!(cfg.is_valid(m));
            let u = total_utility(&instance, &cfg);
            prop_assert!(u.is_finite() && u >= 0.0);
        }
    }

    #[test]
    fn utility_is_invariant_under_global_slot_permutation(
        n in 2usize..7,
        m in 4usize..9,
        seed in 0u64..1000,
    ) {
        let k = 3usize;
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, 0.5, seed);
        let cfg = solve_per(&instance);
        // Swap slots 0 and 2 for every user: co-displays are preserved.
        let mut swapped = cfg.clone();
        for u in 0..n {
            let a = cfg.get(u, 0);
            let b = cfg.get(u, 2);
            swapped.set(u, 0, b);
            swapped.set(u, 2, a);
        }
        let before = total_utility(&instance, &cfg);
        let after = total_utility(&instance, &swapped);
        prop_assert!((before - after).abs() < 1e-9);
    }

    #[test]
    fn st_solution_feasible_and_st_utility_dominates_plain(
        n in 3usize..8,
        m in 4usize..10,
        cap in 1usize..5,
        seed in 0u64..500,
    ) {
        let k = 2usize;
        prop_assume!(k <= m);
        // Only keep (n, m, cap) combinations that admit a feasible
        // configuration: every slot needs at least ceil(n / cap) distinct items.
        prop_assume!(m >= n.div_ceil(cap).max(k) + k);
        let instance = random_instance(n, m, k, 0.5, seed);
        let st = StParams::new(0.5, cap);
        let sol = solve_avg_st(&instance, &st, &AvgConfig::with_backend(LpBackend::ExactSimplex, seed));
        prop_assert!(st.is_feasible(&sol.configuration));
        // ST utility (with teleport credit) is at least the direct-only utility.
        let direct = total_utility(&instance, &sol.configuration);
        prop_assert!(sol.utility >= direct - 1e-9);
    }

    #[test]
    fn metrics_stay_in_range(
        n in 2usize..8,
        m in 3usize..10,
        k in 1usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, 0.6, seed);
        let cfg = solve_fmg(&instance);
        let sm = subgroup_metrics(&instance, &cfg);
        for v in [
            sm.intra_fraction,
            sm.inter_fraction,
            sm.co_display_fraction,
            sm.alone_fraction,
        ] {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&v));
        }
        prop_assert!(sm.max_subgroup_size <= n);
        let split = utility_split(&instance, &cfg);
        prop_assert!(split.preference >= 0.0 && split.social >= 0.0);
        for r in regret_ratios(&instance, &cfg) {
            prop_assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn lambda_zero_makes_per_optimal(
        n in 2usize..7,
        m in 4usize..9,
        k in 1usize..4,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= m);
        let instance = random_instance(n, m, k, 0.0, seed);
        let per = solve_per(&instance);
        let per_value = total_utility(&instance, &per);
        for other in [
            solve_fmg(&instance),
            solve_sdp(&instance, &SdpConfig::default()),
            solve_grf(&instance, &GrfConfig::default()),
        ] {
            prop_assert!(per_value + 1e-9 >= total_utility(&instance, &other));
        }
    }
}
