//! End-to-end wire-protocol service tests: the acceptance contract of the
//! `svgic-net` tentpole.
//!
//! The same `(scenario, seed)` trace must yield the **identical FNV-1a
//! configuration digest** through
//!
//! 1. the in-process engine ([`LoadDriver::run`]),
//! 2. one TCP server ([`LoadDriver::run_on`] over a `NetClient`),
//! 3. a multi-server cluster (≥ 2 `NetServer`s behind
//!    [`ClusterDriver::run_with`]), including live migrations whose session
//!    exports travel over the wire.
//!
//! The servers here run in threads of this process (real sockets on
//! loopback, ephemeral ports); CI's `net-smoke` step repeats the same
//! assertions across actual `loadgen serve` processes.

use svgic::engine::prelude::*;
use svgic::net::{NetClient, NetServer};
use svgic::workload::prelude::*;
use svgic::workload::DriverConfig;

fn server_engine() -> Engine {
    // Fixed shape so counters are machine-independent; auto-flush off — the
    // driver owns the flush clock (as `loadgen serve` also forces).
    Engine::new(EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    })
}

fn smoke_trace() -> Trace {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 4;
    generate(&scenario, 29)
}

fn driver() -> LoadDriver {
    LoadDriver::new(DriverConfig {
        engine: EngineConfig {
            workers: 2,
            shards: 2,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        },
        ..DriverConfig::default()
    })
}

#[test]
fn tcp_serving_matches_in_process_digests() {
    let trace = smoke_trace();
    let in_process = driver().run(&trace);

    let server = NetServer::bind("127.0.0.1:0", server_engine()).expect("binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");
    let over_tcp = driver().run_on(&mut client, &trace);

    assert_eq!(
        in_process.config_digest, over_tcp.config_digest,
        "the wire must not change what is served"
    );
    assert_eq!(in_process.requests, over_tcp.requests);
    assert_eq!(in_process.sessions, over_tcp.sessions);
    // The remote engine's counters travel back intact: same solve counts,
    // same coalescing — the transport adds latency, not work.
    assert_eq!(in_process.engine.solves(), over_tcp.engine.solves());
    assert_eq!(
        in_process.engine.events_submitted,
        over_tcp.engine.events_submitted
    );
    assert_eq!(over_tcp.workers, 2, "Describe reports the remote shape");

    // Replay over the same server: the engine accumulated stats but its
    // sessions were all closed, so the digest reproduces exactly.
    let replay = driver().run_on(&mut client, &trace);
    assert_eq!(replay.config_digest, in_process.config_digest);

    client.shutdown_server().expect("shuts down");
    server.join();
}

#[test]
fn multi_process_cluster_matches_in_process_digests() {
    let trace = smoke_trace();
    let single = driver().run(&trace);

    // Two real servers; the router places sessions across them and the
    // mid-run plan forces a live migration whose export/import round-trips
    // both sockets.
    let servers: Vec<NetServer> = (0..2)
        .map(|_| NetServer::bind("127.0.0.1:0", server_engine()).expect("binds"))
        .collect();
    let addresses: Vec<std::net::SocketAddr> =
        servers.iter().map(|server| server.local_addr()).collect();

    let mut handed_out = 0usize;
    let spawner = move |_cfg: &EngineConfig| {
        let addr = addresses[handed_out % addresses.len()];
        handed_out += 1;
        NetClient::connect(addr).expect("node reachable")
    };
    let outcome = ClusterDriver::new(ClusterDriverConfig {
        nodes: 2,
        plan: NodePlan::mid_run_rebalance(4),
        ..ClusterDriverConfig::default()
    })
    .run_with(&trace, spawner);

    assert_eq!(
        outcome.config_digest, single.config_digest,
        "two real server processes must serve byte-identically to one engine"
    );
    assert_eq!(outcome.requests, single.requests);
    assert!(
        outcome.cluster.migrations > 0,
        "the mid-run plan must migrate sessions over the wire"
    );
    assert_eq!(
        outcome.cluster.warm_capital_preserved, outcome.cluster.migrations,
        "exports carry their warm factors through the codec"
    );
    // Both nodes actually served (the ring spread the keys).
    assert_eq!(outcome.per_node.len(), 2);
    let served: Vec<u64> = outcome
        .per_node
        .iter()
        .map(|n| n.engine.sessions_created + n.engine.sessions_imported)
        .collect();
    assert!(
        served.iter().all(|&s| s > 0),
        "both remote nodes must host sessions: {served:?}"
    );

    for server in servers {
        NetClient::connect(server.local_addr())
            .expect("connects")
            .shutdown_server()
            .expect("shuts down");
        server.join();
    }
}

#[test]
fn closed_loop_and_warmup_survive_the_wire() {
    let trace = smoke_trace();
    let config = |mode, warmup| DriverConfig {
        mode,
        warmup_ticks: warmup,
        engine: EngineConfig {
            workers: 2,
            shards: 2,
            auto_flush_pending: 0,
            ..EngineConfig::default()
        },
    };
    let closed_local = LoadDriver::new(config(DriveMode::ClosedLoop, 0)).run(&trace);

    let server = NetServer::bind("127.0.0.1:0", server_engine()).expect("binds");
    let mut client = NetClient::connect(server.local_addr()).expect("connects");
    let closed_remote =
        LoadDriver::new(config(DriveMode::ClosedLoop, 0)).run_on(&mut client, &trace);
    assert_eq!(closed_local.config_digest, closed_remote.config_digest);

    // Warmup resets the remote counters over the wire but never the digest.
    let warmed = LoadDriver::new(config(DriveMode::OpenLoop, 2)).run_on(&mut client, &trace);
    let full = driver().run(&trace);
    assert_eq!(warmed.config_digest, full.config_digest);
    assert!(warmed.requests < full.requests);

    client.shutdown_server().expect("shuts down");
    server.join();
}
