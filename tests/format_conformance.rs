//! Format conformance: the example blobs checked into `docs/FORMATS.md`
//! must parse with the real parsers and match the real emitters.
//!
//! Three contracts:
//!
//! * the `svgic-trace v1` blob parses and **re-renders byte-identically**
//!   (the trace format's canonical-text property);
//! * the two report blobs parse with the workspace's own JSON parser,
//!   carry the right schema tags, and expose **exactly** the key structure
//!   a freshly generated report exposes today — so adding, renaming or
//!   dropping a report key without updating the spec fails CI;
//! * the wire-frame hex decodes to the documented frame and re-encodes to
//!   the same bytes.
//!
//! Regenerate the blobs with `cargo run --release --example format_blobs`.

use std::io::Cursor;

use svgic::engine::prelude::*;
use svgic::net::frame::{read_frame, write_frame};
use svgic::net::FrameKind;
use svgic::workload::json::Json;
use svgic::workload::prelude::*;
use svgic::workload::DriverConfig;

fn spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FORMATS.md");
    std::fs::read_to_string(path).expect("docs/FORMATS.md exists (it is part of the spec)")
}

/// Extracts the fenced code block that immediately follows
/// `<!-- conformance:<name> -->`.
fn blob(name: &str) -> String {
    let spec = spec();
    let marker = format!("<!-- conformance:{name} -->");
    let at = spec
        .find(&marker)
        .unwrap_or_else(|| panic!("spec lost its `{marker}` marker"));
    let rest = &spec[at + marker.len()..];
    let fence_start = rest.find("```").expect("marker is followed by a fence");
    let after_fence = &rest[fence_start..];
    let body_start = after_fence.find('\n').expect("fence line ends") + 1;
    let body = &after_fence[body_start..];
    let end = body.find("```").expect("fence closes");
    body[..end].to_string()
}

/// The pinned configuration the spec's report blobs were generated with
/// (mirrored in `examples/format_blobs.rs`).
fn pinned_engine() -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

fn pinned_trace() -> Trace {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 2;
    generate(&scenario, 3)
}

#[test]
fn trace_blob_parses_and_rerenders_byte_identically() {
    let blob = blob("trace");
    let trace: Trace = blob.parse().expect("the spec's trace example parses");
    assert_eq!(
        trace.render(),
        blob,
        "the trace format is canonical: parse → render must reproduce the spec blob"
    );
    assert_eq!(trace.scenario, "steady-mall");
    assert_eq!(trace.session_count(), 1);
    // The templates are buildable — the blob is a *runnable* example.
    for template in &trace.templates {
        let instance = template.build();
        assert_eq!(instance.num_users(), template.users);
        assert_eq!(instance.num_items(), template.items);
    }
}

#[test]
fn loadgen_report_blob_matches_the_emitter_structurally() {
    let value = Json::parse(&blob("loadgen-report")).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Json::as_str),
        Some("svgic-loadgen-report/v1")
    );

    let outcome = LoadDriver::new(DriverConfig {
        engine: pinned_engine(),
        ..DriverConfig::default()
    })
    .run(&pinned_trace());
    let fresh =
        Json::parse(&LoadReport::new(&pinned_trace(), outcome).to_json()).expect("emitter output");

    assert_eq!(
        value.key_paths(),
        fresh.key_paths(),
        "docs/FORMATS.md's loadgen-report example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
}

#[test]
fn cluster_report_blob_matches_the_emitter_structurally() {
    let value = Json::parse(&blob("cluster-report")).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Json::as_str),
        Some("svgic-cluster-report/v1")
    );

    let outcome = ClusterDriver::new(ClusterDriverConfig {
        nodes: 2,
        engine: pinned_engine(),
        plan: NodePlan::mid_run_rebalance(2),
        ..ClusterDriverConfig::default()
    })
    .run(&pinned_trace());
    let fresh = Json::parse(&ClusterReport::new(&pinned_trace(), outcome).to_json())
        .expect("emitter output");

    assert_eq!(
        value.key_paths(),
        fresh.key_paths(),
        "docs/FORMATS.md's cluster-report example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    // Both reports in the spec describe the same trace: the digest is
    // topology-invariant right there in the documentation.
    let single = Json::parse(&blob("loadgen-report")).expect("parses");
    assert_eq!(
        single.get("config_digest").and_then(Json::as_str),
        value.get("config_digest").and_then(Json::as_str),
        "the spec's two example reports must exhibit the digest invariant"
    );
}

#[test]
fn frame_hex_decodes_to_the_documented_frame() {
    let hex = blob("frame-hex");
    let bytes: Vec<u8> = hex
        .split_whitespace()
        .map(|tok| u8::from_str_radix(tok, 16).expect("spec hex is valid"))
        .collect();
    let frame = read_frame(&mut Cursor::new(&bytes)).expect("spec frame decodes");
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 1);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    match request {
        EngineRequest::QueryConfiguration(session) => assert_eq!(session, SessionId(7)),
        other => panic!("spec frame documents QueryConfiguration(7), decodes {other:?}"),
    }
    // Canonical the whole way down: re-encoding reproduces the spec bytes.
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}
