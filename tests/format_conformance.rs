//! Format conformance: the example blobs checked into `docs/FORMATS.md`
//! must parse with the real parsers and match the real emitters.
//!
//! Three contracts:
//!
//! * the `svgic-trace v1` blob parses and **re-renders byte-identically**
//!   (the trace format's canonical-text property);
//! * the two report blobs parse with the workspace's own JSON parser,
//!   carry the right schema tags, and expose **exactly** the key structure
//!   a freshly generated report exposes today — so adding, renaming or
//!   dropping a report key without updating the spec fails CI;
//! * the wire-frame hexes decode to the documented frames and re-encode to
//!   the same bytes;
//! * the Chrome trace-event and counter-event blobs re-render
//!   **byte-identically** from their pinned span list and telemetry ring
//!   and parse as the documented structure.
//!
//! Regenerate the blobs with `cargo run --release --example format_blobs`.

use std::io::Cursor;

use svgic::engine::prelude::*;
use svgic::net::frame::{read_frame, write_frame};
use svgic::net::FrameKind;
use svgic::obs::{
    chrome_trace_json, chrome_trace_json_with_counters, Phase, SpanRecord, TelemetrySample,
};
use svgic::workload::json::Json;
use svgic::workload::prelude::*;
use svgic::workload::DriverConfig;

fn spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FORMATS.md");
    std::fs::read_to_string(path).expect("docs/FORMATS.md exists (it is part of the spec)")
}

/// Extracts the fenced code block that immediately follows
/// `<!-- conformance:<name> -->`.
fn blob(name: &str) -> String {
    let spec = spec();
    let marker = format!("<!-- conformance:{name} -->");
    let at = spec
        .find(&marker)
        .unwrap_or_else(|| panic!("spec lost its `{marker}` marker"));
    let rest = &spec[at + marker.len()..];
    let fence_start = rest.find("```").expect("marker is followed by a fence");
    let after_fence = &rest[fence_start..];
    let body_start = after_fence.find('\n').expect("fence line ends") + 1;
    let body = &after_fence[body_start..];
    let end = body.find("```").expect("fence closes");
    body[..end].to_string()
}

/// The pinned configuration the spec's report blobs were generated with
/// (mirrored in `examples/format_blobs.rs`).
fn pinned_engine() -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

fn pinned_trace() -> Trace {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 2;
    generate(&scenario, 3)
}

/// The documented member keys of one `time_series` sample (§2.5).
/// `Json::key_paths` does not descend into arrays, so the report tests
/// assert the sample shape explicitly here.
const SAMPLE_KEYS: [&str; 11] = [
    "tick",
    "requests",
    "solves",
    "queue_depth",
    "warm_rate_ppm",
    "imbalance_ppm",
    "mem_session_bytes",
    "mem_pending_bytes",
    "mem_served_bytes",
    "mem_cache_bytes",
    "mem_total_bytes",
];

/// Asserts a report-level `time_series` value is a non-empty array whose
/// members each carry exactly the documented sample keys, with a
/// monotonically increasing tick axis.
fn assert_time_series_shape(report: &Json, context: &str) {
    let series = match report.get("time_series") {
        Some(Json::Array(samples)) => samples,
        other => panic!("{context}: time_series must be an array, got {other:?}"),
    };
    assert!(
        !series.is_empty(),
        "{context}: a 2-tick run must push telemetry samples"
    );
    let mut last_tick = None;
    for sample in series {
        for key in SAMPLE_KEYS {
            assert!(
                sample.get(key).and_then(Json::as_f64).is_some(),
                "{context}: time_series sample lost its `{key}` member"
            );
        }
        let tick = sample.get("tick").and_then(Json::as_f64).expect("tick");
        assert!(
            last_tick.is_none_or(|last| tick > last),
            "{context}: time_series ticks must be strictly increasing"
        );
        last_tick = Some(tick);
    }
}

/// The documented member keys of one `profile.templates` entry (§2.9).
/// Like `time_series`, the array members are asserted explicitly because
/// `Json::key_paths` does not descend into arrays.
const TEMPLATE_KEYS: [&str; 7] = [
    "warm_solves",
    "cold_solves",
    "warm_nanos",
    "cold_nanos",
    "miss_new",
    "miss_evicted",
    "miss_component_changed",
];

/// Asserts a report-level `profile` value carries the documented ledger
/// shape: a `dropped` counter and a non-empty `templates` array whose
/// members each carry a hex-string fingerprint plus the seven counters.
fn assert_profile_shape(report: &Json, context: &str) {
    let profile = report
        .get("profile")
        .unwrap_or_else(|| panic!("{context}: report lost its `profile` object"));
    assert!(
        profile.get("dropped").and_then(Json::as_f64).is_some(),
        "{context}: profile must carry the `dropped` counter"
    );
    let templates = match profile.get("templates") {
        Some(Json::Array(templates)) => templates,
        other => panic!("{context}: profile.templates must be an array, got {other:?}"),
    };
    assert!(
        !templates.is_empty(),
        "{context}: a solving run must attribute at least one template"
    );
    for entry in templates {
        let fingerprint = entry
            .get("template_fingerprint")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{context}: template entry lost its fingerprint string"));
        assert!(
            fingerprint.starts_with("0x") && fingerprint.len() == 18,
            "{context}: fingerprints are 0x-prefixed 16-hex-digit strings, got `{fingerprint}`"
        );
        for key in TEMPLATE_KEYS {
            assert!(
                entry.get(key).and_then(Json::as_f64).is_some(),
                "{context}: template entry lost its `{key}` member"
            );
        }
    }
}

#[test]
fn trace_blob_parses_and_rerenders_byte_identically() {
    let blob = blob("trace");
    let trace: Trace = blob.parse().expect("the spec's trace example parses");
    assert_eq!(
        trace.render(),
        blob,
        "the trace format is canonical: parse → render must reproduce the spec blob"
    );
    assert_eq!(trace.scenario, "steady-mall");
    assert_eq!(trace.session_count(), 1);
    // The templates are buildable — the blob is a *runnable* example.
    for template in &trace.templates {
        let instance = template.build();
        assert_eq!(instance.num_users(), template.users);
        assert_eq!(instance.num_items(), template.items);
    }
}

#[test]
fn loadgen_report_blob_matches_the_emitter_structurally() {
    let value = Json::parse(&blob("loadgen-report")).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Json::as_str),
        Some("svgic-loadgen-report/v1")
    );

    let outcome = LoadDriver::new(DriverConfig {
        engine: pinned_engine(),
        ..DriverConfig::default()
    })
    .run(&pinned_trace());
    let fresh =
        Json::parse(&LoadReport::new(&pinned_trace(), outcome).to_json()).expect("emitter output");

    assert_eq!(
        value.key_paths(),
        fresh.key_paths(),
        "docs/FORMATS.md's loadgen-report example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    assert_time_series_shape(&value, "spec loadgen-report");
    assert_time_series_shape(&fresh, "fresh loadgen-report");
    assert_profile_shape(&value, "spec loadgen-report");
    assert_profile_shape(&fresh, "fresh loadgen-report");
}

#[test]
fn cluster_report_blob_matches_the_emitter_structurally() {
    let value = Json::parse(&blob("cluster-report")).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Json::as_str),
        Some("svgic-cluster-report/v1")
    );

    let outcome = ClusterDriver::new(ClusterDriverConfig {
        nodes: 2,
        engine: pinned_engine(),
        plan: NodePlan::mid_run_rebalance(2),
        ..ClusterDriverConfig::default()
    })
    .run(&pinned_trace());
    let fresh = Json::parse(&ClusterReport::new(&pinned_trace(), outcome).to_json())
        .expect("emitter output");

    assert_eq!(
        value.key_paths(),
        fresh.key_paths(),
        "docs/FORMATS.md's cluster-report example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    // The cluster schema carries the ring per node, not at the top level —
    // tick clocks are per-node, so a merged ring would be meaningless.
    assert!(value.get("time_series").is_none());
    // The ledger, by contrast, merges cleanly (counters keyed by structural
    // fingerprint add), so the cluster report carries one merged `profile`.
    assert_profile_shape(&value, "spec cluster-report");
    assert_profile_shape(&fresh, "fresh cluster-report");
    // Each surviving node carries its own ring and health verdict (§2.7).
    let per_node = value.get("per_node").expect("per_node object");
    let node0 = per_node.get("node0").expect("node0 survives the plan");
    assert_time_series_shape(node0, "spec cluster-report per_node.node0");
    assert!(
        node0.get("health").and_then(Json::as_str).is_some(),
        "per_node entries must carry the health verdict"
    );
    assert!(
        node0.get("mem_bytes").and_then(Json::as_f64).is_some(),
        "per_node entries must carry the mem_bytes gauge"
    );
    // Both reports in the spec describe the same trace: the digest is
    // topology-invariant right there in the documentation.
    let single = Json::parse(&blob("loadgen-report")).expect("parses");
    assert_eq!(
        single.get("config_digest").and_then(Json::as_str),
        value.get("config_digest").and_then(Json::as_str),
        "the spec's two example reports must exhibit the digest invariant"
    );
}

fn frame_from_hex(hex: &str) -> (svgic::net::Frame, Vec<u8>) {
    let bytes: Vec<u8> = hex
        .split_whitespace()
        .map(|tok| u8::from_str_radix(tok, 16).expect("spec hex is valid"))
        .collect();
    let frame = read_frame(&mut Cursor::new(&bytes)).expect("spec frame decodes");
    (frame, bytes)
}

#[test]
fn frame_hex_decodes_to_the_documented_frame() {
    let (frame, bytes) = frame_from_hex(&blob("frame-hex"));
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 1);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    match request {
        EngineRequest::QueryConfiguration(session) => assert_eq!(session, SessionId(7)),
        other => panic!("spec frame documents QueryConfiguration(7), decodes {other:?}"),
    }
    // Canonical the whole way down: re-encoding reproduces the spec bytes.
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}

#[test]
fn metrics_frame_hex_decodes_to_a_query_metrics_request() {
    let (frame, bytes) = frame_from_hex(&blob("metrics-frame-hex"));
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 2);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    assert!(
        matches!(request, EngineRequest::QueryMetrics),
        "spec frame documents QueryMetrics, decodes {request:?}"
    );
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}

#[test]
fn telemetry_frame_hex_decodes_to_a_query_telemetry_request() {
    let (frame, bytes) = frame_from_hex(&blob("telemetry-frame-hex"));
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 3);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    assert!(
        matches!(request, EngineRequest::QueryTelemetry),
        "spec frame documents QueryTelemetry, decodes {request:?}"
    );
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}

#[test]
fn profile_frame_hex_decodes_to_a_query_profile_request() {
    let (frame, bytes) = frame_from_hex(&blob("profile-frame-hex"));
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 4);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    assert!(
        matches!(request, EngineRequest::QueryProfile),
        "spec frame documents QueryProfile, decodes {request:?}"
    );
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}

/// The pinned span list behind the spec's trace-event example (mirrored in
/// `examples/format_blobs.rs`).
fn pinned_spans() -> Vec<SpanRecord> {
    vec![
        SpanRecord {
            request_id: 1,
            session: 7,
            phase: Phase::Serve,
            shard: SpanRecord::NO_SHARD,
            node: 0,
            start_nanos: 500,
            duration_nanos: 42_000,
        },
        SpanRecord {
            request_id: 0,
            session: 7,
            phase: Phase::LpWarm,
            shard: 1,
            node: 0,
            start_nanos: 1_000,
            duration_nanos: 30_500,
        },
        SpanRecord {
            request_id: 2,
            session: 9,
            phase: Phase::WireDecode,
            shard: SpanRecord::NO_SHARD,
            node: 1,
            start_nanos: 2_250,
            duration_nanos: 1_250,
        },
    ]
}

#[test]
fn trace_events_blob_rerenders_byte_identically_and_has_the_documented_shape() {
    let blob = blob("trace-events");
    // The emitter is deterministic over a fixed span list, so the spec blob
    // is byte-exact, not just structurally equal.
    assert_eq!(
        chrome_trace_json(&pinned_spans()),
        blob.trim_end(),
        "docs/FORMATS.md's trace-event example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    // And it is what the spec says it is: valid JSON with the documented
    // keys, lane mapping and correlation args.
    let value = Json::parse(blob.trim_end()).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = match value.get("traceEvents") {
        Some(Json::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(events.len(), pinned_spans().len());
    for (event, span) in events.iter().zip(pinned_spans()) {
        assert_eq!(
            event.get("name").and_then(Json::as_str),
            Some(span.phase.name())
        );
        assert_eq!(event.get("cat").and_then(Json::as_str), Some("svgic"));
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(
            event.get("pid").and_then(Json::as_f64),
            Some(span.node as f64)
        );
        let lane = if span.shard == SpanRecord::NO_SHARD {
            0.0
        } else {
            span.shard as f64 + 1.0
        };
        assert_eq!(event.get("tid").and_then(Json::as_f64), Some(lane));
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_f64),
            Some(span.request_id as f64)
        );
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get("session"))
                .and_then(Json::as_f64),
            Some(span.session as f64)
        );
    }
}

/// The pinned telemetry ring behind the spec's counter-event example
/// (mirrored in `examples/format_blobs.rs`).
fn pinned_samples() -> Vec<TelemetrySample> {
    vec![
        TelemetrySample {
            tick: 0,
            requests: 12,
            solves: 3,
            queue_depth: 4,
            warm_rate_ppm: 0,
            imbalance_ppm: 1_000_000,
            mem_session_bytes: 48_000,
            mem_pending_bytes: 640,
            mem_served_bytes: 1_280,
            mem_cache_bytes: 9_600,
            mem_total_bytes: 59_520,
        },
        TelemetrySample {
            tick: 1,
            requests: 25,
            solves: 7,
            queue_depth: 0,
            warm_rate_ppm: 571_428,
            imbalance_ppm: 1_142_857,
            mem_session_bytes: 48_000,
            mem_pending_bytes: 0,
            mem_served_bytes: 1_280,
            mem_cache_bytes: 12_800,
            mem_total_bytes: 62_080,
        },
    ]
}

#[test]
fn counter_events_blob_rerenders_byte_identically_and_has_the_documented_shape() {
    let blob = blob("counter-events");
    assert_eq!(
        chrome_trace_json_with_counters(&pinned_spans(), &pinned_samples(), 0),
        blob.trim_end(),
        "docs/FORMATS.md's counter-event example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    let value = Json::parse(blob.trim_end()).expect("spec blob is valid JSON");
    let events = match value.get("traceEvents") {
        Some(Json::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    // Spans first, then three counter tracks per ring sample.
    let spans = pinned_spans().len();
    let samples = pinned_samples();
    assert_eq!(events.len(), spans + 3 * samples.len());
    let counters = &events[spans..];
    for (trio, sample) in counters.chunks(3).zip(&samples) {
        let tracks: [(&str, &[(&str, u64)]); 3] = [
            (
                "mem_bytes",
                &[
                    ("session", sample.mem_session_bytes),
                    ("pending", sample.mem_pending_bytes),
                    ("served", sample.mem_served_bytes),
                    ("cache", sample.mem_cache_bytes),
                ],
            ),
            (
                "load",
                &[
                    ("requests", sample.requests),
                    ("solves", sample.solves),
                    ("queue_depth", sample.queue_depth),
                ],
            ),
            (
                "rates",
                &[
                    ("warm_ppm", sample.warm_rate_ppm),
                    ("imbalance_ppm", sample.imbalance_ppm),
                ],
            ),
        ];
        for (event, (name, args)) in trio.iter().zip(tracks) {
            assert_eq!(event.get("name").and_then(Json::as_str), Some(name));
            assert_eq!(event.get("cat").and_then(Json::as_str), Some("svgic"));
            assert_eq!(event.get("ph").and_then(Json::as_str), Some("C"));
            // The counter axis is the deterministic tick clock: one tick
            // renders as one millisecond.
            assert_eq!(
                event.get("ts").and_then(Json::as_f64),
                Some(sample.tick as f64 * 1000.0)
            );
            assert_eq!(event.get("pid").and_then(Json::as_f64), Some(0.0));
            for (key, expected) in args {
                assert_eq!(
                    event
                        .get("args")
                        .and_then(|a| a.get(key))
                        .and_then(Json::as_f64),
                    Some(*expected as f64),
                    "counter `{name}` lost its `{key}` arg"
                );
            }
        }
    }
}
