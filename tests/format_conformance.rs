//! Format conformance: the example blobs checked into `docs/FORMATS.md`
//! must parse with the real parsers and match the real emitters.
//!
//! Three contracts:
//!
//! * the `svgic-trace v1` blob parses and **re-renders byte-identically**
//!   (the trace format's canonical-text property);
//! * the two report blobs parse with the workspace's own JSON parser,
//!   carry the right schema tags, and expose **exactly** the key structure
//!   a freshly generated report exposes today — so adding, renaming or
//!   dropping a report key without updating the spec fails CI;
//! * the wire-frame hexes decode to the documented frames and re-encode to
//!   the same bytes;
//! * the Chrome trace-event blob re-renders **byte-identically** from its
//!   pinned span list and parses as the documented structure.
//!
//! Regenerate the blobs with `cargo run --release --example format_blobs`.

use std::io::Cursor;

use svgic::engine::prelude::*;
use svgic::net::frame::{read_frame, write_frame};
use svgic::net::FrameKind;
use svgic::obs::{chrome_trace_json, Phase, SpanRecord};
use svgic::workload::json::Json;
use svgic::workload::prelude::*;
use svgic::workload::DriverConfig;

fn spec() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/FORMATS.md");
    std::fs::read_to_string(path).expect("docs/FORMATS.md exists (it is part of the spec)")
}

/// Extracts the fenced code block that immediately follows
/// `<!-- conformance:<name> -->`.
fn blob(name: &str) -> String {
    let spec = spec();
    let marker = format!("<!-- conformance:{name} -->");
    let at = spec
        .find(&marker)
        .unwrap_or_else(|| panic!("spec lost its `{marker}` marker"));
    let rest = &spec[at + marker.len()..];
    let fence_start = rest.find("```").expect("marker is followed by a fence");
    let after_fence = &rest[fence_start..];
    let body_start = after_fence.find('\n').expect("fence line ends") + 1;
    let body = &after_fence[body_start..];
    let end = body.find("```").expect("fence closes");
    body[..end].to_string()
}

/// The pinned configuration the spec's report blobs were generated with
/// (mirrored in `examples/format_blobs.rs`).
fn pinned_engine() -> EngineConfig {
    EngineConfig {
        workers: 2,
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

fn pinned_trace() -> Trace {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 2;
    generate(&scenario, 3)
}

#[test]
fn trace_blob_parses_and_rerenders_byte_identically() {
    let blob = blob("trace");
    let trace: Trace = blob.parse().expect("the spec's trace example parses");
    assert_eq!(
        trace.render(),
        blob,
        "the trace format is canonical: parse → render must reproduce the spec blob"
    );
    assert_eq!(trace.scenario, "steady-mall");
    assert_eq!(trace.session_count(), 1);
    // The templates are buildable — the blob is a *runnable* example.
    for template in &trace.templates {
        let instance = template.build();
        assert_eq!(instance.num_users(), template.users);
        assert_eq!(instance.num_items(), template.items);
    }
}

#[test]
fn loadgen_report_blob_matches_the_emitter_structurally() {
    let value = Json::parse(&blob("loadgen-report")).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Json::as_str),
        Some("svgic-loadgen-report/v1")
    );

    let outcome = LoadDriver::new(DriverConfig {
        engine: pinned_engine(),
        ..DriverConfig::default()
    })
    .run(&pinned_trace());
    let fresh =
        Json::parse(&LoadReport::new(&pinned_trace(), outcome).to_json()).expect("emitter output");

    assert_eq!(
        value.key_paths(),
        fresh.key_paths(),
        "docs/FORMATS.md's loadgen-report example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
}

#[test]
fn cluster_report_blob_matches_the_emitter_structurally() {
    let value = Json::parse(&blob("cluster-report")).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("schema").and_then(Json::as_str),
        Some("svgic-cluster-report/v1")
    );

    let outcome = ClusterDriver::new(ClusterDriverConfig {
        nodes: 2,
        engine: pinned_engine(),
        plan: NodePlan::mid_run_rebalance(2),
        ..ClusterDriverConfig::default()
    })
    .run(&pinned_trace());
    let fresh = Json::parse(&ClusterReport::new(&pinned_trace(), outcome).to_json())
        .expect("emitter output");

    assert_eq!(
        value.key_paths(),
        fresh.key_paths(),
        "docs/FORMATS.md's cluster-report example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    // Both reports in the spec describe the same trace: the digest is
    // topology-invariant right there in the documentation.
    let single = Json::parse(&blob("loadgen-report")).expect("parses");
    assert_eq!(
        single.get("config_digest").and_then(Json::as_str),
        value.get("config_digest").and_then(Json::as_str),
        "the spec's two example reports must exhibit the digest invariant"
    );
}

fn frame_from_hex(hex: &str) -> (svgic::net::Frame, Vec<u8>) {
    let bytes: Vec<u8> = hex
        .split_whitespace()
        .map(|tok| u8::from_str_radix(tok, 16).expect("spec hex is valid"))
        .collect();
    let frame = read_frame(&mut Cursor::new(&bytes)).expect("spec frame decodes");
    (frame, bytes)
}

#[test]
fn frame_hex_decodes_to_the_documented_frame() {
    let (frame, bytes) = frame_from_hex(&blob("frame-hex"));
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 1);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    match request {
        EngineRequest::QueryConfiguration(session) => assert_eq!(session, SessionId(7)),
        other => panic!("spec frame documents QueryConfiguration(7), decodes {other:?}"),
    }
    // Canonical the whole way down: re-encoding reproduces the spec bytes.
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}

#[test]
fn metrics_frame_hex_decodes_to_a_query_metrics_request() {
    let (frame, bytes) = frame_from_hex(&blob("metrics-frame-hex"));
    assert_eq!(frame.kind, FrameKind::Request);
    assert_eq!(frame.request_id, 2);
    let request =
        svgic::engine::codec::decode_request(&frame.payload).expect("spec payload decodes");
    assert!(
        matches!(request, EngineRequest::QueryMetrics),
        "spec frame documents QueryMetrics, decodes {request:?}"
    );
    let mut reencoded = Vec::new();
    write_frame(&mut reencoded, &frame).expect("in-memory write");
    assert_eq!(reencoded, bytes);
}

/// The pinned span list behind the spec's trace-event example (mirrored in
/// `examples/format_blobs.rs`).
fn pinned_spans() -> Vec<SpanRecord> {
    vec![
        SpanRecord {
            request_id: 1,
            session: 7,
            phase: Phase::Serve,
            shard: SpanRecord::NO_SHARD,
            node: 0,
            start_nanos: 500,
            duration_nanos: 42_000,
        },
        SpanRecord {
            request_id: 0,
            session: 7,
            phase: Phase::LpWarm,
            shard: 1,
            node: 0,
            start_nanos: 1_000,
            duration_nanos: 30_500,
        },
        SpanRecord {
            request_id: 2,
            session: 9,
            phase: Phase::WireDecode,
            shard: SpanRecord::NO_SHARD,
            node: 1,
            start_nanos: 2_250,
            duration_nanos: 1_250,
        },
    ]
}

#[test]
fn trace_events_blob_rerenders_byte_identically_and_has_the_documented_shape() {
    let blob = blob("trace-events");
    // The emitter is deterministic over a fixed span list, so the spec blob
    // is byte-exact, not just structurally equal.
    assert_eq!(
        chrome_trace_json(&pinned_spans()),
        blob.trim_end(),
        "docs/FORMATS.md's trace-event example drifted from the emitter — \
         regenerate with `cargo run --release --example format_blobs`"
    );
    // And it is what the spec says it is: valid JSON with the documented
    // keys, lane mapping and correlation args.
    let value = Json::parse(blob.trim_end()).expect("spec blob is valid JSON");
    assert_eq!(
        value.get("displayTimeUnit").and_then(Json::as_str),
        Some("ms")
    );
    let events = match value.get("traceEvents") {
        Some(Json::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(events.len(), pinned_spans().len());
    for (event, span) in events.iter().zip(pinned_spans()) {
        assert_eq!(
            event.get("name").and_then(Json::as_str),
            Some(span.phase.name())
        );
        assert_eq!(event.get("cat").and_then(Json::as_str), Some("svgic"));
        assert_eq!(event.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(
            event.get("pid").and_then(Json::as_f64),
            Some(span.node as f64)
        );
        let lane = if span.shard == SpanRecord::NO_SHARD {
            0.0
        } else {
            span.shard as f64 + 1.0
        };
        assert_eq!(event.get("tid").and_then(Json::as_f64), Some(lane));
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_f64),
            Some(span.request_id as f64)
        );
        assert_eq!(
            event
                .get("args")
                .and_then(|a| a.get("session"))
                .and_then(Json::as_f64),
            Some(span.session as f64)
        );
    }
}
