//! Integration test: drives the full `svgic-engine` serving subsystem
//! end-to-end under a fixed seed — session lifecycle, batched event
//! coalescing, the incremental-vs-full re-solve policy, factor caching across
//! sessions, catalogue churn, λ re-tuning — and checks that everything the
//! engine serves is a valid SAVG k-configuration and that the whole run is
//! reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svgic::core::extensions::DynamicEvent;
use svgic::prelude::*;

const SEED: u64 = 0xD15C_0DE5;

fn template(seed: u64) -> SvgicInstance {
    InstanceSpec {
        num_users: 7,
        num_items: 12,
        num_slots: 3,
        ..InstanceSpec::small(DatasetProfile::TimikLike)
    }
    .build(&mut StdRng::seed_from_u64(seed))
}

/// What one session served at the end of a run: `(present, flattened
/// configuration, utility)`.
type ServedOutcome = (Vec<usize>, Vec<usize>, f64);

/// Runs a deterministic scripted day and returns everything an identical
/// re-run must reproduce bit-for-bit.
fn scripted_run() -> (Vec<ServedOutcome>, u64, u64, u64) {
    let mut engine = Engine::new(EngineConfig {
        workers: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    });
    let shared = template(SEED);
    let mut rng = StdRng::seed_from_u64(SEED);

    // Three sessions share a template (exercising cross-session factor
    // reuse), one is distinct.
    let mut ids: Vec<SessionId> = (0..3)
        .map(|index| {
            engine
                .create_session(CreateSession {
                    instance: shared.clone(),
                    initial_present: Vec::new(),
                    seed: SEED ^ index,
                })
                .expect("create")
                .session
        })
        .collect();
    ids.push(
        engine
            .create_session(CreateSession {
                instance: template(SEED ^ 0xFF),
                initial_present: vec![0, 1, 2, 3],
                seed: SEED ^ 0xFF,
            })
            .expect("create")
            .session,
    );

    for round in 0..12 {
        for (pos, &id) in ids.iter().enumerate() {
            for _ in 0..3 {
                let user = rng.gen_range(0..7);
                let event = if rng.gen::<f64>() < 0.5 {
                    SessionEvent::Membership(DynamicEvent::Join(user))
                } else {
                    SessionEvent::Membership(DynamicEvent::Leave(user))
                };
                engine.submit_event(id, event).expect("valid event");
            }
            if round == 4 && pos % 2 == 0 {
                engine
                    .submit_event(id, SessionEvent::SetCatalog((0..8).collect()))
                    .expect("valid catalogue");
            }
            if round == 8 {
                engine
                    .submit_event(id, SessionEvent::RetuneLambda(0.7))
                    .expect("valid lambda");
            }
        }
        engine.flush();
        if round == 6 {
            // Mid-day hard refresh on one session.
            engine.force_resolve(ids[1]).expect("force resolve");
        }
        for &id in &ids {
            let view = engine.query_configuration(id).expect("live");
            assert!(
                view.configuration.is_valid(view.catalog.len()),
                "engine served an invalid configuration in round {round}"
            );
            assert!(view.utility.is_finite() && view.utility >= 0.0);
            assert!(view.staleness == 0, "flush must drain the queue");
        }
    }

    let outcome: Vec<(Vec<usize>, Vec<usize>, f64)> = ids
        .iter()
        .map(|&id| {
            let view = engine.query_configuration(id).expect("live");
            let flat: Vec<usize> = (0..view.configuration.num_users())
                .flat_map(|user| view.configuration.items_of(user).to_vec())
                .collect();
            (view.present.clone(), flat, view.utility)
        })
        .collect();
    let stats = engine.stats();
    (
        outcome,
        stats.cache_hits,
        stats.cache_misses,
        stats.solves(),
    )
}

#[test]
fn scripted_day_is_deterministic_and_valid() {
    let (outcome_a, hits_a, misses_a, solves_a) = scripted_run();
    let (outcome_b, hits_b, misses_b, solves_b) = scripted_run();
    assert_eq!(outcome_a, outcome_b, "served configurations must reproduce");
    assert_eq!(hits_a, hits_b, "cache accounting must reproduce");
    assert_eq!(misses_a, misses_b);
    assert_eq!(solves_a, solves_b);
    assert!(
        hits_a > 0,
        "shared templates must produce factor-cache hits"
    );
}

#[test]
fn batching_beats_per_event_solving_on_solve_count() {
    let shared = template(SEED ^ 7);
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    });
    let id = engine
        .create_session(CreateSession {
            instance: shared,
            initial_present: Vec::new(),
            seed: 3,
        })
        .expect("create")
        .session;
    // 30 events that mostly cancel; one flush.
    for _ in 0..15 {
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(2)))
            .unwrap();
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Join(2)))
            .unwrap();
    }
    engine.flush();
    let stats = engine.stats();
    // 30 raw events, zero net change: exactly the one creation solve.
    assert_eq!(stats.solves(), 1, "{stats}");
    assert_eq!(stats.events_coalesced, 30);
}

#[test]
fn policy_escalates_to_full_solves_under_churn() {
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        auto_flush_pending: 0,
        policy: svgic::engine::ResolvePolicy {
            full_resolve_event_budget: 4,
            ..Default::default()
        },
        ..EngineConfig::default()
    });
    let id = engine
        .create_session(CreateSession {
            instance: template(SEED ^ 21),
            initial_present: Vec::new(),
            seed: 5,
        })
        .expect("create")
        .session;
    // Alternate distinct leaves/joins across flushes so each batch nets
    // changes and the event budget fills up.
    let script = [3usize, 4, 5, 3, 4, 5, 2, 6];
    let mut leave = true;
    for user in script {
        let event = if leave {
            SessionEvent::Membership(DynamicEvent::Leave(user))
        } else {
            SessionEvent::Membership(DynamicEvent::Join(user))
        };
        engine.submit_event(id, event).unwrap();
        engine.flush();
        leave = !leave;
    }
    let stats = engine.stats();
    assert!(
        stats.solves_full >= 1,
        "event budget must trigger a full LP re-solve: {stats}"
    );
    assert!(stats.solves_incremental >= 1, "{stats}");
}

#[test]
fn auto_flush_drains_queues() {
    let mut engine = Engine::new(EngineConfig {
        workers: 1,
        auto_flush_pending: 4,
        ..EngineConfig::default()
    });
    let id = engine
        .create_session(CreateSession {
            instance: template(SEED ^ 99),
            initial_present: Vec::new(),
            seed: 11,
        })
        .expect("create")
        .session;
    for user in [1usize, 2, 3, 4] {
        engine
            .submit_event(id, SessionEvent::Membership(DynamicEvent::Leave(user)))
            .unwrap();
    }
    // The fourth submit crossed the threshold and auto-flushed.
    let view = engine.query_configuration(id).unwrap();
    assert_eq!(view.staleness, 0);
    assert_eq!(view.present, vec![0, 5, 6]);
}
