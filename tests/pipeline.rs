//! Cross-crate integration tests: dataset generation → candidate pruning →
//! all solvers → metrics, on every dataset profile.

use rand::rngs::StdRng;
use rand::SeedableRng;
use svgic::prelude::*;

fn build_instance(profile: DatasetProfile, seed: u64) -> SvgicInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    InstanceSpec {
        num_users: 12,
        num_items: 24,
        num_slots: 3,
        ..InstanceSpec::small(profile)
    }
    .build(&mut rng)
}

#[test]
fn full_pipeline_runs_on_every_profile() {
    for (i, profile) in DatasetProfile::all().into_iter().enumerate() {
        let instance = build_instance(profile, 100 + i as u64);
        let (pruned, kept) = instance.prune_items(5, 5);
        assert!(kept.len() >= pruned.num_slots());

        let avg = solve_avg(&pruned, &AvgConfig::default());
        let avg_d = solve_avg_d(&pruned, &AvgDConfig::default());
        let per = solve_per(&pruned);
        let fmg = solve_fmg(&pruned);
        let sdp = solve_sdp(&pruned, &SdpConfig::default());
        let grf = solve_grf(&pruned, &GrfConfig::default());

        for (label, cfg) in [
            ("AVG", &avg.configuration),
            ("AVG-D", &avg_d.configuration),
            ("PER", &per),
            ("FMG", &fmg),
            ("SDP", &sdp),
            ("GRF", &grf),
        ] {
            assert!(
                cfg.is_valid(pruned.num_items()),
                "{profile:?}/{label} invalid"
            );
            let utility = total_utility(&pruned, cfg);
            assert!(utility.is_finite() && utility >= 0.0, "{profile:?}/{label}");
            let metrics = subgroup_metrics(&pruned, cfg);
            assert!((0.0..=1.0).contains(&metrics.co_display_fraction));
            assert!((0.0..=1.0).contains(&metrics.alone_fraction));
            let regrets = regret_ratios(&pruned, cfg);
            assert!(regrets.iter().all(|r| (0.0..=1.0).contains(r)));
        }

        // The paper's headline claim, in relaxed form: AVG or AVG-D matches or
        // beats every baseline on every profile.
        let ours = avg.utility.max(avg_d.utility);
        for (label, cfg) in [("PER", &per), ("FMG", &fmg), ("SDP", &sdp), ("GRF", &grf)] {
            let b = total_utility(&pruned, cfg);
            assert!(
                ours >= b - 1e-9,
                "{profile:?}: best of AVG/AVG-D ({ours}) below {label} ({b})"
            );
        }
        // And both stay below the LP relaxation bound.
        assert!(avg.utility <= avg.relaxation_bound + 1e-6);
        assert!(avg_d.utility <= avg_d.relaxation_bound + 1e-6);
    }
}

#[test]
fn avg_solutions_stay_within_four_times_bound_of_lp() {
    // Theorem 4 / 5 empirical check against the exact LP bound.
    for seed in 0..3 {
        let instance = build_instance(DatasetProfile::TimikLike, 200 + seed);
        let factors_bound = solve_relaxation_with(&instance, LpBackend::ExactSimplex)
            .utility_upper_bound(&instance);
        let avg = solve_avg(
            &instance,
            &AvgConfig::with_backend(LpBackend::ExactSimplex, seed),
        );
        let avg_d = solve_avg_d(&instance, &AvgDConfig::default());
        assert!(
            avg.utility >= factors_bound / 4.0 - 1e-9,
            "seed {seed}: AVG {} below bound/4 = {}",
            avg.utility,
            factors_bound / 4.0
        );
        assert!(
            avg_d.utility >= factors_bound / 4.0 - 1e-9,
            "seed {seed}: AVG-D {} below bound/4 = {}",
            avg_d.utility,
            factors_bound / 4.0
        );
    }
}

#[test]
fn svgic_st_pipeline_respects_caps_across_profiles() {
    for profile in DatasetProfile::all() {
        let instance = build_instance(profile, 300);
        for cap in [2usize, 4] {
            let st = StParams::new(0.5, cap);
            let avg = solve_avg_st(&instance, &st, &AvgConfig::default());
            assert!(st.is_feasible(&avg.configuration), "{profile:?} cap {cap}");
            assert!(avg.configuration.is_valid(instance.num_items()));
            let st_value = total_utility_st(&instance, &st, &avg.configuration);
            assert!((st_value - avg.utility).abs() < 1e-9);
        }
    }
}

#[test]
fn exact_solver_dominates_heuristics_on_tiny_instances() {
    let instance = build_instance(DatasetProfile::EpinionsLike, 400)
        .restrict_users(&[0, 1, 2, 3, 4])
        .restrict_items(&[0, 1, 2, 3, 4, 5])
        .with_slots(2)
        .unwrap();
    let exact = solve_exact(
        &instance,
        &ExactConfig {
            strategy: ExactStrategy::IpDual,
            max_nodes: 10_000,
            ..Default::default()
        },
    );
    let avg = solve_avg(&instance, &AvgConfig::default());
    let per = solve_per(&instance);
    assert!(exact.utility + 1e-6 >= avg.utility);
    assert!(exact.utility + 1e-6 >= total_utility(&instance, &per));
    // The approximation quality the paper reports for AVG (≥ 93% of IP) holds
    // loosely even on these tiny synthetic instances.
    assert!(
        avg.utility >= 0.6 * exact.utility,
        "AVG {} vs exact {}",
        avg.utility,
        exact.utility
    );
}

#[test]
fn lambda_scaling_is_consistent_across_the_stack() {
    // §4.4: an instance with λ ≠ ½ is equivalent to a scaled λ = ½ instance;
    // verify that the utilities of a fixed configuration respect the identity
    // w_λ(A) = 2λ · w_{1/2}(A_scaled) by evaluating both sides.
    let instance = build_instance(DatasetProfile::TimikLike, 500);
    let cfg = solve_per(&instance);
    for lambda in [0.25, 0.4, 0.6, 0.75] {
        let inst_l = instance.with_lambda(lambda).unwrap();
        let direct = total_utility(&inst_l, &cfg);
        // Rebuild a λ = ½ instance with preferences scaled by (1-λ)/λ; its
        // utility times 2λ must equal the direct evaluation... times the ½
        // weights: w = 2λ(½ p' + ½ τ).
        let mut builder = SvgicInstanceBuilder::new(
            inst_l.graph().clone(),
            inst_l.num_items(),
            inst_l.num_slots(),
            0.5,
        );
        for u in 0..inst_l.num_users() {
            for c in 0..inst_l.num_items() {
                builder.set_preference(u, c, inst_l.scaled_preference(u, c));
            }
        }
        for (e, &(u, v)) in inst_l.graph().edges().to_vec().iter().enumerate() {
            for c in 0..inst_l.num_items() {
                builder.set_social(u, v, c, inst_l.social_by_edge(e, c));
            }
        }
        let scaled = builder.build().unwrap();
        let indirect = 2.0 * lambda * total_utility(&scaled, &cfg);
        assert!(
            (direct - indirect).abs() < 1e-9,
            "lambda {lambda}: direct {direct} vs scaled {indirect}"
        );
    }
}
