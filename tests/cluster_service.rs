//! End-to-end tests of the multi-node serving fabric: topology-independent
//! digests, warm-capital-preserving live migration, and crash recovery under
//! the `node-churn` scenario.

use svgic::cluster::prelude::*;
use svgic::engine::prelude::*;
use svgic::engine::CreateSession;
use svgic::workload::prelude::*;
use svgic_core::extensions::DynamicEvent;

fn engine_config() -> EngineConfig {
    EngineConfig {
        workers: 2,
        // Pin the shard count so per-shard counters are machine-independent.
        shards: 2,
        auto_flush_pending: 0,
        ..EngineConfig::default()
    }
}

/// **Acceptance: digest determinism across topology.** The same trace served
/// on 1 node and on 4 nodes — with a live mid-run migration and a load-aware
/// rebalance on the 4-node run — yields identical FNV-1a configuration
/// digests, and both match the bare single-engine driver.
#[test]
fn digest_identical_on_1_and_4_nodes_with_midrun_migration() {
    let mut scenario = Scenario::steady_mall().smoke();
    scenario.ticks = 5;
    let trace = generate(&scenario, 41);

    let bare = LoadDriver::new(DriverConfig {
        engine: engine_config(),
        ..DriverConfig::default()
    })
    .run(&trace);

    let clustered = |nodes: usize| {
        ClusterDriver::new(ClusterDriverConfig {
            nodes,
            engine: engine_config(),
            plan: NodePlan::for_trace(&trace, nodes),
            ..ClusterDriverConfig::default()
        })
        .run(&trace)
    };
    let one = clustered(1);
    let four = clustered(4);

    assert_eq!(
        one.config_digest, bare.config_digest,
        "1-node cluster must serve byte-identically to a bare engine"
    );
    assert_eq!(
        one.config_digest, four.config_digest,
        "digests must be independent of node count"
    );
    assert!(
        four.cluster.migrations > 0,
        "the 4-node run must include a mid-run live migration: {:?}",
        four.cluster
    );
    assert_eq!(
        four.cluster.warm_capital_preserved, four.cluster.migrations,
        "every migrated (solved) session travels warm"
    );
    assert_eq!(one.requests, four.requests);
    assert_eq!(one.sessions, four.sessions);
    // The fleet solves exactly as much as the single engine: partitioning
    // never duplicates or drops work.
    assert_eq!(one.merged.solves(), four.merged.solves());
}

/// **Acceptance: migration preserves warm capital.** Sessions built from the
/// `node-churn` scenario's templates are stacked on one node; a forced
/// load-aware rebalance migrates part of them. After the rebalance, the
/// receiving node serves the migrated session's next re-solve *warm* — its
/// `warm_start_rate` is > 0 without having ever computed those factors
/// itself (session-affine reuse of the carried factors).
#[test]
fn forced_rebalance_migrates_warm_into_the_receiving_node() {
    let scenario = Scenario::node_churn().smoke();
    let trace = generate(&scenario, 7);
    let instance = trace.templates[0].build();

    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 2,
        vnodes: 64,
        engine: engine_config(),
        ..ClusterConfig::default()
    });
    for key in 0..6u64 {
        let (_, view) = cluster
            .open_session(
                key,
                CreateSession {
                    instance: instance.clone(),
                    initial_present: Vec::new(),
                    seed: 0xC0FFEE ^ key,
                },
            )
            .expect("opens");
        assert!(view.configuration.is_valid(view.catalog.len()));
    }
    // Stack everything on one node, then force the load-aware rebalance.
    let donor = cluster.node_ids()[0];
    for key in 0..6u64 {
        let _ = cluster.migrate_session(key, donor).expect("live session");
    }
    cluster.reset_stats();
    let moves = cluster.rebalance(&QueueDepthPolicy { tolerance: 1 });
    assert!(!moves.is_empty(), "stacked fleet must rebalance");
    let migrated = moves[0];
    let receiver = migrated.to;
    assert_ne!(receiver, donor);
    assert_eq!(cluster.placement_of(migrated.key), Some(receiver));

    // Wipe counters so the receiving node's next numbers are purely
    // post-migration, then drive one incremental re-solve of the migrated
    // session.
    cluster.reset_stats();
    cluster
        .submit_event(
            migrated.key,
            SessionEvent::Membership(DynamicEvent::Leave(0)),
        )
        .expect("submits");
    cluster.flush_node(receiver).expect("flushes");
    let stats = cluster.node_stats(receiver).expect("alive");
    assert!(
        stats.solves() >= 1,
        "the migrated session re-solved: {stats}"
    );
    assert!(
        stats.warm_start_rate() > 0.0,
        "receiving node must serve migrated sessions warm: {stats}"
    );
    assert!(
        stats.session_reuse >= 1,
        "warm capital arrives via session-affine reuse: {stats}"
    );
    assert_eq!(
        stats.cache_misses, 0,
        "no LP may be recomputed for a warm migrated session: {stats}"
    );
}

/// The `node-churn` scenario end to end: a kill, a join and two rebalances
/// mid-run. Deterministic run-to-run, every session survives (recovered
/// cold), and the fabric accounting adds up.
#[test]
fn node_churn_scenario_is_deterministic_and_loses_only_warm_capital() {
    let mut scenario = Scenario::node_churn().smoke();
    scenario.ticks = 6;
    let trace = generate(&scenario, 23);
    let run = || {
        ClusterDriver::new(ClusterDriverConfig {
            nodes: 3,
            engine: engine_config(),
            plan: NodePlan::for_trace(&trace, 3),
            ..ClusterDriverConfig::default()
        })
        .run(&trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a.config_digest, b.config_digest, "node churn must replay");
    assert_eq!(a.cluster, b.cluster, "fabric accounting must replay");
    assert_eq!(a.cluster.nodes_killed, 1);
    assert!(a.cluster.sessions_recovered > 0, "{:?}", a.cluster);
    assert_eq!(
        a.cluster.warm_capital_lost, a.cluster.sessions_recovered,
        "a kill costs exactly the recovered sessions' warm capital"
    );
    assert!(a.cluster.migrations > 0);
    assert_eq!(a.cluster.warm_capital_preserved, a.cluster.migrations);
    // All opened sessions were served to completion (trace closes them all).
    assert_eq!(a.sessions as usize, trace.session_count());
    assert!(a.quality.samples > 0);
    assert!(a.quality.mean_utility() > 0.0);
}
