//! # svgic — Social-aware VR Group-Item Configuration
//!
//! A from-scratch Rust reproduction of *"Optimizing Item and Subgroup
//! Configurations for Social-Aware VR Shopping"* (Ko et al., VLDB 2020).
//!
//! The umbrella crate re-exports every sub-crate of the workspace under one
//! coherent namespace so downstream users can depend on a single crate:
//!
//! * [`graph`] — directed social-graph substrate, generators, community
//!   detection, clustering, sampling;
//! * [`lp`] — LP/MILP solvers (two-phase simplex, branch & bound, structured
//!   block-coordinate ascent for the condensed relaxation);
//! * [`core`] — the SVGIC / SVGIC-ST problem model: instances,
//!   SAVG k-Configurations, utilities, IP/LP model builders, hardness
//!   reductions, the paper's running example;
//! * [`algorithms`] — AVG, AVG-D, independent rounding, exact solvers, and the
//!   §5 practical extensions (commodity values, slot significance,
//!   multi-view display, subgroup-change smoothing, dynamic users, SEO);
//! * [`baselines`] — PER, FMG, SDP, GRF, the two-way subgroup splits and the
//!   "-P" pre-partitioning wrapper for SVGIC-ST;
//! * [`datasets`] — synthetic Timik/Yelp/Epinions-like substrates, the
//!   PIERT/AGREE/GREE-like utility simulators and the simulated user study;
//! * [`metrics`] — every evaluation metric of §6;
//! * [`experiments`] — the per-figure experiment harness;
//! * [`engine`] — the online multi-session serving subsystem: session store,
//!   typed request/response API, batched event scheduling, a parallel worker
//!   pool, an LRU cache of LP utility factors, and an incremental-vs-full
//!   re-solve policy;
//! * [`cluster`] — the multi-node serving fabric above the engine:
//!   consistent-hash routing with virtual nodes, live session migration
//!   (warm LP factors travel with the session), crash recovery from router
//!   shadow state, and pluggable rebalancing policies (ring-authority and
//!   load-aware);
//! * [`obs`] — the observability layer threaded through engine, cluster and
//!   wire: a span-based tracer with a static phase enum and a fixed-capacity
//!   lock-sharded flight recorder (off by default, near-zero when disabled),
//!   the log-bucketed latency histograms, the metrics registry behind
//!   `StatsSnapshot::metrics()` and the Chrome trace-event JSON export
//!   (`loadgen --trace-out`);
//! * [`net`] — the wire protocol: length-prefixed binary framing over TCP,
//!   a blocking server fronting one engine, and a client implementing the
//!   same driver-facing `EngineTransport` trait as the in-process engine —
//!   the layer that turns the cluster into a real multi-process system
//!   (`loadgen serve` / `--connect`) with transport-invariant digests;
//! * [`workload`] — scenario-driven workload simulation for the engine and
//!   the cluster: named traffic scenarios (steady mall, diurnal cycle, flash
//!   sale, churn-heavy, megagroup, node-churn), a deterministic
//!   record/replay trace format, open/closed-loop load drivers (single
//!   engine, `--nodes N` cluster, or remote TCP servers) with HDR-style
//!   latency histograms, and the `loadgen` CLI emitting machine-readable
//!   JSON load reports.
//!
//! Architecture book: `docs/ARCHITECTURE.md`. Stable formats (trace, report
//! JSON, wire protocol): `docs/FORMATS.md`.
//!
//! ## Quickstart
//!
//! ```rust
//! use svgic::prelude::*;
//!
//! // The paper's running example: 4 shoppers, 5 items, 3 display slots.
//! let instance = svgic::core::example::running_example();
//!
//! // Solve with the deterministic 4-approximation AVG-D.
//! let solution = solve_avg_d(&instance, &AvgDConfig::default());
//! assert!(solution.configuration.is_valid(instance.num_items()));
//!
//! // The SVGIC objective (Definition 3) of the returned configuration.
//! let utility = total_utility(&instance, &solution.configuration);
//! assert!(utility > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use svgic_algorithms as algorithms;
pub use svgic_baselines as baselines;
pub use svgic_cluster as cluster;
pub use svgic_core as core;
pub use svgic_datasets as datasets;
pub use svgic_engine as engine;
pub use svgic_experiments as experiments;
pub use svgic_graph as graph;
pub use svgic_lp as lp;
pub use svgic_metrics as metrics;
pub use svgic_net as net;
pub use svgic_obs as obs;
pub use svgic_workload as workload;

/// The most common imports in one place.
pub mod prelude {
    pub use svgic_algorithms::avg::{solve_avg, solve_avg_st, AvgConfig, SamplingScheme};
    pub use svgic_algorithms::avg_d::{solve_avg_d, solve_avg_d_st, AvgDConfig};
    pub use svgic_algorithms::exact::{solve_exact, ExactConfig, ExactStrategy};
    pub use svgic_algorithms::factors::{solve_relaxation_with, LpBackend};
    pub use svgic_baselines::{
        solve_fmg, solve_grf, solve_per, solve_sdp, GrfConfig, Method, SdpConfig,
    };
    pub use svgic_cluster::{
        Cluster, ClusterConfig, NodeId, QueueDepthPolicy, RebalancePolicy, RingPolicy,
    };
    pub use svgic_core::utility::{
        total_utility, total_utility_st, unweighted_total_utility, utility_split,
    };
    pub use svgic_core::{Configuration, StParams, SvgicInstance, SvgicInstanceBuilder};
    pub use svgic_datasets::{DatasetProfile, InstanceSpec, UtilityModel, UtilityModelKind};
    pub use svgic_engine::{
        CreateSession, Engine, EngineConfig, EngineRequest, EngineResponse, SessionEvent, SessionId,
    };
    pub use svgic_graph::SocialGraph;
    pub use svgic_metrics::{regret_ratios, subgroup_metrics};
    pub use svgic_workload::{
        generate, DriveMode, DriverConfig, LoadDriver, LoadOutcome, LoadReport, Scenario, Trace,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn umbrella_reexports_compile_and_run() {
        let instance = crate::core::example::running_example();
        let per = solve_per(&instance);
        let fmg = solve_fmg(&instance);
        assert!(total_utility(&instance, &per) > 0.0);
        assert!(total_utility(&instance, &fmg) > 0.0);
        let avg = solve_avg(&instance, &AvgConfig::default());
        assert!(avg.configuration.is_valid(instance.num_items()));
    }
}
